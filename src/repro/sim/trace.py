"""Structural traces of one distributed operation's message exchanges.

Every architecture-model operation (publish, query, closure, locate) is
a composition of message hops: sequential chains ("ask, then fetch each
candidate"), parallel fan-outs ("scatter to every partition, wait for
the slowest"), and local compute delays ("index the record at the
warehouse").  The :class:`~repro.net.simulator.NetworkSimulator` captures
that structure as an :class:`OpTrace` while the model runs, and the
discrete-event kernel (:mod:`repro.sim.kernel`) replays it in virtual
time, where hops contend for per-site servers with other in-flight
operations.

The structure is exact with respect to the models' own latency
arithmetic: replaying a trace through a *degenerate* kernel (no service
time, no jitter, no contention) yields precisely the latency the model
composed by hand -- :func:`trace_elapsed_ms` computes that closed form
and the parity tests pin the equality for every model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

__all__ = ["Hop", "Compute", "Parallel", "Step", "OpTrace", "trace_elapsed_ms"]


@dataclass(frozen=True)
class Hop:
    """One message: ``source`` -> ``destination``, with its base latency.

    ``base_latency_ms`` is the topology's propagation latency (the value
    the model's own arithmetic used); the kernel adds seeded jitter and
    destination-server queueing on top.  ``critical=False`` marks
    asynchronous hops (subscription notifications): they are scheduled
    and load the destination server, but the operation does not wait for
    them.
    """

    source: str
    destination: str
    size_bytes: int
    kind: str
    base_latency_ms: float
    critical: bool = True


@dataclass(frozen=True)
class Compute:
    """A local processing delay (indexing, mediator translation).

    When ``site`` is given the work occupies that site's server in the
    kernel -- concurrent operations queue behind it; a site-less compute
    is pure pipeline delay (it waits but occupies nobody).
    """

    ms: float
    site: str = ""


@dataclass
class Parallel:
    """A fan-out: every branch starts together; the group ends with the slowest.

    Each branch is itself a sequential list of steps, so "request then
    response, in parallel across sites" is a branch of two hops.
    """

    branches: List[List["Step"]] = field(default_factory=list)


Step = Union[Hop, Compute, Parallel]


@dataclass
class OpTrace:
    """The captured structure of one operation."""

    kind: str
    origin: str
    steps: List[Step] = field(default_factory=list)

    def hops(self) -> List[Hop]:
        """Every hop in the trace, critical and background alike."""
        found: List[Hop] = []
        _collect_hops(self.steps, found)
        return found


def _collect_hops(steps: List[Step], out: List[Hop]) -> None:
    for step in steps:
        if isinstance(step, Hop):
            out.append(step)
        elif isinstance(step, Parallel):
            for branch in step.branches:
                _collect_hops(branch, out)


def trace_elapsed_ms(steps: List[Step]) -> float:
    """The degenerate (no-queueing, no-jitter) elapsed time of a step list.

    Sequential steps add, parallel groups take the slowest branch, and
    non-critical hops contribute nothing -- the exact closed form the
    architecture models compose by hand, used by the parity tests as the
    independent oracle for kernel replay.
    """
    elapsed = 0.0
    for step in steps:
        if isinstance(step, Hop):
            if step.critical:
                elapsed += step.base_latency_ms
        elif isinstance(step, Compute):
            elapsed += step.ms
        elif isinstance(step, Parallel):
            slowest = 0.0
            for branch in step.branches:
                slowest = max(slowest, trace_elapsed_ms(branch))
            elapsed += slowest
    return elapsed
