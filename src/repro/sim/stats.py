"""Latency-distribution helpers shared by simulation reports and eval tables.

Deliberately a leaf module (stdlib only): :mod:`repro.eval.criteria`
and :mod:`repro.sim.workload` both report percentile families, and
neither should drag the other's dependency stack in to do arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = ["percentile", "latency_summary"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty input."""
    data = sorted(values)
    if not data:
        return 0.0
    if q <= 0:
        return data[0]
    rank = int(math.ceil(q / 100.0 * len(data)))
    return data[min(rank, len(data)) - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean plus the p50/p95/p99/max percentile family of a latency sample."""
    data = list(values)
    if not data:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": len(data),
        "mean": round(sum(data) / len(data), 4),
        "p50": round(percentile(data, 50), 4),
        "p95": round(percentile(data, 95), 4),
        "p99": round(percentile(data, 99), 4),
        "max": round(max(data), 4),
    }
