"""The ``Schedule`` DSL: timed partition / heal / churn events for a run.

A schedule is a list of actions pinned to virtual times (milliseconds
from the start of the simulation)::

    [
      {"at_ms": 500,  "action": "partition", "site": "tokyo-site"},
      {"at_ms": 900,  "action": "heal",      "site": "tokyo-site"},
      {"at_ms": 1200, "action": "churn",     "site": "boston-site",
       "duration_ms": 400}
    ]

``churn`` is sugar for a partition immediately followed by a heal after
``duration_ms`` -- the "host comes and goes" behaviour Section IV-C
attributes to unstable participants.  The file format accepted by
``repro simulate --schedule FILE`` is that list as JSON (optionally
wrapped as ``{"events": [...]}``).

Actions are applied to the :class:`~repro.net.simulator.NetworkSimulator`
partition set when the kernel's virtual clock reaches them, so both
capture-time behaviour (a model publishing from a cut-off site raises)
and replay-time behaviour (in-flight messages to a cut-off site are
lost) follow virtual time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["ScheduleEvent", "Schedule"]

_ACTIONS = ("partition", "heal")


def _number(entry: dict, name: str, raw) -> float:
    """A numeric schedule field, or ConfigurationError naming the entry."""
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"schedule field {name!r} must be a number, got {raw!r} in {entry!r}"
        ) from None


@dataclass(frozen=True)
class ScheduleEvent:
    """One timed action: partition or heal a site at ``at_ms``."""

    at_ms: float
    action: str
    site: str

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigurationError(f"schedule time must be non-negative, got {self.at_ms}")
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown schedule action {self.action!r}; known: {list(_ACTIONS)} (+ 'churn' sugar)"
            )
        if not self.site:
            raise ConfigurationError("schedule event needs a site")


class Schedule:
    """An ordered list of :class:`ScheduleEvent`."""

    def __init__(self, events: Iterable[ScheduleEvent] = ()) -> None:
        self.events: List[ScheduleEvent] = sorted(events, key=lambda e: (e.at_ms, e.action, e.site))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, data) -> "Schedule":
        """Build a schedule from parsed JSON (a list, or ``{"events": [...]}``)."""
        if isinstance(data, dict):
            data = data.get("events", [])
        if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
            raise ConfigurationError("a schedule is a JSON list of event objects")
        events: List[ScheduleEvent] = []
        for entry in data:
            if not isinstance(entry, dict):
                raise ConfigurationError(f"schedule entry must be an object, got {entry!r}")
            action = entry.get("action")
            at_ms = _number(entry, "at_ms", entry.get("at_ms", entry.get("at", -1.0)))
            site = str(entry.get("site", ""))
            if action == "churn":
                duration = _number(entry, "duration_ms", entry.get("duration_ms", 0.0))
                if duration <= 0:
                    raise ConfigurationError("churn needs a positive duration_ms")
                events.append(ScheduleEvent(at_ms, "partition", site))
                events.append(ScheduleEvent(at_ms + duration, "heal", site))
            else:
                events.append(ScheduleEvent(at_ms, str(action), site))
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        """Parse a schedule from a JSON string."""
        try:
            return cls.parse(json.loads(text))
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"schedule is not valid JSON: {error}") from None

    @classmethod
    def load(cls, path: str) -> "Schedule":
        """Load a schedule from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def install(self, kernel, network) -> List[str]:
        """Schedule every action onto the kernel, acting on ``network``.

        Returns a mutable list that accumulates a human-readable record
        of the actions as they fire (the runner reports it).
        """
        applied: List[str] = []
        for event in self.events:
            kernel.schedule(
                event.at_ms,
                _apply(event, network, applied),
                f"schedule|{event.action}|{event.site}",
            )
        return applied


def _apply(event: ScheduleEvent, network, applied: List[str]):
    def run() -> None:
        if event.action == "partition":
            network.partition(event.site)
        else:
            network.heal(event.site)
        applied.append(f"{event.at_ms:g}ms {event.action} {event.site}")

    return run
