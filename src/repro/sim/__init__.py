"""Discrete-event simulation kernel: virtual time, concurrent clients, churn.

The package turns the message-counting network simulator into an actual
simulation: :mod:`repro.sim.kernel` holds the deterministic event loop
and per-site FIFO servers, :mod:`repro.sim.trace` the captured structure
of each architecture operation, :mod:`repro.sim.schedule` the timed
partition/heal/churn DSL, and :mod:`repro.sim.workload` the concurrent
closed-loop client runner producing percentile reports.
"""

from repro.sim.kernel import SimConfig, SimKernel, SiteServer
from repro.sim.schedule import Schedule, ScheduleEvent
from repro.sim.stats import latency_summary, percentile
from repro.sim.trace import Compute, Hop, OpTrace, Parallel, trace_elapsed_ms

_WORKLOAD_EXPORTS = (
    "SimOpRecord",
    "SimReport",
    "WorkloadRunner",
    "simulate_publish_workload",
)


def __getattr__(name: str):
    # The workload runner imports repro.distributed.base, which imports
    # repro.net.simulator, which imports repro.sim.trace -- resolving it
    # lazily keeps that chain acyclic at import time.
    if name in _WORKLOAD_EXPORTS:
        from repro.sim import workload

        return getattr(workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SimConfig",
    "SimKernel",
    "SiteServer",
    "Schedule",
    "ScheduleEvent",
    "Hop",
    "Compute",
    "Parallel",
    "OpTrace",
    "trace_elapsed_ms",
    "SimOpRecord",
    "SimReport",
    "WorkloadRunner",
    "latency_summary",
    "percentile",
    "simulate_publish_workload",
]
