"""Concurrent-client workloads over the discrete-event kernel.

The runner drives N closed-loop clients against one architecture model:
each client executes its next operation the moment its previous one
completes (plus optional think time).  Operations run synchronously
against the model at their virtual start instant (mutating its state and
capturing an :class:`~repro.sim.trace.OpTrace`), and the captured
message exchange is then replayed through the kernel, where it contends
with every other in-flight operation at shared site servers.  The model
is "atomic state, extended time": state changes commit at operation
start, timing unfolds message by message in virtual time.

The outcome is a :class:`SimReport`: latency percentiles (overall and
per operation kind), per-site utilization and queueing, schedule
actions applied, and -- when journalling is on -- a digest that is
byte-identical across runs with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.distributed.base import ArchitectureModel, OperationResult
from repro.errors import ConfigurationError, PassError
from repro.obs.alerts import AlertEngine, load_rules
from repro.obs.metrics import Histogram
from repro.obs.timeseries import TimeSeriesStore
from repro.sim.kernel import SimConfig, SimKernel
from repro.sim.schedule import Schedule
from repro.sim.stats import latency_summary, percentile
from repro.sim.trace import Compute, OpTrace

__all__ = [
    "percentile",
    "latency_summary",
    "SimOpRecord",
    "SimReport",
    "WorkloadRunner",
    "simulate_publish_workload",
]


@dataclass(frozen=True)
class SimOpRecord:
    """One completed (or failed) operation of one simulated client."""

    client: int
    kind: str
    start_ms: float
    end_ms: float
    ok: bool
    note: str = ""

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


class SimReport:
    """Everything one simulated run measured."""

    def __init__(
        self,
        *,
        clients: int,
        config: SimConfig,
        records: List[SimOpRecord],
        sites: Dict[str, Dict[str, float]],
        virtual_ms: float,
        events: int,
        notifications_lost: int,
        schedule_applied: List[str],
        journal_digest: Optional[str],
        wall_seconds: float,
        timeseries: Optional[TimeSeriesStore] = None,
        alerts: Optional[dict] = None,
    ) -> None:
        self.clients = clients
        self.config = config
        self.records = records
        self.sites = sites
        self.virtual_ms = virtual_ms
        self.events = events
        self.notifications_lost = notifications_lost
        self.schedule_applied = schedule_applied
        self.journal_digest = journal_digest
        self.wall_seconds = wall_seconds
        #: the virtual-clock TimeSeriesStore (None unless sampling was on)
        self.timeseries = timeseries
        #: the alert engine's final snapshot (None unless rules were given)
        self.alerts = alerts

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def ok_records(self) -> List[SimOpRecord]:
        return [record for record in self.records if record.ok]

    def failed(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        """Latencies of successful operations, optionally for one kind."""
        return [
            record.latency_ms
            for record in self.records
            if record.ok and (kind is None or record.kind == kind)
        ]

    def summary(self, kind: Optional[str] = None) -> Dict[str, float]:
        return latency_summary(self.latencies(kind))

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        kinds = sorted({record.kind for record in self.records if record.ok})
        return {kind: self.summary(kind) for kind in kinds}

    def events_per_second(self) -> float:
        """Kernel throughput of this run (wall clock)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def snapshot(self) -> Dict[str, object]:
        """The plain-dict form surfaced as ``client.stats()["sim"]``."""
        return {
            "enabled": True,
            "clients": self.clients,
            "seed": self.config.seed,
            "ops": len(self.records),
            "failed": self.failed(),
            "virtual_ms": round(self.virtual_ms, 3),
            "events": self.events,
            "notifications_lost": self.notifications_lost,
            "latency_ms": self.summary(),
            "by_kind": self.by_kind(),
            "sites": self.sites,
            "schedule_applied": list(self.schedule_applied),
            "journal_digest": self.journal_digest,
            "timeseries": self.timeseries.snapshot() if self.timeseries else None,
            "alerts": self.alerts,
        }

    @staticmethod
    def disabled_snapshot(reason: str = "no simulation has run") -> Dict[str, object]:
        """The uniform ``stats()["sim"]`` shape before/without a simulation."""
        return {"enabled": False, "reason": reason}


class WorkloadRunner:
    """Run N closed-loop clients against one architecture model.

    Parameters
    ----------
    model:
        An :class:`~repro.distributed.base.ArchitectureModel` (or a
        façade client wrapping one -- its ``.model`` is used).
    op_factory:
        ``op_factory(client_index, op_index)`` returns a zero-argument
        callable executing one operation against the model (returning
        its :class:`OperationResult`), or ``None`` when that client is
        done.  The callable runs at the operation's virtual start time.
    clients:
        Number of concurrent closed-loop clients.
    config / schedule / think_ms:
        Kernel knobs, timed partition/heal events, per-client pause
        between operations.
    failure_backoff_ms:
        Virtual pause after a failed operation (a publish refused by a
        partition, say) before the client retries its next one; keeps a
        fully cut-off client from spinning at one virtual instant.
    sample_interval_ms:
        When set, the run keeps a virtual-clock
        :class:`~repro.obs.timeseries.TimeSeriesStore`: per-site backlog
        / served / busy series from the kernel plus workload-level
        ``ops.completed`` / ``ops.failed`` counters and ``op.latency_ms``
        (overall and per kind) histogram series -- the same schema a
        live daemon's sampler emits, exposed as
        ``report.timeseries`` and in ``snapshot()["timeseries"]``.
    timeseries_retention:
        Ring length of that store (slots per series).
    alert_rules:
        Alert rules (path / parsed list / :class:`AlertRule` objects)
        evaluated on every sample tick against the virtual-clock store;
        implies sampling (default interval 1000 virtual ms).  The
        engine's final snapshot lands in ``report.alerts``.
    """

    def __init__(
        self,
        model,
        op_factory: Callable[[int, int], Optional[Callable[[], OperationResult]]],
        *,
        clients: int = 1,
        config: Optional[SimConfig] = None,
        schedule: Optional[Schedule] = None,
        think_ms: float = 0.0,
        failure_backoff_ms: float = 10.0,
        sample_interval_ms: Optional[float] = None,
        timeseries_retention: int = 512,
        alert_rules=None,
    ) -> None:
        model = getattr(model, "model", model)
        if not isinstance(model, ArchitectureModel):
            raise ConfigurationError(
                "the workload runner drives architecture models; "
                f"got {type(model).__name__} (local stores have no simulated network)"
            )
        if clients < 1:
            raise ConfigurationError("need at least one client")
        self.model = model
        self.network = model.network
        self.op_factory = op_factory
        self.clients = clients
        self.config = config if config is not None else SimConfig()
        self.schedule = schedule
        self.think_ms = think_ms
        self.failure_backoff_ms = failure_backoff_ms
        self.alert_rules = load_rules(alert_rules) if alert_rules else []
        if self.alert_rules and sample_interval_ms is None:
            sample_interval_ms = 1000.0
        if sample_interval_ms is not None and sample_interval_ms <= 0:
            raise ConfigurationError("sample_interval_ms must be positive")
        self.sample_interval_ms = sample_interval_ms
        self.timeseries_retention = timeseries_retention

    def run(self) -> SimReport:
        import time as _time

        timeseries: Optional[TimeSeriesStore] = None
        engine: Optional[AlertEngine] = None
        if self.sample_interval_ms is not None:
            timeseries = TimeSeriesStore(
                interval_s=self.sample_interval_ms / 1000.0,
                retention=self.timeseries_retention,
            )
            if self.alert_rules:
                engine = AlertEngine(timeseries, self.alert_rules)
        kernel = SimKernel(
            self.config,
            is_partitioned=self.network.is_partitioned,
            timeseries=timeseries,
            sample_interval_ms=self.sample_interval_ms,
        )
        records: List[SimOpRecord] = []
        applied: List[str] = []
        if self.schedule is not None:
            applied = self.schedule.install(kernel, self.network)

        # Workload-level series: cumulative op counters and latency
        # histograms scraped on every kernel sample tick, exactly as the
        # daemon sampler scrapes its telemetry instruments on wall time.
        latency_all = Histogram("op.latency_ms")
        latency_by_kind: Dict[str, Histogram] = {}
        op_counts = {"completed": 0, "failed": 0}

        def count_op(kind: str, latency_ms: float, ok: bool) -> None:
            op_counts["completed"] += 1
            if not ok:
                op_counts["failed"] += 1
            latency_all.observe(latency_ms)
            by_kind = latency_by_kind.get(kind)
            if by_kind is None:
                by_kind = latency_by_kind[kind] = Histogram(f"op.{kind}.latency_ms")
            by_kind.observe(latency_ms)

        if timeseries is not None:
            def sample_ops(t_ms: float) -> None:
                t = t_ms / 1000.0
                timeseries.observe_counter("ops.completed", t, op_counts["completed"])
                timeseries.observe_counter("ops.failed", t, op_counts["failed"])
                timeseries.observe_histogram("op.latency_ms", t, latency_all.state())
                for kind, hist in latency_by_kind.items():
                    timeseries.observe_histogram(
                        f"op.{kind}.latency_ms", t, hist.state()
                    )
                if engine is not None:
                    engine.evaluate(t)

            kernel.add_tick_hook(sample_ops)

        def start_op(client: int, op_index: int) -> None:
            thunk = self.op_factory(client, op_index)
            if thunk is None:
                return
            start = kernel.now
            try:
                result = thunk()
            except PassError as error:
                records.append(
                    SimOpRecord(client, "error", start, start, False, note=str(error))
                )
                count_op("error", 0.0, False)
                kernel.schedule(
                    start + self.failure_backoff_ms + self.think_ms,
                    lambda: start_op(client, op_index + 1),
                    f"client|{client}",
                )
                return
            trace = getattr(result, "trace", None)
            if trace is None:
                # Costless (or untraced) operation: charge its composed
                # latency as pure pipeline delay.
                trace = OpTrace(kind="op", origin="", steps=[Compute(result.latency_ms)])

            def op_done(end: float, ok: bool) -> None:
                records.append(SimOpRecord(client, trace.kind, start, end, ok))
                count_op(trace.kind, end - start, ok)
                backoff = 0.0 if ok else self.failure_backoff_ms
                kernel.schedule(
                    end + self.think_ms + backoff,
                    lambda: start_op(client, op_index + 1),
                    f"client|{client}",
                )

            kernel.schedule_trace(trace, start, op_done)

        for client in range(self.clients):
            kernel.schedule(0.0, (lambda c=client: start_op(c, 0)), f"client|{client}")

        began = _time.perf_counter()
        kernel.run()
        wall = _time.perf_counter() - began

        # The workload's horizon is when its last operation (or trailing
        # server activity) finished -- NOT kernel.now, which a schedule
        # event pinned far in the future would drag along, inflating
        # virtual_ms and diluting every utilization figure.
        horizon = max(
            [record.end_ms for record in records]
            + [server.free_at for server in kernel.servers.values()]
            + [0.0]
        )
        kernel.sample_until(horizon)
        report = SimReport(
            clients=self.clients,
            config=self.config,
            records=records,
            sites=kernel.site_snapshots(horizon),
            virtual_ms=horizon,
            events=kernel.events_processed,
            notifications_lost=kernel.notifications_lost,
            schedule_applied=applied,
            journal_digest=kernel.journal_digest(),
            wall_seconds=wall,
            timeseries=timeseries,
            alerts=engine.snapshot() if engine is not None else None,
        )
        # Surface the run on the simulator so client.stats()["sim"] sees it.
        self.network.last_sim_report = report
        return report


def simulate_publish_workload(
    model,
    tuple_sets: Sequence,
    *,
    clients: int = 1,
    sites: Optional[Sequence[str]] = None,
    config: Optional[SimConfig] = None,
    schedule: Optional[Schedule] = None,
    think_ms: float = 0.0,
    sample_interval_ms: Optional[float] = None,
    alert_rules=None,
) -> SimReport:
    """Publish ``tuple_sets`` through N concurrent clients, round-robin.

    Client ``i`` publishes tuple sets ``i, i+N, i+2N, ...`` from its
    pinned origin site (``sites[i % len(sites)]``; defaults to the
    model's storage sites).  The standard way to observe how an
    architecture behaves under concurrent update load.
    """
    model = getattr(model, "model", model)
    origin_sites = list(sites) if sites else [
        site.name for site in model.topology.sites(kind="storage")
    ] or model.topology.site_names

    def op_factory(client: int, op_index: int):
        position = client + op_index * clients
        if position >= len(tuple_sets):
            return None
        tuple_set = tuple_sets[position]
        origin = origin_sites[client % len(origin_sites)]
        return lambda: model.publish(tuple_set, origin)

    runner = WorkloadRunner(
        model,
        op_factory,
        clients=clients,
        config=config,
        schedule=schedule,
        think_ms=think_ms,
        sample_interval_ms=sample_interval_ms,
        alert_rules=alert_rules,
    )
    return runner.run()
