"""Deterministic discrete-event kernel: virtual clock, event queue, site servers.

The kernel is the concurrency model the message-counting simulator never
had.  It keeps a virtual clock in milliseconds, an ordered event heap,
and one FIFO server per site: every message hop propagates (topology
latency plus optional seeded jitter), then queues at its destination's
server for a configurable service time.  Operations captured as
:class:`~repro.sim.trace.OpTrace` structures are replayed step by step,
so N concurrent clients genuinely interleave at shared sites -- a
centralized warehouse serializes everyone's publishes, a DHT spreads
them across the ring.

Determinism: events are ordered by ``(time, insertion sequence)`` and
the only randomness is a :class:`random.Random` seeded from
:class:`SimConfig`, drawn in event order -- identical seeds replay
byte-identical event journals (:meth:`SimKernel.journal_digest`).

Degenerate mode (the :meth:`SimConfig.degenerate` default: zero service
time, zero jitter) reproduces the pre-kernel composed latencies exactly;
the parity tests assert that for every architecture model.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.trace import Compute, Hop, OpTrace, Parallel

__all__ = ["SimConfig", "SiteServer", "SimKernel"]


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the discrete-event simulation.

    Parameters
    ----------
    seed:
        Seeds the kernel RNG (latency jitter); same seed, same run.
    service_ms_per_message:
        Fixed time a destination server spends on each arriving message.
        This is what makes shared sites queue under concurrency.
    service_ms_per_kb:
        Additional service time per KiB of message payload.
    jitter:
        Propagation latency noise: each hop's latency is multiplied by a
        uniform draw from ``[1 - jitter, 1 + jitter]``.
    journal:
        Record a hash of every processed event so two runs can be
        compared byte-for-byte (small per-event cost).
    """

    seed: int = 0
    service_ms_per_message: float = 0.0
    service_ms_per_kb: float = 0.0
    jitter: float = 0.0
    journal: bool = False

    def __post_init__(self) -> None:
        if self.service_ms_per_message < 0 or self.service_ms_per_kb < 0:
            raise ConfigurationError("service times must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    @classmethod
    def degenerate(cls, seed: int = 0) -> "SimConfig":
        """The parity configuration: kernel replay equals composed latency."""
        return cls(seed=seed)


@dataclass
class SiteServer:
    """One site's FIFO message processor."""

    site: str
    free_at: float = 0.0
    busy_ms: float = 0.0
    served: int = 0
    wait_ms_total: float = 0.0
    max_wait_ms: float = 0.0

    def snapshot(self, horizon_ms: float) -> Dict[str, float]:
        """Utilization and queueing facts over a simulated horizon."""
        return {
            "served": self.served,
            "busy_ms": round(self.busy_ms, 3),
            "utilization": round(self.busy_ms / horizon_ms, 4) if horizon_ms > 0 else 0.0,
            "mean_wait_ms": round(self.wait_ms_total / self.served, 4) if self.served else 0.0,
            "max_wait_ms": round(self.max_wait_ms, 3),
        }


class SimKernel:
    """Virtual clock + ordered event queue + per-site servers.

    Parameters
    ----------
    config:
        Simulation knobs (:class:`SimConfig`); defaults to degenerate.
    is_partitioned:
        Callable consulted at hop departure and delivery time; sharing
        the :class:`~repro.net.simulator.NetworkSimulator`'s partition
        set keeps capture-time and replay-time failure behaviour in one
        place.
    timeseries:
        A :class:`~repro.obs.timeseries.TimeSeriesStore` to sample the
        per-site servers into on the **virtual** clock (virtual ms map
        to store seconds) -- the same store schema a live daemon's
        sampler emits on wall time, so one alert rule set and one
        exposition format cover both.  Sampling happens *between* heap
        pops, never through :meth:`schedule`, so the event journal and
        replay determinism are untouched.
    sample_interval_ms:
        Virtual time between samples; defaults to the store's interval.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        is_partitioned: Optional[Callable[[str], bool]] = None,
        timeseries=None,
        sample_interval_ms: Optional[float] = None,
    ) -> None:
        self.config = config if config is not None else SimConfig()
        self.now = 0.0
        self.rng = random.Random(self.config.seed)
        self.servers: Dict[str, SiteServer] = {}
        self.events_processed = 0
        self.notifications_lost = 0
        self._heap: List[tuple] = []
        self._seq = 0
        self._is_partitioned = is_partitioned if is_partitioned is not None else (lambda site: False)
        self._journal = hashlib.sha256() if self.config.journal else None
        self.timeseries = timeseries
        self._tick_hooks: List[Callable[[float], None]] = []
        if timeseries is not None:
            interval = (
                sample_interval_ms
                if sample_interval_ms is not None
                else timeseries.interval_s * 1000.0
            )
            if interval <= 0:
                raise ConfigurationError("sample interval must be positive")
            self.sample_interval_ms: Optional[float] = interval
            self._next_sample_ms: Optional[float] = 0.0
        else:
            self.sample_interval_ms = None
            self._next_sample_ms = None

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------
    def schedule(self, at: float, callback: Callable[[], None], label: str = "event") -> None:
        """Enqueue ``callback`` to run at virtual time ``at`` (clamped to now)."""
        if at < self.now:
            at = self.now
        heapq.heappush(self._heap, (at, self._seq, label, callback))
        self._seq += 1

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order until the queue drains (or ``until``)."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            at = self._heap[0][0]
            while self._next_sample_ms is not None and self._next_sample_ms <= at:
                self._sample(self._next_sample_ms)
                self._next_sample_ms += self.sample_interval_ms
            at, seq, label, callback = heapq.heappop(self._heap)
            self.now = at
            self.events_processed += 1
            if self._journal is not None:
                self._journal.update(f"{at:.9f}|{seq}|{label}\n".encode("utf-8"))
            callback()

    def pending(self) -> int:
        """Events still queued."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Time-series sampling (virtual-clock mirror of the daemon sampler)
    # ------------------------------------------------------------------
    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Run ``hook(t_ms)`` on every sample tick (workload-level series)."""
        self._tick_hooks.append(hook)

    def _sample(self, t_ms: float) -> None:
        """One sample tick at virtual ``t_ms`` (store times are seconds)."""
        t = t_ms / 1000.0
        store = self.timeseries
        if store is not None:
            store.observe_counter("kernel.events", t, self.events_processed)
            for site, server in self.servers.items():
                prefix = f"site.{site}."
                store.observe_gauge(
                    prefix + "backlog_ms", t, max(0.0, server.free_at - t_ms)
                )
                store.observe_counter(prefix + "served", t, server.served)
                store.observe_counter(prefix + "busy_ms", t, server.busy_ms)
        for hook in self._tick_hooks:
            hook(t_ms)

    def sample_until(self, horizon_ms: float) -> None:
        """Flush boundary samples through ``horizon_ms``, then one final
        sample *at* the horizon so trailing activity is never unrecorded."""
        if self._next_sample_ms is None:
            return
        while self._next_sample_ms <= horizon_ms:
            self._sample(self._next_sample_ms)
            self._next_sample_ms += self.sample_interval_ms
        self._sample(horizon_ms)

    def journal_digest(self) -> Optional[str]:
        """Hash of every event processed so far (None unless journalling)."""
        if self._journal is None:
            return None
        return self._journal.hexdigest()

    # ------------------------------------------------------------------
    # Servers
    # ------------------------------------------------------------------
    def server(self, site: str) -> SiteServer:
        """The FIFO server at ``site`` (created on first contact)."""
        server = self.servers.get(site)
        if server is None:
            server = self.servers[site] = SiteServer(site)
        return server

    def _service_ms(self, size_bytes: int) -> float:
        return (
            self.config.service_ms_per_message
            + size_bytes * self.config.service_ms_per_kb / 1024.0
        )

    def _serve(self, site: str, service_ms: float, arrival: float) -> float:
        """Occupy ``site``'s server for ``service_ms``; returns completion time."""
        server = self.server(site)
        begin = arrival if arrival >= server.free_at else server.free_at
        end = begin + service_ms
        server.free_at = end
        server.busy_ms += service_ms
        server.served += 1
        wait = begin - arrival
        server.wait_ms_total += wait
        if wait > server.max_wait_ms:
            server.max_wait_ms = wait
        return end

    def _propagation_ms(self, hop: Hop) -> float:
        if self.config.jitter == 0.0:
            return hop.base_latency_ms
        factor = 1.0 + self.rng.uniform(-self.config.jitter, self.config.jitter)
        return hop.base_latency_ms * factor

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def schedule_trace(
        self,
        trace: OpTrace,
        start: float,
        done: Callable[[float, bool], None],
    ) -> None:
        """Replay one operation's steps starting at virtual time ``start``.

        ``done(end_time, ok)`` fires when the last critical step
        completes; ``ok`` is False when a mid-run partition swallowed a
        critical hop (the operation's state already committed at capture
        time -- only its timing is reported as failed).
        """
        self._run_steps(trace.steps, 0, start, done)

    def _run_steps(
        self,
        steps: list,
        index: int,
        t: float,
        done: Callable[[float, bool], None],
    ) -> None:
        while index < len(steps):
            step = steps[index]
            if isinstance(step, Compute):
                if not step.site:
                    t += step.ms
                    index += 1
                    continue
                # Seize the site's server through the heap so the FIFO
                # order against other in-flight messages stays honest.
                self.schedule(
                    t,
                    self._start_compute(step, steps, index + 1, t, done),
                    f"compute|{step.site}",
                )
                return
            if isinstance(step, Parallel):
                self._run_parallel(step, steps, index, t, done)
                return
            # A hop.
            if not step.critical:
                self._schedule_background(step, t)
                index += 1
                continue
            if self._is_partitioned(step.source) or self._is_partitioned(step.destination):
                done(t, False)
                return
            arrival = t + self._propagation_ms(step)
            self.schedule(
                arrival,
                self._deliver_critical(step, steps, index + 1, arrival, done),
                # Journal labels are only materialized when journalling.
                f"deliver|{step.kind}|{step.source}->{step.destination}"
                if self._journal is not None
                else "deliver",
            )
            return
        done(t, True)

    def _start_compute(self, step: Compute, steps, next_index: int, t: float, done):
        def begin() -> None:
            end = self._serve(step.site, step.ms, t)
            self._run_steps(steps, next_index, end, done)

        return begin

    def _deliver_critical(self, hop: Hop, steps, next_index: int, arrival: float, done):
        def deliver() -> None:
            if self._is_partitioned(hop.destination):
                done(arrival, False)
                return
            end = self._serve(hop.destination, self._service_ms(hop.size_bytes), arrival)
            self._run_steps(steps, next_index, end, done)

        return deliver

    def _run_parallel(self, group: Parallel, steps, index: int, t: float, done) -> None:
        branches = group.branches
        if not branches:
            self._run_steps(steps, index + 1, t, done)
            return
        state = {"remaining": len(branches), "end": t, "ok": True}

        def branch_done(branch_end: float, branch_ok: bool) -> None:
            state["remaining"] -= 1
            if branch_end > state["end"]:
                state["end"] = branch_end
            state["ok"] = state["ok"] and branch_ok
            if state["remaining"] == 0:
                if not state["ok"]:
                    done(state["end"], False)
                else:
                    self._run_steps(steps, index + 1, state["end"], done)

        for branch in branches:
            self._run_steps(branch, 0, t, branch_done)

    def _schedule_background(self, hop: Hop, t: float) -> None:
        """Asynchronous (notify) hop: loads the network but nobody waits on it."""
        if self._is_partitioned(hop.source) or self._is_partitioned(hop.destination):
            self.notifications_lost += 1
            return
        arrival = t + self._propagation_ms(hop)

        def deliver() -> None:
            if self._is_partitioned(hop.destination):
                self.notifications_lost += 1
                return
            self._serve(hop.destination, self._service_ms(hop.size_bytes), arrival)

        self.schedule(
            arrival,
            deliver,
            f"notify|{hop.source}->{hop.destination}" if self._journal is not None else "notify",
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def site_snapshots(self, horizon_ms: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        """Per-site utilization over ``horizon_ms`` (default: current clock)."""
        horizon = horizon_ms if horizon_ms is not None else self.now
        return {
            site: server.snapshot(horizon) for site, server in sorted(self.servers.items())
        }
