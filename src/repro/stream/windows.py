"""Sliding and tumbling window aggregations over matched records.

The paper's consumers rarely want every record: a congestion monitor
wants "mean speed per city over each 5-minute window", a storm trigger
wants "count of gale readings in the last half hour".  A
:class:`WindowSpec` describes that reduction; a :class:`WindowAggregator`
maintains the open windows incrementally as matched records arrive on
the ingest path.

Windows are **event-time** windows over a timestamp attribute of the
provenance record (default ``window_start``, the attribute every
workload generator stamps).  The watermark is the largest event time
seen so far; a window closes -- and emits exactly one aggregate per
group -- when the watermark passes its end.  Records arriving behind the
watermark still land in any window that is open, but a window, once
emitted, is gone: ``late_records`` counts one per already-emitted window
a record missed, so the counter reflects exactly how short the emitted
aggregates ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.attributes import Timestamp, canonical_encode
from repro.core.provenance import ProvenanceRecord
from repro.errors import ConfigurationError

__all__ = ["AGGREGATES", "WindowSpec", "WindowAggregator"]

AGGREGATES = ("count", "sum", "mean", "min", "max")


@dataclass(frozen=True)
class WindowSpec:
    """What to aggregate, over which windows, grouped how.

    Parameters
    ----------
    size_seconds:
        Window length.
    slide_seconds:
        Distance between consecutive window starts; ``None`` (the
        default) makes the windows tumbling (slide == size).
    aggregate:
        One of ``count``, ``sum``, ``mean``, ``min``, ``max``.
    value_attr:
        Record attribute supplying the aggregated value; required for
        everything except ``count``.
    group_by:
        Optional record attribute whose value partitions each window
        into per-group aggregates (e.g. one mean per ``city``).
    time_attr:
        Record attribute supplying event time (a Timestamp or number).
    """

    size_seconds: float
    slide_seconds: Optional[float] = None
    aggregate: str = "count"
    value_attr: Optional[str] = None
    group_by: Optional[str] = None
    time_attr: str = "window_start"

    def __post_init__(self) -> None:
        if self.size_seconds <= 0:
            raise ConfigurationError("window size must be positive")
        if self.slide_seconds is not None and self.slide_seconds <= 0:
            raise ConfigurationError("window slide must be positive")
        if self.slide_seconds is not None and self.slide_seconds > self.size_seconds:
            raise ConfigurationError(
                "window slide must not exceed the window size (gaps would lose records)"
            )
        if self.aggregate not in AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate {self.aggregate!r}; expected one of {AGGREGATES}"
            )
        if self.aggregate != "count" and self.value_attr is None:
            raise ConfigurationError(f"aggregate {self.aggregate!r} needs value_attr")

    @property
    def slide(self) -> float:
        """Effective slide: the explicit one, or the size (tumbling)."""
        return self.slide_seconds if self.slide_seconds is not None else self.size_seconds


class _Accumulator:
    """Running count/sum/min/max for one (window, group) cell.

    ``count`` tallies every matched record (what the emitted event
    reports); value aggregates read only the ``samples`` that actually
    carried a usable value, so a record missing ``value_attr`` never
    dilutes a mean.
    """

    __slots__ = ("count", "samples", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.samples = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: Optional[float]) -> None:
        self.count += 1
        if value is None:
            return
        self.samples += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self, aggregate: str) -> Optional[float]:
        if aggregate == "count":
            return float(self.count)
        if aggregate == "sum":
            return self.total
        if aggregate == "mean":
            return self.total / self.samples if self.samples else None
        if aggregate == "min":
            return self.minimum
        return self.maximum


class WindowAggregator:
    """Incremental evaluation of one :class:`WindowSpec`.

    :meth:`observe` folds one record in and returns the payloads of
    every window the advancing watermark closed, oldest first.  Each
    payload is ``(window_start, window_end, group, value, count)``;
    the engine wraps them into
    :class:`~repro.stream.subscription.WindowEvent` deliveries.
    """

    def __init__(self, spec: WindowSpec) -> None:
        self.spec = spec
        self.watermark: Optional[float] = None
        self.skipped_records = 0  # records lacking a usable event time
        self.late_records = 0  # records behind an already-emitted window
        self._emitted_until: Optional[float] = None  # ends of closed windows
        # window start -> group key -> accumulator (+ the display value)
        self._open: Dict[float, Dict[Optional[str], Tuple[object, _Accumulator]]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _as_seconds(value) -> Optional[float]:
        if isinstance(value, Timestamp):
            return value.seconds
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return None

    def _window_starts(self, event_time: float) -> List[float]:
        """Starts of every window the event time falls into."""
        spec = self.spec
        first = (event_time // spec.slide) * spec.slide
        starts = []
        start = first
        while start > event_time - spec.size_seconds:
            starts.append(start)
            start -= spec.slide
        return starts

    def observe(self, record: ProvenanceRecord) -> List[Tuple[float, float, object, Optional[float], int]]:
        """Fold one matched record in; return payloads of newly closed windows."""
        spec = self.spec
        event_time = self._as_seconds(record.get(spec.time_attr))
        if event_time is None:
            self.skipped_records += 1
            return []

        value: Optional[float] = None
        if spec.value_attr is not None:
            value = self._as_seconds(record.get(spec.value_attr))

        group_value: object = None
        group_key: Optional[str] = None
        if spec.group_by is not None:
            group_value = record.get(spec.group_by)
            group_key = canonical_encode(group_value) if group_value is not None else None

        for start in self._window_starts(event_time):
            if self._emitted_until is not None and start + spec.size_seconds <= self._emitted_until:
                # That window already closed and emitted without this
                # record: one late count per missed emission, so the
                # counter matches exactly how short the aggregates ran.
                self.late_records += 1
                continue
            cell = self._open.setdefault(start, {})
            if group_key not in cell:
                cell[group_key] = (group_value, _Accumulator())
            cell[group_key][1].add(value)

        if self.watermark is None or event_time > self.watermark:
            self.watermark = event_time
        return self._close_ripe()

    def _close_ripe(self) -> List[Tuple[float, float, object, Optional[float], int]]:
        """Emit every open window whose end the watermark has passed."""
        if self.watermark is None:
            return []
        spec = self.spec
        emitted: List[Tuple[float, float, object, Optional[float], int]] = []
        for start in sorted(self._open):
            end = start + spec.size_seconds
            if end > self.watermark:
                break
            emitted.extend(self._emit(start))
        return emitted

    def _emit(self, start: float) -> List[Tuple[float, float, object, Optional[float], int]]:
        spec = self.spec
        end = start + spec.size_seconds
        groups = self._open.pop(start)
        if self._emitted_until is None or end > self._emitted_until:
            self._emitted_until = end
        payloads = []
        for group_key in sorted(groups, key=lambda k: (k is None, k)):
            group_value, accumulator = groups[group_key]
            payloads.append(
                (start, end, group_value, accumulator.result(spec.aggregate), accumulator.count)
            )
        return payloads

    def flush(self) -> List[Tuple[float, float, object, Optional[float], int]]:
        """Force-close every open window (end of stream / unsubscribe)."""
        payloads = []
        for start in sorted(self._open):
            payloads.extend(self._emit(start))
        return payloads

    def open_windows(self) -> int:
        """How many windows currently hold state."""
        return len(self._open)
