"""The continuous-query engine: standing predicates on the ingest path.

The pull-based query path (``repro.query``) re-pays planner and scan
cost every time a consumer polls.  For streaming sensor data -- storm
triggers, congestion monitors, medical alerts -- the paper's consumers
care about new tuple sets *the moment they land*, so the
:class:`StreamEngine` turns the flow around: consumers register standing
queries once, and every ingested record is matched **incrementally**
against them through the attribute-keyed
:class:`~repro.stream.dispatch.DispatchIndex` (O(candidate
subscriptions) per record, not O(all subscriptions)).

Three subscription kinds:

* **query** -- a predicate from the ``Q`` DSL / core algebra, lowered
  through :func:`repro.query.normalize.normalize` exactly like the pull
  planner's front door; each matching record is delivered as a
  :class:`~repro.stream.subscription.MatchEvent`,
* **window** -- the same, but matched records feed a
  :class:`~repro.stream.windows.WindowAggregator`; consumers receive one
  :class:`~repro.stream.subscription.WindowEvent` per closed window,
* **lineage** -- :meth:`StreamEngine.subscribe_descendants` watches a
  PName and fires a :class:`~repro.stream.subscription.LineageEvent`
  whenever a new (transitive) descendant is published.  When the engine
  is given a ``lineage_oracle`` (the local façade passes the store's
  ``is_ancestor`` whenever the closure strategy has
  ``fast_reachability`` -- labelled or the :mod:`repro.lineage`
  interval index), each ingested record is checked against the watched
  nodes directly -- no engine-side edge or label bookkeeping at all.
  Without an oracle (graph-walking closures, and the distributed
  models, where no single component holds the whole graph) the engine
  falls back to incremental label inheritance: each new record inherits
  the watch labels of its immediate ancestors.  Either way the trigger
  never re-walks the provenance graph per ingest.

The engine is storage-agnostic: :meth:`on_ingest` is fed by a
``PassStore`` post-commit hook locally and by the architecture models'
publish paths in the distributed simulations (which charge one simulated
``notify`` message per delivery; see
:meth:`repro.distributed.base.ArchitectureModel._notify_subscribers`).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.api.dsl import as_query, coerce_pname
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import Query
from repro.errors import QueryError, UnsupportedQueryError
from repro.obs import trace
from repro.query.normalize import normalize
from repro.stream.dispatch import DispatchIndex
from repro.stream.subscription import (
    LineageEvent,
    MatchEvent,
    Subscription,
    WindowEvent,
)
from repro.stream.windows import WindowAggregator, WindowSpec

__all__ = ["StreamEngine", "Delivery"]

#: what ``on_ingest`` hands back: (subscription, event) per delivery --
#: the architecture models charge one ``notify`` message for each.
Delivery = Tuple[Subscription, object]

#: ceiling on the lineage edge map kept for late watches.  Eager label
#: propagation (live watches) is unaffected past the cap; only a *later*
#: ``subscribe_descendants`` loses engine-side history beyond it, and the
#: façade's ``known_descendants`` backfill covers that wherever the
#: target can answer closure queries.  The truncation is surfaced in
#: ``stats()`` -- never silent.
CHILDREN_SEEN_MAX_EDGES = 250_000


class StreamEngine:
    """Holds standing subscriptions and matches ingested records against them.

    Parameters
    ----------
    use_index:
        When False, every record is evaluated against every query
        subscription (the naive baseline ``bench_stream.py`` measures
        the dispatch index against).  Match results are identical either
        way; only the work differs.
    lineage_oracle:
        Optional ``is_ancestor(watched, candidate) -> bool`` callable.
        When given, descendant watches are answered through it (the
        shared reachability index) and the engine keeps no edge/label
        maps of its own; when absent, incremental label inheritance is
        used.  Match results are identical either way.
    """

    def __init__(
        self,
        use_index: bool = True,
        lineage_oracle: Optional[Callable[[PName, PName], bool]] = None,
    ) -> None:
        self.use_index = use_index
        self._lineage_oracle = lineage_oracle
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._subs: Dict[str, Subscription] = {}
        self._query_sub_count = 0  # query+window subs, kept O(1) for the hot path
        self._index = DispatchIndex()
        #: lineage subscriptions by id (the oracle match path iterates
        #: exactly these, never the full subscription table)
        self._lineage_subs: Dict[str, Subscription] = {}
        #: record digest -> ids of lineage subscriptions whose watched
        #: node is an ancestor of (or is) that record
        self._taint: Dict[str, set] = {}
        #: digest -> digests of children among the records seen *while a
        #: lineage watch was active*; lets a late watch label descent that
        #: arrived through intermediates published after the first watch.
        #: Not populated without lineage interest (it would duplicate the
        #: whole provenance edge set in engine memory for nothing) -- the
        #: façade's ``known_descendants`` backfill covers earlier history.
        self._children_seen: Dict[str, set] = {}
        self._children_seen_edges = 0
        self._children_seen_capped = False
        self._lineage_sub_count = 0
        # cumulative totals of unsubscribed subscriptions, so the
        # engine-level deliveries/dropped counters never run backwards
        self._retired_delivered = 0
        self._retired_dropped = 0
        # counters
        self.records_seen = 0
        self.candidates_checked = 0
        self.naive_checks = 0  # what no-index dispatch would have evaluated
        self.matches = 0
        self.window_events = 0
        self.lineage_events = 0
        self.callback_errors = 0

    @property
    def needs_lineage_backfill(self) -> bool:
        """Whether descendant watches need a closure seed at registration.

        With a lineage oracle the shared index answers descent through
        pre-existing intermediates by itself; only the label-inheritance
        fallback needs the caller to supply ``known_descendants``.
        """
        return self._lineage_oracle is None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query=None,
        *,
        callback=None,
        window: Optional[WindowSpec] = None,
        site: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        """Register a standing query (optionally windowed); returns the subscription.

        The predicate is lowered and normalized exactly like the pull
        planner's input.  A standing query's ``limit``/``order_by`` make
        no sense on an unbounded stream and are rejected; lineage
        predicates are too (use :meth:`subscribe_descendants`), because
        matching them per record would re-run transitive closure on the
        ingest hot path.
        """
        lowered = as_query(query)
        if lowered.requires_lineage:
            raise UnsupportedQueryError(
                "standing queries cannot carry lineage predicates; "
                "use subscribe_descendants() for incremental lineage triggers"
            )
        if lowered.limit is not None or lowered.order_by is not None:
            raise QueryError(
                "limit/order_by do not apply to standing queries; "
                "they describe finite answers, a subscription is unbounded"
            )
        normalized = Query(
            predicate=normalize(lowered.predicate),
            include_removed=lowered.include_removed,
        )
        if window is not None and not isinstance(window, WindowSpec):
            raise QueryError(f"window must be a WindowSpec, got {window!r}")
        with self._lock:
            seq = next(self._ids)
            subscription = Subscription(
                subscription_id=f"sub-{seq}",
                kind="window" if window is not None else "query",
                query=normalized,
                window=WindowAggregator(window) if window is not None else None,
                site=site,
                callback=callback,
                maxsize=maxsize,
                overflow=overflow,
                name=name,
            )
            subscription.seq = seq
            self._subs[subscription.id] = subscription
            self._query_sub_count += 1
            self._index.add(subscription.id, normalized.predicate)
            return subscription

    def subscribe_descendants(
        self,
        watched,
        *,
        callback=None,
        site: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
        known_descendants: Optional[Iterable[PName]] = None,
    ) -> Subscription:
        """Fire whenever a new (transitive) descendant of ``watched`` is published.

        Only *new* publishes fire events, but descent must be detectable
        through intermediates that already exist: the watch label is
        seeded onto every descendant this engine has already seen, plus
        any ``known_descendants`` the caller's storage layer supplies
        (the façade passes the store/model's current descendant set, so
        a watch registered late still catches grandchildren of
        pre-existing children).
        """
        pname = coerce_pname(watched)
        with self._lock:
            seq = next(self._ids)
            subscription = Subscription(
                subscription_id=f"sub-{seq}",
                kind="lineage",
                watched=pname,
                site=site,
                callback=callback,
                maxsize=maxsize,
                overflow=overflow,
                name=name,
            )
            subscription.seq = seq
            self._subs[subscription.id] = subscription
            self._lineage_subs[subscription.id] = subscription
            self._lineage_sub_count += 1
            if self._lineage_oracle is None:
                # Label-inheritance fallback: seed the watch label onto
                # everything already known to descend from the watch.
                known = list(known_descendants or ())  # may be a one-shot iterable
                self._taint.setdefault(pname.digest, set()).add(subscription.id)
                for descendant in known:
                    self._taint.setdefault(descendant.digest, set()).add(subscription.id)
                # Propagate the label through descent seen before registration.
                frontier = [pname.digest] + [descendant.digest for descendant in known]
                while frontier:
                    digest = frontier.pop()
                    for child in self._children_seen.get(digest, ()):
                        labels = self._taint.setdefault(child, set())
                        if subscription.id not in labels:
                            labels.add(subscription.id)
                            frontier.append(child)
            return subscription

    def unsubscribe(self, subscription) -> bool:
        """Deactivate a subscription (by object or id); True when it existed."""
        subscription_id = getattr(subscription, "id", subscription)
        with self._lock:
            found = self._subs.pop(subscription_id, None)
            if found is None:
                return False
            found.active = False
            self._retired_delivered += found.delivered
            self._retired_dropped += found.dropped
            if found.kind in ("query", "window"):
                self._query_sub_count -= 1
                self._index.remove(subscription_id)
            else:
                self._lineage_sub_count -= 1
                self._lineage_subs.pop(subscription_id, None)
                if self._lineage_sub_count == 0:
                    # No watchers left: drop the label and edge maps
                    # entirely (a later watch re-seeds history through
                    # the façade's known_descendants backfill).
                    self._taint.clear()
                    self._children_seen.clear()
                    self._children_seen_edges = 0
                else:
                    for labels in self._taint.values():
                        labels.discard(subscription_id)
            if found.queue is not None:
                found.queue.close()
            return True

    def subscriptions(self) -> List[Subscription]:
        """Every active subscription, in registration order."""
        with self._lock:
            return list(self._subs.values())

    # ------------------------------------------------------------------
    # The ingest path
    # ------------------------------------------------------------------
    def on_ingest(self, pname: PName, record: ProvenanceRecord) -> List[Delivery]:
        """Match one freshly committed record, deliver and return the events.

        The local ingest hook: matching and delivery in one step.  The
        architecture models call :meth:`match` + :meth:`deliver_one`
        instead, so a delivery only happens when its simulated ``notify``
        message actually got through.
        """
        with trace.span("stream.dispatch", attrs={"record": pname.short}):
            events = self.match(pname, record)
            self._deliver_all(events)
        return events

    def match(self, pname: PName, record: ProvenanceRecord) -> List[Delivery]:
        """Match one record against every subscription *without* delivering.

        Matching happens under the engine lock; delivery (see
        :meth:`deliver_one` / :meth:`on_ingest`) happens outside it, so
        a ``"block"`` queue waiting for a slow consumer never deadlocks
        new subscribers.  Window state advances here -- the aggregation
        lives where the matching runs -- even if a delivery is later
        dropped on the simulated network.
        """
        events: List[Delivery] = []
        with self._lock:
            self.records_seen += 1
            self.naive_checks += self._query_sub_count
            if self.use_index:
                candidate_ids = self._index.candidates(record)
                candidates = [self._subs[sid] for sid in candidate_ids if sid in self._subs]
                candidates.sort(key=_registration_order)
            else:
                candidates = [s for s in self._subs.values() if s.kind in ("query", "window")]
            self.candidates_checked += len(candidates)
            for subscription in candidates:
                if not subscription.query.predicate.matches(pname, record, None):
                    continue
                self.matches += 1
                if subscription.window is not None:
                    for payload in subscription.window.observe(record):
                        self._emit(events, self._window_delivery(subscription, payload))
                else:
                    self._emit(
                        events, (subscription, MatchEvent(subscription.id, pname, record))
                    )

            # Lineage triggers.  With an oracle, ask the shared
            # reachability index directly (O(watches) probes, no engine
            # state); otherwise the new record inherits its ancestors'
            # watch labels, so descent is detected in O(edges).
            labels: set = set()
            if self._lineage_sub_count and self._lineage_oracle is not None:
                # O(watches), not O(all subscriptions): content/window
                # subscriptions stay behind the dispatch index's pruning.
                for subscription in self._lineage_subs.values():
                    if self._lineage_oracle(subscription.watched, pname):
                        labels.add(subscription.id)
            elif self._lineage_sub_count:
                for ancestor in record.ancestors:
                    if self._children_seen_edges < CHILDREN_SEEN_MAX_EDGES:
                        bucket = self._children_seen.setdefault(ancestor.digest, set())
                        if pname.digest not in bucket:
                            bucket.add(pname.digest)
                            self._children_seen_edges += 1
                    else:
                        self._children_seen_capped = True
                    hit = self._taint.get(ancestor.digest)
                    if hit:
                        labels |= hit
            if labels:
                if self._lineage_oracle is None:
                    self._taint.setdefault(pname.digest, set()).update(labels)
                watchers = sorted(
                    (self._subs[sid] for sid in labels if sid in self._subs),
                    key=_registration_order,
                )
                for subscription in watchers:
                    self.lineage_events += 1
                    self._emit(
                        events,
                        (
                            subscription,
                            LineageEvent(subscription.id, subscription.watched, pname, record),
                        ),
                    )

        return events

    def deliver_one(self, subscription: Subscription, event) -> None:
        """Hand one matched event to its consumer, isolating failures.

        The producer already committed the record; a subscriber callback
        that raises must not starve the remaining subscribers or make
        the successful ingest look failed.  Failures are counted on the
        subscription (``errors``) and the engine (``callback_errors``)
        instead of propagating.
        """
        try:
            subscription.deliver(event)
        except Exception:
            subscription.errors += 1
            self.callback_errors += 1

    def _deliver_all(self, events: List[Delivery]) -> None:
        for subscription, event in events:
            self.deliver_one(subscription, event)

    def flush_windows(self) -> List[Delivery]:
        """Force-close every open window on every windowed subscription."""
        events: List[Delivery] = []
        with self._lock:
            for subscription in self._subs.values():
                if subscription.window is None:
                    continue
                for payload in subscription.window.flush():
                    self._emit(events, self._window_delivery(subscription, payload))
        self._deliver_all(events)
        return events

    @staticmethod
    def _emit(events: List[Delivery], delivery: Delivery) -> None:
        """Record one matched event: ``matched`` counts at match time, so a
        notification later lost on the simulated network still shows up as
        matched-but-not-delivered in the subscription's stats."""
        delivery[0].matched += 1
        events.append(delivery)

    def _window_delivery(self, subscription: Subscription, payload) -> Delivery:
        """Wrap one closed-window payload into a (subscription, WindowEvent)."""
        start, end, group, value, count = payload
        self.window_events += 1
        return (
            subscription,
            WindowEvent(
                subscription_id=subscription.id,
                window_start=start,
                window_end=end,
                group=group,
                aggregate=subscription.window.spec.aggregate,
                value=value,
                count=count,
            ),
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine counters plus dispatch-index occupancy and per-sub stats."""
        with self._lock:
            # Cumulative across unsubscribes: the counters never run
            # backwards, so dashboards can compute deltas safely.
            delivered = self._retired_delivered + sum(
                s.delivered for s in self._subs.values()
            )
            dropped = self._retired_dropped + sum(s.dropped for s in self._subs.values())
            facts = {
                "subscriptions": len(self._subs),
                "records_seen": self.records_seen,
                "candidates_checked": self.candidates_checked,
                "naive_checks": self.naive_checks,
                "matches": self.matches,
                "deliveries": delivered,
                "dropped": dropped,
                "callback_errors": self.callback_errors,
                "window_events": self.window_events,
                "lineage_events": self.lineage_events,
                "lineage_matching": (
                    "shared-index" if self._lineage_oracle is not None else "label-inheritance"
                ),
                "dispatch_index": self._index.stats(),
            }
            if self._children_seen_capped:
                facts["lineage_edges_capped"] = True  # late-watch history truncated
            return facts


def _registration_order(subscription: Subscription) -> int:
    """Deterministic delivery order: subscriptions fire as registered."""
    return subscription.seq
