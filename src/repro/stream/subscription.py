"""Subscriptions and their delivery channels.

A subscription couples a standing interest (a predicate, a window
aggregation over a predicate, or a lineage watch) with a *delivery
channel*: either a callback invoked synchronously on the ingest path, or
a bounded pull queue the consumer drains at its own pace.

Bounded queues need an explicit overflow policy, because a streaming
producer does not wait for slow consumers by default:

* ``"drop-oldest"`` (the default) -- the queue keeps the most recent
  events; evicted events are counted in ``Subscription.stats()`` so the
  loss is visible, never silent,
* ``"block"`` -- the ingest path blocks until the consumer makes room;
  only sensible when the consumer runs on another thread.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import Query
from repro.errors import ConfigurationError

__all__ = [
    "OVERFLOW_POLICIES",
    "MatchEvent",
    "WindowEvent",
    "LineageEvent",
    "DeliveryQueue",
    "Subscription",
]

OVERFLOW_POLICIES = ("drop-oldest", "block")


def _validate_queue_options(maxsize: int, overflow: str) -> None:
    """Shared validation: also applied to callback subscriptions, so a
    typo'd policy surfaces immediately rather than when someone later
    switches the subscription to pull delivery."""
    if maxsize <= 0:
        raise ConfigurationError("delivery queue maxsize must be positive")
    if overflow not in OVERFLOW_POLICIES:
        raise ConfigurationError(
            f"unknown overflow policy {overflow!r}; expected one of {OVERFLOW_POLICIES}"
        )


@dataclass(frozen=True)
class MatchEvent:
    """A freshly ingested tuple set matched a standing query."""

    subscription_id: str
    pname: PName
    record: ProvenanceRecord


@dataclass(frozen=True)
class WindowEvent:
    """A window closed: one aggregate value over the records it admitted."""

    subscription_id: str
    window_start: float
    window_end: float
    group: Optional[object]
    aggregate: str
    value: Optional[float]
    count: int


@dataclass(frozen=True)
class LineageEvent:
    """A new (transitive) descendant of a watched tuple set was published."""

    subscription_id: str
    watched: PName
    pname: PName
    record: ProvenanceRecord


class DeliveryQueue:
    """A bounded, thread-safe event queue with an explicit overflow policy."""

    def __init__(self, maxsize: int = 256, overflow: str = "drop-oldest") -> None:
        _validate_queue_options(maxsize, overflow)
        self.maxsize = maxsize
        self.overflow = overflow
        self.dropped = 0
        self._events: deque = deque()
        self._condition = threading.Condition()
        self._closed = False

    def put(self, event) -> bool:
        """Enqueue one event; returns True when *this* event landed.

        Under ``"block"`` the call waits for space (the consumer must run
        elsewhere); under ``"drop-oldest"`` the oldest queued event is
        evicted -- counted in :attr:`dropped` -- and the new event always
        lands.  Only a closed queue refuses the new event itself.
        """
        with self._condition:
            if self._closed:
                self.dropped += 1
                return False
            if self.overflow == "block":
                while len(self._events) >= self.maxsize and not self._closed:
                    self._condition.wait()
                if self._closed:
                    self.dropped += 1
                    return False
                self._events.append(event)
                self._condition.notify_all()
                return True
            if len(self._events) >= self.maxsize:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)
            self._condition.notify_all()
            return True

    def get(self, timeout: Optional[float] = 0.0):
        """Dequeue one event, or ``None`` when empty after ``timeout`` seconds.

        ``timeout=0`` polls; ``timeout=None`` waits until an event arrives
        or the queue is closed.
        """
        with self._condition:
            if not self._events and not self._closed and timeout != 0.0:
                self._condition.wait_for(
                    lambda: self._events or self._closed, timeout=timeout
                )
            if not self._events:
                return None
            event = self._events.popleft()
            self._condition.notify_all()
            return event

    def drain(self) -> List[object]:
        """Every currently queued event, removed from the queue."""
        with self._condition:
            events = list(self._events)
            self._events.clear()
            self._condition.notify_all()
            return events

    def close(self) -> None:
        """Stop accepting events and wake any blocked producer/consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return len(self._events)


class Subscription:
    """One standing interest registered with a :class:`~repro.stream.engine.StreamEngine`.

    Constructed by the engine's ``subscribe*`` methods, never directly.
    Delivery goes to ``callback`` when one was given, otherwise to the
    bounded pull :attr:`queue` (read via :meth:`poll`, :meth:`drain` or
    :meth:`events`).
    """

    def __init__(
        self,
        subscription_id: str,
        kind: str,
        query: Optional[Query] = None,
        watched: Optional[PName] = None,
        window=None,
        site: Optional[str] = None,
        callback: Optional[Callable[[object], None]] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> None:
        self.id = subscription_id
        self.seq = 0  # registration order, assigned by the engine
        self.kind = kind  # "query" | "window" | "lineage"
        self.query = query
        self.watched = watched
        self.window = window
        self.site = site
        self.name = name
        self.callback = callback
        if callback is None:
            self.queue = DeliveryQueue(maxsize, overflow)
        else:
            _validate_queue_options(maxsize, overflow)
            self.queue = None
        self.active = True
        self.matched = 0
        self.delivered = 0
        self.errors = 0  # callback invocations that raised (engine-counted)

    # -- delivery (engine side) -----------------------------------------
    def deliver(self, event) -> bool:
        """Hand one event to the consumer; returns True when it landed.

        An event refused by a closed queue counts as dropped, never as
        delivered -- ``delivered`` only tallies events the consumer can
        actually observe.  (``matched`` is counted by the engine at match
        time, so a notification lost on the simulated network still shows
        up as matched-but-not-delivered.)
        """
        if self.callback is not None:
            self.callback(event)
            self.delivered += 1
            return True
        landed = self.queue.put(event)
        if landed:
            self.delivered += 1
        return landed

    # -- consumption (consumer side) ------------------------------------
    def poll(self, timeout: Optional[float] = 0.0):
        """Next pending event, or ``None`` (callback subscriptions have no queue)."""
        if self.queue is None:
            return None
        return self.queue.get(timeout)

    def drain(self) -> List[object]:
        """All pending events at once (empty for callback subscriptions)."""
        if self.queue is None:
            return []
        return self.queue.drain()

    def events(self, timeout: Optional[float] = 0.0) -> Iterator[object]:
        """Iterate over pending events until the queue runs dry (or closes)."""
        while True:
            event = self.poll(timeout)
            if event is None:
                return
            yield event

    @property
    def dropped(self) -> int:
        """Events evicted by the overflow policy (0 for callback delivery)."""
        return self.queue.dropped if self.queue is not None else 0

    def stats(self) -> dict:
        """Per-subscription counters for reports and ``client.stats()``."""
        return {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "site": self.site,
            "active": self.active,
            "matched": self.matched,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "errors": self.errors,
            "pending": len(self.queue) if self.queue is not None else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.id
        return f"<Subscription {label} kind={self.kind} active={self.active}>"
