"""repro.stream -- continuous queries and live subscriptions.

The ingest-path counterpart of :mod:`repro.query`: standing predicates
(registered through the same ``Q`` DSL and normalizer the pull planner
uses) are compiled into an attribute-keyed dispatch index and matched
incrementally as tuple sets land, with sliding/tumbling window
aggregations and incremental lineage triggers on top.

Most callers never touch this package directly -- they call
``client.subscribe(...)`` / ``client.subscribe_descendants(...)`` on any
:func:`repro.api.connect` target and consume
:class:`~repro.stream.subscription.MatchEvent` /
:class:`~repro.stream.subscription.WindowEvent` /
:class:`~repro.stream.subscription.LineageEvent` objects.  See
``docs/STREAMS.md``.
"""

from repro.stream.dispatch import DispatchIndex
from repro.stream.engine import StreamEngine
from repro.stream.subscription import (
    OVERFLOW_POLICIES,
    DeliveryQueue,
    LineageEvent,
    MatchEvent,
    Subscription,
    WindowEvent,
)
from repro.stream.windows import AGGREGATES, WindowAggregator, WindowSpec

__all__ = [
    "AGGREGATES",
    "OVERFLOW_POLICIES",
    "DeliveryQueue",
    "DispatchIndex",
    "LineageEvent",
    "MatchEvent",
    "StreamEngine",
    "Subscription",
    "WindowAggregator",
    "WindowEvent",
    "WindowSpec",
]
