"""The attribute-keyed dispatch index for standing queries.

With naive dispatch, every ingested record is evaluated against every
standing predicate: O(subscriptions) full evaluations per record.  The
dispatch index inverts that, the way content-based publish/subscribe
matchers do: at registration time each (normalized) predicate is
compiled into **anchor groups** -- attribute facts a matching record
must exhibit -- and at ingest time the record's own attributes probe the
anchor postings.  A subscription becomes a candidate only when *every*
one of its groups is hit (the counting algorithm), so conjunctions prune
multiplicatively: ``domain == 'traffic' & city == 'london'`` is only
evaluated for records exhibiting **both** facts, not for all traffic
records everywhere.

Anchor soundness is the whole game: a group may only be demanded when a
record missing all of its anchors *cannot* match the predicate.

* ``AttributeEquals(a, v)`` -> group {a == v} (keyed on the canonical
  encoding, the same equality the predicate itself uses),
* ``AttributeIn(a, vs)`` -> one group holding an equality anchor per
  value (any one satisfies the group),
* range / contains / exists / near / time-window predicates -> group
  {record carries the attribute} (presence anchor),
* ``And`` -> the concatenation of every anchorable conjunct's groups
  (all must hold; unanchorable conjuncts contribute nothing),
* ``Or`` -> one group holding the union of all branch anchors -- any
  matching branch hits it; one unanchorable branch poisons the whole
  predicate into the scan bucket,
* everything else (negated leaves -- which can match records *lacking*
  the attribute -- agent/annotation/rawness predicates, ``TRUE``) lands
  in the scan bucket and is evaluated for every record.

The index never answers membership itself; it only prunes.  The full
predicate always runs on the candidates, so indexed and naive dispatch
match *identical* record sets (property-tested in
``tests/stream/test_dispatch_index.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.attributes import canonical_encode
from repro.core.provenance import ProvenanceRecord
from repro.core.query import (
    And,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    NearLocation,
    Or,
    Predicate,
    TimeWindowOverlaps,
)

__all__ = ["DispatchIndex", "anchor_groups_for"]

#: anchor tuples: ("eq", attr, encoded_value) or ("attr", attr)
_Anchor = Tuple
#: a group is satisfied when any one of its anchors is hit
_Group = List


def _leaf_groups(predicate: Predicate) -> Optional[List[_Group]]:
    """Anchor groups of one non-combinator predicate, or None when unanchorable."""
    if isinstance(predicate, AttributeEquals):
        return [[("eq", predicate.name, canonical_encode(predicate.value))]]
    if isinstance(predicate, AttributeIn):
        if not predicate.values:
            return None
        return [[("eq", predicate.name, canonical_encode(v)) for v in predicate.values]]
    if isinstance(predicate, (AttributeRange, AttributeContains, AttributeExists, NearLocation)):
        return [[("attr", predicate.name)]]
    if isinstance(predicate, TimeWindowOverlaps):
        return [[("attr", predicate.start_attr)]]
    return None


def anchor_groups_for(predicate: Predicate) -> Optional[List[_Group]]:
    """The anchor groups of a normalized predicate, or None for the scan bucket.

    Semantics: a record can match only if every returned group has at
    least one hit among the record's attribute facts.
    """
    if isinstance(predicate, And):
        groups: List[_Group] = []
        for part in predicate.parts:
            candidate = anchor_groups_for(part)
            if candidate is not None:
                groups.extend(candidate)
        return groups or None
    if isinstance(predicate, Or):
        union: _Group = []
        for part in predicate.parts:
            candidate = anchor_groups_for(part)
            if candidate is None:
                return None  # one unanchorable branch poisons the disjunction
            # A record matching this branch hits each of the branch's
            # groups, so it certainly hits the union of all its anchors.
            for group in candidate:
                union.extend(group)
        return [union] if union else None
    return _leaf_groups(predicate)


class DispatchIndex:
    """Maps attribute facts of incoming records to candidate subscription ids."""

    def __init__(self) -> None:
        #: (attr, encoded value) -> [(subscription id, group index), ...]
        self._eq: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
        #: attr -> [(subscription id, group index), ...]
        self._attr: Dict[str, List[Tuple[str, int]]] = {}
        #: attribute names with any equality postings (skips encoding work)
        self._eq_names: Set[str] = set()
        #: subscription id -> number of groups that must be hit
        self._required: Dict[str, int] = {}
        self._scan: Set[str] = set()
        self._placement: Dict[str, List[_Group]] = {}

    def __len__(self) -> int:
        return len(self._placement) + len(self._scan)

    def add(self, subscription_id: str, predicate: Predicate) -> str:
        """Register a (normalized) predicate; returns the bucket kind used."""
        groups = anchor_groups_for(predicate)
        if groups is None:
            self._scan.add(subscription_id)
            return "scan"
        self._placement[subscription_id] = groups
        self._required[subscription_id] = len(groups)
        anchored_eq = False
        for group_index, group in enumerate(groups):
            for anchor in group:
                if anchor[0] == "eq":
                    key = (anchor[1], anchor[2])
                    self._eq.setdefault(key, []).append((subscription_id, group_index))
                    self._eq_names.add(anchor[1])
                    anchored_eq = True
                else:
                    self._attr.setdefault(anchor[1], []).append((subscription_id, group_index))
        return "eq" if anchored_eq else "attr"

    def remove(self, subscription_id: str) -> None:
        """Drop a subscription from every posting it was registered under."""
        if subscription_id in self._scan:
            self._scan.discard(subscription_id)
            return
        groups = self._placement.pop(subscription_id, None)
        self._required.pop(subscription_id, None)
        if groups is None:
            return
        for group_index, group in enumerate(groups):
            for anchor in group:
                if anchor[0] == "eq":
                    key = (anchor[1], anchor[2])
                    postings = self._eq.get(key)
                    if postings is not None:
                        postings[:] = [p for p in postings if p[0] != subscription_id]
                        if not postings:
                            del self._eq[key]
                else:
                    postings = self._attr.get(anchor[1])
                    if postings is not None:
                        postings[:] = [p for p in postings if p[0] != subscription_id]
                        if not postings:
                            del self._attr[anchor[1]]
        self._eq_names = {name for name, _ in self._eq}

    def candidates(self, record: ProvenanceRecord) -> Set[str]:
        """Subscription ids whose predicates could match ``record``.

        The counting pass: walk the postings of every attribute fact the
        record exhibits, tally distinct groups hit per subscription, and
        keep the subscriptions whose every group was hit.
        """
        found: Set[str] = set(self._scan)
        if not self._eq and not self._attr:
            return found
        hits: Dict[str, Set[int]] = {}
        for name, value in record.attributes.items():
            presence = self._attr.get(name)
            if presence:
                for subscription_id, group_index in presence:
                    hits.setdefault(subscription_id, set()).add(group_index)
            if name in self._eq_names:
                equality = self._eq.get((name, canonical_encode(value)))
                if equality:
                    for subscription_id, group_index in equality:
                        hits.setdefault(subscription_id, set()).add(group_index)
        required = self._required
        for subscription_id, groups_hit in hits.items():
            if len(groups_hit) >= required[subscription_id]:
                found.add(subscription_id)
        return found

    def stats(self) -> dict:
        """Bucket occupancy, for ``StreamEngine.stats()``."""
        return {
            "subscriptions": len(self),
            "equality_keys": len(self._eq),
            "presence_keys": len(self._attr),
            "scan_bucket": len(self._scan),
        }
