"""The unified metrics registry: counters, gauges, histograms, providers.

Every subsystem already keeps counters (``StoreStatistics``,
``TrafficStats``, the planner cache, the stream engine, ``SimReport``);
what was missing is one place that *serves* them.  A
:class:`MetricsRegistry` holds:

* :class:`Counter` -- a monotonically increasing count,
* :class:`Gauge` -- a point-in-time value, either set explicitly or
  computed by a callback at collection time,
* :class:`Histogram` -- a log-bucketed latency/size distribution with
  streaming p50/p95/p99 estimation: observations land in geometric
  buckets (growth factor 1.1, so quantile estimates carry at most ~5%
  relative error) and no samples are retained, making ``observe`` O(1)
  in time and O(log range) in memory,
* snapshot *providers* -- callbacks producing the structured blocks the
  pre-registry ``stats()`` shapes promised (``store``, ``backend``,
  ``planner``, ``closure``, ``stream``, ``sim``, ``traffic``), so the
  registry serves the whole documented schema from one
  :meth:`MetricsRegistry.collect` call without changing any key.

Naming scheme: dotted lowercase paths, ``<layer>.<op>[.<unit>]`` --
``client.query`` (counter), ``client.query.ms`` (histogram),
``client.query.errors`` (counter).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional

from repro.obs.trace import ring_counters

__all__ = ["Counter", "Gauge", "Histogram", "HistogramState", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (int increments are GIL-atomic)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value: set explicitly or computed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], object]] = None) -> None:
        self.name = name
        self._value: object = None
        self._fn = fn

    def set(self, value) -> None:
        self._value = value

    def read(self):
        if self._fn is not None:
            return self._fn()
        return self._value


#: geometric bucket growth; 1.1 bounds quantile error at ~4.9% relative
_BUCKET_BASE = 1.1
_LOG_BASE = math.log(_BUCKET_BASE)

#: the shared bucket for observations <= 0 (log-bucketing needs positives)
_UNDERFLOW = -(10**6)


def _bucket_quantile(
    count: int,
    buckets: Dict[int, int],
    low: Optional[float],
    high: Optional[float],
    q: float,
) -> Optional[float]:
    """Walk sorted sparse buckets to rank ``q`` and answer the hit
    bucket's geometric midpoint, clamped into the observed [low, high]
    envelope.  One implementation serves both the live :class:`Histogram`
    and merged :class:`HistogramState` windows, so window quantiles carry
    exactly the same <= ~5% bucket error as live ones."""
    if not count:
        return None
    rank = max(1, math.ceil(q * count))
    seen = 0
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= rank:
            if index == _UNDERFLOW:
                return low if low is not None and low <= 0 else 0.0
            midpoint = _BUCKET_BASE ** (index + 0.5)
            lo = low if low is not None else midpoint
            hi = high if high is not None else midpoint
            return min(max(midpoint, lo), hi)
    return None  # pragma: no cover - loop always hits the rank


class HistogramState:
    """A mergeable snapshot of a histogram's buckets at one instant.

    Bucket counts are exact, so merging K states reproduces the bucket
    table of the union of their observations *exactly* -- quantiles over
    a merged window carry only the underlying ~5% bucket error, never
    additional merge error.  The time-series layer stores one interval
    state per sampling tick (the :meth:`delta` between consecutive
    cumulative scrapes) and answers percentile-over-window queries by
    merging the interval states inside the window.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(
        self,
        count: int = 0,
        total: float = 0.0,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        buckets: Optional[Dict[int, int]] = None,
    ) -> None:
        self.count = count
        self.total = total
        self.min = minimum
        self.max = maximum
        self.buckets: Dict[int, int] = dict(buckets) if buckets else {}

    @property
    def empty(self) -> bool:
        return self.count == 0

    def merge(self, other: "HistogramState") -> "HistogramState":
        """The state of the union of both states' observations."""
        buckets = dict(self.buckets)
        for index, n in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        mins = [v for v in (self.min, other.min) if v is not None]
        maxes = [v for v in (self.max, other.max) if v is not None]
        return HistogramState(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(mins) if mins else None,
            maximum=max(maxes) if maxes else None,
            buckets=buckets,
        )

    def delta(self, earlier: "HistogramState") -> "HistogramState":
        """The observations between ``earlier`` and this cumulative state.

        Bucket counts subtract exactly.  A true per-interval min/max is
        not recoverable from two cumulative snapshots, so the delta's
        envelope is derived from its populated buckets' geometric bounds
        (then clamped into the cumulative envelope) -- an approximation
        that stays within the bucket error quantiles already carry.
        """
        buckets: Dict[int, int] = {}
        for index, n in self.buckets.items():
            remaining = n - earlier.buckets.get(index, 0)
            if remaining > 0:
                buckets[index] = remaining
        count = sum(buckets.values())
        if not count:
            return HistogramState()
        lows: List[float] = []
        highs: List[float] = []
        for index in buckets:
            if index == _UNDERFLOW:
                low = self.min if self.min is not None and self.min <= 0 else 0.0
                lows.append(low)
                highs.append(0.0)
            else:
                lows.append(_BUCKET_BASE**index)
                highs.append(_BUCKET_BASE ** (index + 1))
        minimum = min(lows)
        maximum = max(highs)
        if self.min is not None:
            minimum = max(minimum, self.min)
        if self.max is not None:
            maximum = min(maximum, self.max)
        return HistogramState(
            count=count,
            total=max(0.0, self.total - earlier.total),
            minimum=minimum,
            maximum=max(minimum, maximum),
            buckets=buckets,
        )

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``q`` in [0, 1]); None when empty."""
        return _bucket_quantile(self.count, self.buckets, self.min, self.max, q)

    def summary(self) -> dict:
        """The stable histogram shape: count/mean/min/max + p50/p95/p99."""
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else None,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Histogram:
    """A log-bucketed distribution with streaming quantile estimation.

    Positive observations map to bucket ``floor(log(value)/log(1.1))``;
    zero and negative values share one underflow bucket.  Quantiles are
    answered by walking the (sparse, sorted) buckets to the target rank
    and reporting the hit bucket's geometric midpoint -- p50/p95/p99
    without storing a single sample, at most ~5% relative error.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if value > 0:
            index = int(math.log(value) / _LOG_BASE)
            # int() truncates toward zero; sub-1.0 values need the floor.
            if value < _BUCKET_BASE**index:
                index -= 1
        else:
            index = _UNDERFLOW
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``q`` in [0, 1]); None when empty."""
        with self._lock:
            return _bucket_quantile(self.count, self._buckets, self.min, self.max, q)

    def state(self) -> HistogramState:
        """A mergeable point-in-time snapshot of the full bucket table."""
        with self._lock:
            return HistogramState(self.count, self.total, self.min, self.max, self._buckets)

    def snapshot(self) -> dict:
        """The stable histogram shape: count/mean/min/max + p50/p95/p99."""
        with self._lock:
            count = self.count
            mean = self.total / count if count else None
            low, high = self.min, self.max
        return {
            "count": count,
            "mean": mean,
            "min": low,
            "max": high,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """One registry serving a target's whole ``stats()`` answer.

    Structured snapshot *providers* reproduce the documented per-block
    schema (registration order is serving order), and the registry's own
    instruments surface under the ``obs`` key.  The façade's operation
    wrapper records one counter + one latency histogram per protocol op
    through :meth:`record_op`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: List[tuple] = []

    # -- instruments -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str, fn: Optional[Callable[[], object]] = None) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, fn)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def record_op(self, op: str, duration_ms: float, failed: bool = False) -> None:
        """One protocol operation: count it, time it, count its failure."""
        self.counter(f"client.{op}").inc()
        self.histogram(f"client.{op}.ms").observe(duration_ms)
        if failed:
            self.counter(f"client.{op}.errors").inc()

    # -- structured snapshot providers -----------------------------------
    def register_provider(self, key: str, fn: Callable[[], object]) -> None:
        """Serve ``fn()`` under ``key`` in every :meth:`collect` answer."""
        self._providers.append((key, fn))

    def instruments(self) -> tuple:
        """Point-in-time copies of the three instrument tables.

        What background samplers iterate: ``(counters, gauges,
        histograms)`` as name-keyed dicts of the live instrument objects.
        """
        with self._lock:
            return dict(self._counters), dict(self._gauges), dict(self._histograms)

    def obs_snapshot(self) -> dict:
        """The registry's own instruments as the stable ``obs`` block.

        The process tracer's loss accounting (``trace.spans_dropped``,
        ``trace.exports_truncated``) rides along as counters, so every
        target's ``stats()["obs"]`` shows trace loss without a tracer API.
        """
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.read() for name, g in sorted(self._gauges.items())}
            histograms = dict(sorted(self._histograms.items()))
        counters.update(ring_counters())
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": gauges,
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
        }

    def collect(self) -> Dict[str, object]:
        """Every provider block plus the ``obs`` block, in serving order."""
        facts: Dict[str, object] = {}
        for key, fn in self._providers:
            facts[key] = fn()
        facts["obs"] = self.obs_snapshot()
        return facts
