"""End-to-end telemetry (``repro.obs``): tracing, metrics, introspection.

Three pieces, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.trace` -- structured request tracing: spans with
  trace/span/parent ids, implicit context propagation, wire-carried
  context over ``pass://``, Chrome trace-event export,
* :mod:`repro.obs.metrics` -- the unified registry (counters, gauges,
  log-bucketed histograms with streaming p50/p95/p99) every
  ``client.stats()`` answer is served from,
* the daemon introspection surface (access log, ``metrics`` wire op,
  slow-query log) lives with the daemon in :mod:`repro.server.daemon`
  and is read by ``repro top``.

The ``STATS_*_KEYS`` constants are the documented ``stats()`` schema
contract: every connect target emits at least the common keys, and each
target family adds its own.  The golden-key test
(``tests/obs/test_stats_schema.py``) holds every target to this.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, SpanContext, Tracer, chrome_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "span",
    "STATS_COMMON_KEYS",
    "STATS_LOCAL_KEYS",
    "STATS_MODEL_KEYS",
    "STATS_REMOTE_KEYS",
]

#: every connect() target's stats() carries at least these keys
STATS_COMMON_KEYS = frozenset({"target", "stream", "sim", "obs"})

#: local stores (memory:// and sqlite://) add the store-side blocks
STATS_LOCAL_KEYS = STATS_COMMON_KEYS | {
    "site",
    "records",
    "store",
    "backend",
    "planner",
    "closure",
}

#: architecture models add the model facts and the traffic snapshot
STATS_MODEL_KEYS = STATS_COMMON_KEYS | {
    "name",
    "supports_lineage",
    "requires_stable_hosts",
    "published",
    "queries_run",
    "notifications_sent",
    "notifications_suppressed",
    "sites",
    "traffic",
}

#: pass:// serves the tenant store's local schema plus remote identity
#: and the socket-side client block
STATS_REMOTE_KEYS = STATS_LOCAL_KEYS | {"tenant", "client"}
