"""End-to-end telemetry (``repro.obs``): tracing, metrics, introspection.

Three pieces, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.trace` -- structured request tracing: spans with
  trace/span/parent ids, implicit context propagation, wire-carried
  context over ``pass://``, Chrome trace-event export,
* :mod:`repro.obs.metrics` -- the unified registry (counters, gauges,
  log-bucketed histograms with streaming p50/p95/p99) every
  ``client.stats()`` answer is served from,
* :mod:`repro.obs.timeseries` -- the bounded fixed-interval ring store
  retaining metric history (rates, windowed percentiles), fed by the
  daemon's background sampler on wall time and by the sim kernel on the
  virtual clock -- one schema for both,
* :mod:`repro.obs.export` -- OpenMetrics-style text exposition of a
  time-series store (``metrics_export`` wire op, ``--metrics-port``),
* :mod:`repro.obs.health` -- health/readiness checks behind the
  ``health`` wire op and ``repro healthcheck``,
* :mod:`repro.obs.alerts` -- declarative threshold + SLO burn-rate
  rules evaluated over the time-series on every sampler tick,
* the daemon introspection surface (access log, ``metrics`` wire op,
  slow-query log) lives with the daemon in :mod:`repro.server.daemon`
  and is read by ``repro top``.

The ``STATS_*_KEYS`` constants are the documented ``stats()`` schema
contract: every connect target emits at least the common keys, and each
target family adds its own.  The golden-key test
(``tests/obs/test_stats_schema.py``) holds every target to this.
"""

from repro.obs.alerts import AlertEngine, AlertRule, load_rules
from repro.obs.export import OPENMETRICS_CONTENT_TYPE, openmetrics
from repro.obs.health import HealthCheck, evaluate
from repro.obs.metrics import Counter, Gauge, Histogram, HistogramState, MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.trace import Span, SpanContext, Tracer, chrome_trace, span

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "Gauge",
    "HealthCheck",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "OPENMETRICS_CONTENT_TYPE",
    "Span",
    "SpanContext",
    "TimeSeriesStore",
    "Tracer",
    "chrome_trace",
    "evaluate",
    "load_rules",
    "openmetrics",
    "span",
    "STATS_COMMON_KEYS",
    "STATS_LOCAL_KEYS",
    "STATS_MODEL_KEYS",
    "STATS_REMOTE_KEYS",
]

#: every connect() target's stats() carries at least these keys
STATS_COMMON_KEYS = frozenset({"target", "stream", "sim", "obs"})

#: local stores (memory:// and sqlite://) add the store-side blocks
STATS_LOCAL_KEYS = STATS_COMMON_KEYS | {
    "site",
    "records",
    "store",
    "backend",
    "planner",
    "closure",
    "storage",
}

#: architecture models add the model facts and the traffic snapshot
STATS_MODEL_KEYS = STATS_COMMON_KEYS | {
    "name",
    "supports_lineage",
    "requires_stable_hosts",
    "published",
    "queries_run",
    "notifications_sent",
    "notifications_suppressed",
    "sites",
    "traffic",
}

#: pass:// serves the tenant store's local schema plus remote identity
#: and the socket-side client block
STATS_REMOTE_KEYS = STATS_LOCAL_KEYS | {"tenant", "client"}
