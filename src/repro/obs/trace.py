"""Lightweight structured tracing for the full request path.

One *span* is a named, timed piece of work (``client.query``,
``query.execute``, ``storage.put_batch``, ``daemon.query``, ...) with a
``trace_id`` shared by everything one request caused, a ``span_id``, and
a ``parent_id`` linking it into the request's tree.  Context propagation
is implicit within a thread/task (a :mod:`contextvars` variable) and
explicit across boundaries: the wire protocol carries the active span's
context in the request envelope, so a daemon-side handler span stitches
onto the remote caller's tree (see :mod:`repro.server`).

Tracing is **off by default** and engineered so the disabled path is a
single attribute check -- instrumentation stays in place permanently on
hot paths (the planner, the executor, storage calls, stream dispatch)
without taxing untraced production runs.  Finished spans land in a
bounded ring buffer (oldest dropped first) and export as Chrome
trace-event JSON (``chrome://tracing`` / Perfetto load it directly) via
:func:`chrome_trace` or the ``repro trace`` CLI.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "current_context",
    "current_wire",
    "disable",
    "drain",
    "enable",
    "enabled",
    "ring_counters",
    "span",
    "spans",
]

import contextvars

#: the active open span in this thread/task (None = no open span); holds
#: the ``_OpenSpan`` itself, which duck-types SpanContext for children
_ACTIVE: contextvars.ContextVar[Optional[object]] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

#: one anchor for every span timestamp, so trees from different threads
#: (client caller, daemon loop) share a timeline in the exported trace
_EPOCH_NS = time.perf_counter_ns()


# Span ids must be unique across *processes* sharing a trace (client and
# daemon halves of one tree), but minting 64 random bits per span is
# measurable on hot paths.  A per-process random prefix + a cheap
# GIL-atomic counter gives the same collision safety at a fraction of
# the cost; trace ids (one per request, not per span) stay fully random.
_ID_PREFIX = f"{random.getrandbits(40):010x}"
_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"{random.getrandbits(64):016x}"


def _new_id() -> str:
    return _ID_PREFIX + "%06x" % next(_IDS)


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: enough to parent children on it."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        """The envelope form carried in ``pass://`` request frames."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload) -> Optional["SpanContext"]:
        """Parse an envelope context; malformed payloads mean "no parent"."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass(slots=True)
class Span:
    """One finished unit of traced work."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    #: offset from the tracer's epoch, so all threads share a timeline
    start_ns: int
    duration_ns: int
    thread: str
    attrs: Dict[str, object] = field(default_factory=dict)
    #: exception type name when the spanned work raised
    error: Optional[str] = None

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_chrome_event(self) -> dict:
        """One Chrome trace-event (``ph: "X"`` complete event, µs units)."""
        args: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        if self.error is not None:
            args["error"] = self.error
        args.update(self.attrs)
        return {
            "name": self.name,
            "cat": self.name.split(".", 1)[0],
            "ph": "X",
            "ts": self.start_ns / 1e3,
            "dur": self.duration_ns / 1e3,
            "pid": 1,
            "tid": self.thread,
            "args": args,
        }


class Tracer:
    """A bounded sink of finished spans; usually the module-level default.

    Thread-safe: spans finish on whatever thread ran the work (the
    caller's thread, the daemon's event-loop thread, a reader thread)
    and append under one lock.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self.dropped = 0
        #: exports (spans()/drain() calls) that were missing spans the
        #: ring had already evicted -- "the trace you read is incomplete"
        self.exports_truncated = 0
        self._dropped_at_export = 0

    def enable(self, capacity: Optional[int] = None) -> None:
        with self._lock:
            if capacity is not None and capacity != self.capacity:
                self.capacity = capacity
                self._spans = deque(self._spans, maxlen=capacity)
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, fields: tuple) -> None:
        # Lock-free: deque.append is thread-safe, and a bounded deque
        # drops from the head on its own.  The dropped counter is read
        # without synchronization, so under racing writers it is a close
        # under-estimate -- acceptable for a diagnostic.  The ring holds
        # raw field tuples; Span objects materialize on read -- exporting
        # pays the construction cost, not the traced hot path.
        spans = self._spans
        if len(spans) == spans.maxlen:
            self.dropped += 1
        spans.append(fields)

    def spans(self) -> List[Span]:
        """A copy of the buffered finished spans (oldest first)."""
        with self._lock:
            self._note_export()
            return [Span(*fields) for fields in self._spans]

    def drain(self) -> List[Span]:
        """Pop and return every buffered span."""
        with self._lock:
            self._note_export()
            taken = [Span(*fields) for fields in self._spans]
            self._spans.clear()
            return taken

    def _note_export(self) -> None:
        # Called under the lock by every export: if the ring evicted
        # spans since the last export, whatever the caller reads now is
        # missing work that really happened -- count that truncation.
        if self.dropped > self._dropped_at_export:
            self.exports_truncated += 1
            self._dropped_at_export = self.dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self.exports_truncated = 0
            self._dropped_at_export = 0


#: the process-wide tracer every instrumentation point records into
_TRACER = Tracer()


class _NullSpan:
    """The disabled/fast path: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, name: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: thread-name cache keyed by ident -- ``current_thread()`` per span is
#: measurable; names never change after a thread starts, and a recycled
#: ident from a dead thread would only mislabel a diagnostic field
_THREAD_NAMES: Dict[int, str] = {}


class _OpenSpan:
    """An in-flight span: context manager that records itself on exit.

    Duck-types :class:`SpanContext` (``trace_id``/``span_id``) so the
    context variable can hold the open span itself -- children read the
    two ids straight off it, and the hot path never allocates a context
    object (``current_context()`` materializes one only when asked,
    i.e. once per wire call, not once per span).
    """

    __slots__ = ("name", "attrs", "trace_id", "span_id", "_parent", "_token", "_start_ns")

    def __init__(self, name: str, attrs, parent) -> None:
        self.name = name
        # Takes ownership of the caller's dict (every call site builds a
        # fresh literal) -- copying it per span is measurable on hot paths.
        self.attrs = attrs if attrs is not None else {}
        self._parent = parent

    def __enter__(self) -> "_OpenSpan":
        parent = self._parent if self._parent is not None else _ACTIVE.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self._parent = parent.span_id
        else:
            self.trace_id = _new_trace_id()
            self._parent = None
        self.span_id = _new_id()
        self._token = _ACTIVE.set(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        _ACTIVE.reset(self._token)
        ident = threading.get_ident()
        thread = _THREAD_NAMES.get(ident)
        if thread is None:
            thread = _THREAD_NAMES[ident] = threading.current_thread().name
        _TRACER.record(
            (
                self.trace_id,
                self.span_id,
                self._parent,
                self.name,
                self._start_ns - _EPOCH_NS,
                end_ns - self._start_ns,
                thread,
                self.attrs,
                None if exc_type is None else exc_type.__name__,
            )
        )
        return False

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value


def noop_span() -> _NullSpan:
    """The shared no-op span: for call sites that conditionally skip
    instrumentation but still need a with-able object."""
    return _NULL_SPAN


def span(name: str, attrs: Optional[Dict[str, object]] = None, parent=None):
    """Open a span around a ``with`` block.

    ``parent`` overrides the implicit (context-local) parent: pass a
    :class:`SpanContext` -- e.g. one decoded from a request envelope --
    to stitch this span onto a remote caller's trace.  When tracing is
    disabled this returns a shared no-op context manager; the cost is
    one attribute check.
    """
    if not _TRACER.enabled:
        return _NULL_SPAN
    if parent is not None and not isinstance(parent, SpanContext):
        parent = SpanContext.from_wire(parent)
    return _OpenSpan(name, attrs, parent)


def enable(capacity: Optional[int] = None) -> None:
    """Turn tracing on process-wide (optionally resizing the span buffer)."""
    _TRACER.enable(capacity)


def disable() -> None:
    """Turn tracing off; buffered spans stay until drained/cleared."""
    _TRACER.disable()


def enabled() -> bool:
    return _TRACER.enabled


def spans() -> List[Span]:
    """A copy of the finished spans currently buffered."""
    return _TRACER.spans()


def drain() -> List[Span]:
    """Pop every buffered span (what exporters call)."""
    return _TRACER.drain()


def clear() -> None:
    _TRACER.clear()


def ring_counters() -> Dict[str, int]:
    """The ring's loss accounting as plain counters.

    ``trace.spans_dropped`` is spans evicted by the bounded ring before
    anyone exported them; ``trace.exports_truncated`` is exports
    (``spans()``/``drain()`` calls) that were missing such spans.  The
    metrics registry merges these into every ``stats()['obs']`` block so
    trace loss is visible without touching the tracer API.
    """
    return {
        "trace.spans_dropped": _TRACER.dropped,
        "trace.exports_truncated": _TRACER.exports_truncated,
    }


def current_context() -> Optional[SpanContext]:
    """The active span's context in this thread/task, if any."""
    active = _ACTIVE.get()
    if active is None:
        return None
    return SpanContext(trace_id=active.trace_id, span_id=active.span_id)


def current_wire() -> Optional[Dict[str, str]]:
    """The active span's context in envelope form (one dict, no
    intermediate :class:`SpanContext`) -- what the wire client embeds."""
    active = _ACTIVE.get()
    if active is None:
        return None
    return {"trace_id": active.trace_id, "span_id": active.span_id}


def chrome_trace(span_list: Optional[List[Span]] = None) -> dict:
    """Spans as a Chrome trace-event JSON document.

    The result loads directly in ``chrome://tracing`` / Perfetto; spans
    from different threads appear as separate tracks sharing one
    timeline.  With no argument, drains the process tracer.
    """
    if span_list is None:
        span_list = drain()
    return {
        "traceEvents": [item.to_chrome_event() for item in span_list],
        "displayTimeUnit": "ms",
    }
