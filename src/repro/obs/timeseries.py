"""A bounded in-process time-series store over the metrics registry.

One :class:`TimeSeriesStore` holds a fixed-interval ring per instrument:
time is bucketed into ``interval_s``-wide slots and each named series
keeps its last ``retention`` slots (oldest evicted first), so memory is
bounded by ``series x retention`` regardless of run length.  Three
series kinds mirror the registry's instruments:

* **gauge** -- the slot holds the last value observed in the interval,
* **counter** -- the slot holds the *cumulative* value at sample time;
  rates derive at read time (:meth:`TimeSeriesStore.rate`), robust to
  counter resets,
* **histogram** -- the slot holds the :class:`HistogramState` *delta*
  between consecutive cumulative scrapes; window percentiles merge the
  in-window deltas (:meth:`TimeSeriesStore.window_state`), so
  percentile-over-window answers are exact within the histogram's
  existing <= ~5% bucket error.

The store is deliberately **clock-agnostic**: every observation carries
its own timestamp ``t`` (seconds, any epoch).  The daemon's background
sampler feeds wall-clock time; the sim kernel feeds its virtual clock --
both produce the same :meth:`snapshot` schema, which is what lets one
alert rule set and one exposition format serve real and simulated
deployments alike.

Thread-safety: one lock around every mutation/read.  Samplers call at
human timescales (~1 Hz), so contention is negligible.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import HistogramState, MetricsRegistry

__all__ = ["TimeSeriesStore"]

KINDS = ("gauge", "counter", "histogram")


class _Series:
    """One named ring of ``[slot_index, value]`` points (oldest first)."""

    __slots__ = ("name", "kind", "points", "last_cumulative")

    def __init__(self, name: str, kind: str, retention: int) -> None:
        self.name = name
        self.kind = kind
        self.points: deque = deque(maxlen=retention)
        #: the previous cumulative HistogramState (histogram series only)
        self.last_cumulative: Optional[HistogramState] = None

    def observe(self, slot: int, value) -> None:
        if self.points and self.points[-1][0] == slot:
            last = self.points[-1]
            if self.kind == "histogram":
                last[1] = last[1].merge(value)
            else:
                last[1] = value
        else:
            self.points.append([slot, value])


class TimeSeriesStore:
    def __init__(self, interval_s: float = 1.0, retention: int = 600) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if retention < 2:
            raise ValueError("retention must be at least 2 slots")
        self.interval_s = float(interval_s)
        self.retention = int(retention)
        self._lock = threading.Lock()
        self._series: Dict[str, _Series] = {}

    # -- writing ---------------------------------------------------------
    def _slot(self, t: float) -> int:
        return int(t // self.interval_s)

    def _get(self, name: str, kind: str) -> _Series:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series(name, kind, self.retention)
        elif series.kind != kind:
            raise ValueError(
                f"series {name!r} is a {series.kind}, observed as {kind}"
            )
        return series

    def observe_gauge(self, name: str, t: float, value: float) -> None:
        with self._lock:
            self._get(name, "gauge").observe(self._slot(t), float(value))

    def observe_counter(self, name: str, t: float, cumulative: float) -> None:
        """Record a counter's *cumulative* value at time ``t``."""
        with self._lock:
            self._get(name, "counter").observe(self._slot(t), float(cumulative))

    def observe_histogram(self, name: str, t: float, state: HistogramState) -> None:
        """Record a histogram's *cumulative* state at time ``t``.

        The stored point is the delta against the previous scrape, i.e.
        only the observations that landed during this interval.
        """
        with self._lock:
            series = self._get(name, "histogram")
            earlier = series.last_cumulative
            delta = state if earlier is None else state.delta(earlier)
            series.last_cumulative = state
            series.observe(self._slot(t), delta)

    def sample_registry(self, registry: MetricsRegistry, t: float, prefix: str = "") -> None:
        """Scrape every instrument in ``registry`` into series at ``t``.

        Counters and histograms record cumulatively (the store derives
        rates/deltas); gauges record their current read when numeric.
        """
        counters, gauges, histograms = registry.instruments()
        for name, counter in counters.items():
            self.observe_counter(prefix + name, t, counter.value)
        for name, gauge in gauges.items():
            value = gauge.read()
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.observe_gauge(prefix + name, t, value)
        for name, histogram in histograms.items():
            self.observe_histogram(prefix + name, t, histogram.state())

    # -- reading ---------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def kind(self, name: str) -> Optional[str]:
        with self._lock:
            series = self._series.get(name)
            return series.kind if series else None

    def points(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[float, object]]:
        """``(t, value)`` points for ``name`` with ``start <= t <= end``.

        ``t`` is the slot's start time; histogram values are
        :class:`HistogramState` interval deltas.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            out = []
            for slot, value in series.points:
                t = slot * self.interval_s
                if start is not None and t < start:
                    continue
                if end is not None and t > end:
                    continue
                out.append((t, value))
            return out

    def latest(self, name: str) -> Optional[Tuple[float, object]]:
        with self._lock:
            series = self._series.get(name)
            if series is None or not series.points:
                return None
            slot, value = series.points[-1]
            return (slot * self.interval_s, value)

    def _window(self, name: str, window_s: Optional[float], now: Optional[float]):
        series = self._series.get(name)
        if series is None or not series.points:
            return None, []
        if now is None:
            now = series.points[-1][0] * self.interval_s
        if window_s is None:
            return series, list(series.points)
        first = self._slot(now - window_s)
        return series, [p for p in series.points if p[0] >= first]

    def rate(
        self,
        name: str,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """A counter's per-second rate over the window (default: all
        retained points).  Sums positive increments between consecutive
        samples, so a counter reset costs one interval, not a negative
        spike.  None with fewer than two in-window points.
        """
        with self._lock:
            series, points = self._window(name, window_s, now)
            if series is None or series.kind != "counter" or len(points) < 2:
                return None
            increase = 0.0
            for (_, before), (_, after) in zip(points, points[1:]):
                if after > before:
                    increase += after - before
            span_s = (points[-1][0] - points[0][0]) * self.interval_s
            if span_s <= 0:
                return None
            return increase / span_s

    def window_state(
        self,
        name: str,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[HistogramState]:
        """The merged :class:`HistogramState` of every in-window interval
        delta -- the distribution of exactly the window's observations."""
        with self._lock:
            series, points = self._window(name, window_s, now)
            if series is None or series.kind != "histogram" or not points:
                return None
            merged = HistogramState()
            for _, state in points:
                merged = merged.merge(state)
            return merged

    def quantile(
        self,
        name: str,
        q: float,
        window_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """A histogram series' ``q``-quantile over the window."""
        state = self.window_state(name, window_s, now)
        return state.quantile(q) if state is not None and not state.empty else None

    def snapshot(self, names: Optional[List[str]] = None) -> dict:
        """The whole store as one JSON-safe document.

        Stable schema (shared verbatim by real daemons and sim runs)::

            {"interval_s": float, "retention": int,
             "series": {name: {"kind": gauge|counter|histogram,
                               "points": [[t, value-or-summary], ...]}}}

        Histogram points carry the interval delta's ``summary()`` dict.
        """
        with self._lock:
            wanted = self._series if names is None else {
                n: s for n, s in self._series.items() if n in set(names)
            }
            series_out = {}
            for name in sorted(wanted):
                series = wanted[name]
                points = []
                for slot, value in series.points:
                    t = slot * self.interval_s
                    if series.kind == "histogram":
                        points.append([t, value.summary()])
                    else:
                        points.append([t, value])
                series_out[name] = {"kind": series.kind, "points": points}
        return {
            "interval_s": self.interval_s,
            "retention": self.retention,
            "series": series_out,
        }
