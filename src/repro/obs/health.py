"""Health and readiness checks for clients, daemons, and the CLI.

A :class:`HealthCheck` is a named probe returning ``(ok, detail)``;
:func:`evaluate` runs a list of them into one stable report::

    {"status": "ok" | "degraded" | "failing",
     "checks": {name: {"ok": bool, "critical": bool, "detail": str}}}

A failing *critical* check makes the whole report ``failing`` (the
``--metrics-port`` ``/health`` endpoint answers 503, ``repro
healthcheck`` exits non-zero); a failing non-critical check only
degrades it.  A probe that raises counts as failing -- a health check
must never take the process down with it.

The builders below cover the standard worries of a provenance site:

* :func:`storage_check` -- the store's backend is open, readable, and
  (for file-backed SQLite) its database file is writable,
* :func:`closure_check` -- the lineage closure index is fresh (bounded
  dirty-edge backlog),
* :func:`subscription_check` -- no standing-query delivery queue is
  near capacity or silently dropping events,
* :func:`trace_ring_check` -- the span ring is not currently evicting
  spans faster than anyone exports them.

Checks are stateful where a *rate* matters (trace drops): build them
once and re-evaluate, as clients and the daemon do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple

from repro.obs import trace

__all__ = [
    "HealthCheck",
    "closure_check",
    "evaluate",
    "storage_check",
    "subscription_check",
    "trace_ring_check",
]


@dataclass(frozen=True)
class HealthCheck:
    """One named probe; ``critical`` failures fail the whole report."""

    name: str
    probe: Callable[[], Tuple[bool, str]]
    critical: bool = True


def evaluate(checks: Iterable[HealthCheck]) -> dict:
    """Run every check into the stable health-report shape."""
    results = {}
    status = "ok"
    for check in checks:
        try:
            ok, detail = check.probe()
        except Exception as exc:  # a probe must never propagate
            ok, detail = False, f"probe raised {type(exc).__name__}: {exc}"
        results[check.name] = {"ok": ok, "critical": check.critical, "detail": detail}
        if not ok:
            if check.critical:
                status = "failing"
            elif status == "ok":
                status = "degraded"
    return {"status": status, "checks": results}


def storage_check(store, name: str = "storage") -> HealthCheck:
    """The store's backend answers reads and its file (if any) is writable."""

    def probe() -> Tuple[bool, str]:
        backend = store.backend
        if getattr(backend, "_closed", False):
            return False, "backend connection is closed"
        records = len(store)
        path = getattr(backend, "_path", None)
        if path and path != ":memory:" and os.path.exists(path):
            if not os.access(path, os.W_OK):
                return False, f"database file {path} is not writable"
            return True, f"{records} record(s); {path} writable"
        return True, f"{records} record(s); in-memory backend"

    return HealthCheck(name=name, probe=probe)


def closure_check(store, max_dirty_edges: int = 10_000, name: str = "closure") -> HealthCheck:
    """The lineage closure index has a bounded dirty-edge backlog."""

    def probe() -> Tuple[bool, str]:
        stats = store.closure.index_stats()
        dirty = int(stats.get("dirty_edges", 0) or 0)
        strategy = stats.get("strategy", "?")
        if dirty > max_dirty_edges:
            return False, f"{strategy}: {dirty} dirty edge(s) (limit {max_dirty_edges})"
        return True, f"{strategy}: {dirty} dirty edge(s)"

    return HealthCheck(name=name, probe=probe)


def subscription_check(
    subscriptions_fn: Callable[[], Iterable],
    depth_ratio: float = 0.9,
    name: str = "subscriptions",
) -> HealthCheck:
    """No delivery queue near capacity; drops reported as degradation.

    Non-critical: a saturated subscriber degrades delivery guarantees
    but does not make the site unable to serve.
    """

    def probe() -> Tuple[bool, str]:
        total = 0
        saturated: List[str] = []
        dropped = 0
        for subscription in subscriptions_fn():
            total += 1
            dropped += subscription.dropped
            queue = getattr(subscription, "queue", None)
            if queue is not None and queue.maxsize:
                if len(queue) >= depth_ratio * queue.maxsize:
                    saturated.append(subscription.id)
        if saturated:
            return False, f"{len(saturated)}/{total} queue(s) >= {depth_ratio:.0%} full"
        if dropped:
            return False, f"{dropped} event(s) dropped across {total} subscription(s)"
        return True, f"{total} subscription(s), no drops, queues healthy"

    return HealthCheck(name=name, probe=probe, critical=False)


def trace_ring_check(name: str = "trace-ring") -> HealthCheck:
    """The span ring is not dropping *new* spans since the last probe.

    Stateful by design: a burst of drops in the past should not mark a
    recovered process unhealthy forever, so each probe baselines against
    the previous one.  Non-critical -- losing trace detail degrades
    observability, not service.
    """
    last = {"dropped": trace.ring_counters()["trace.spans_dropped"]}

    def probe() -> Tuple[bool, str]:
        counters = trace.ring_counters()
        dropped = counters["trace.spans_dropped"]
        fresh = dropped - last["dropped"]
        last["dropped"] = dropped
        if fresh > 0:
            return False, f"{fresh} span(s) dropped since last probe ({dropped} total)"
        return True, f"no new drops ({dropped} total)"

    return HealthCheck(name=name, probe=probe, critical=False)
