"""Declarative alert rules evaluated over the time-series store.

Rules load from JSON (a checked-in file, ``repro serve --alert-rules``)
and come in two kinds:

**threshold** -- compare one statistic of one series against a bound::

    {"name": "query-p99-high", "kind": "threshold",
     "series": "daemon.default.query.ms", "stat": "p99",
     "op": ">", "value": 250.0, "window_s": 60, "for_s": 10}

``stat`` is ``latest`` (gauge/counter sample), ``rate`` (counter,
per-second over the window), or ``p50``/``p95``/``p99``/``mean``/
``count`` (histogram, merged over the window).

**burn_rate** -- classic SLO burn: how many times faster than budget is
the error ratio burning::

    {"name": "publish-slo-burn", "kind": "burn_rate",
     "errors": "daemon.default.publish.errors",
     "total": "daemon.default.publish.calls",
     "objective": 0.999, "threshold": 10.0, "window_s": 300}

With objective 99.9% the error budget is 0.1%; an error ratio of 1%
burns at 10x and trips a threshold of 10.

The :class:`AlertEngine` runs a tiny state machine per rule --
``ok -> pending -> firing -> ok`` (``pending`` holds until the
condition has been continuously true for ``for_s``) -- on every sampler
tick, against wall time in a daemon and against the virtual clock in a
sim run: the same rule file evaluates against both, because both emit
the same series schema.  Transitions log on ``repro.obs.alerts`` and
accumulate in a bounded ring served by ``client.alerts()`` /
``repro alerts``.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.obs.timeseries import TimeSeriesStore

__all__ = ["AlertEngine", "AlertRule", "load_rules"]

logger = logging.getLogger("repro.obs.alerts")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_HISTOGRAM_STATS = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclass(frozen=True)
class AlertRule:
    """One validated rule; built via :func:`load_rules` or directly."""

    name: str
    kind: str  # "threshold" | "burn_rate"
    window_s: float = 60.0
    for_s: float = 0.0
    # threshold fields
    series: Optional[str] = None
    stat: str = "latest"
    op: str = ">"
    value: float = 0.0
    # burn-rate fields
    errors: Optional[str] = None
    total: Optional[str] = None
    objective: float = 0.999
    threshold: float = 1.0

    def describe(self) -> dict:
        if self.kind == "threshold":
            condition = f"{self.stat}({self.series}) {self.op} {self.value}"
        else:
            condition = (
                f"burn({self.errors}/{self.total}, slo={self.objective})"
                f" > {self.threshold}"
            )
        return {
            "name": self.name,
            "kind": self.kind,
            "condition": condition,
            "window_s": self.window_s,
            "for_s": self.for_s,
        }


def _build_rule(raw) -> AlertRule:
    if isinstance(raw, AlertRule):
        return raw
    if not isinstance(raw, dict):
        raise ConfigurationError(f"alert rule must be an object, got {type(raw).__name__}")
    name = raw.get("name")
    kind = raw.get("kind")
    if not name or not isinstance(name, str):
        raise ConfigurationError("alert rule needs a string 'name'")
    if kind not in ("threshold", "burn_rate"):
        raise ConfigurationError(f"alert rule {name!r}: unknown kind {kind!r}")
    window_s = float(raw.get("window_s", 60.0))
    for_s = float(raw.get("for_s", 0.0))
    if window_s <= 0:
        raise ConfigurationError(f"alert rule {name!r}: window_s must be positive")
    if kind == "threshold":
        series = raw.get("series")
        if not series or not isinstance(series, str):
            raise ConfigurationError(f"alert rule {name!r}: threshold needs 'series'")
        stat = raw.get("stat", "latest")
        if stat not in ("latest", "rate", "mean", "count", *_HISTOGRAM_STATS):
            raise ConfigurationError(f"alert rule {name!r}: unknown stat {stat!r}")
        op = raw.get("op", ">")
        if op not in _OPS:
            raise ConfigurationError(f"alert rule {name!r}: unknown op {op!r}")
        return AlertRule(
            name=name, kind=kind, window_s=window_s, for_s=for_s,
            series=series, stat=stat, op=op, value=float(raw.get("value", 0.0)),
        )
    errors = raw.get("errors")
    total = raw.get("total")
    if not errors or not total:
        raise ConfigurationError(f"alert rule {name!r}: burn_rate needs 'errors' and 'total'")
    objective = float(raw.get("objective", 0.999))
    if not 0.0 < objective < 1.0:
        raise ConfigurationError(f"alert rule {name!r}: objective must be in (0, 1)")
    return AlertRule(
        name=name, kind=kind, window_s=window_s, for_s=for_s,
        errors=str(errors), total=str(total),
        objective=objective, threshold=float(raw.get("threshold", 1.0)),
    )


def load_rules(source: Union[str, Sequence[dict]]) -> List[AlertRule]:
    """Rules from a JSON file path or an already-parsed list of dicts."""
    if isinstance(source, str):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                parsed = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read alert rules {source!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"alert rules {source!r} are not valid JSON: {exc}") from exc
    else:
        parsed = source
    if isinstance(parsed, dict):
        parsed = parsed.get("rules", [])
    else:
        parsed = list(parsed)
    if not isinstance(parsed, list):
        raise ConfigurationError("alert rules must be a JSON list (or {'rules': [...]})")
    rules = [_build_rule(raw) for raw in parsed]
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ConfigurationError("alert rule names must be unique")
    return rules


@dataclass
class _RuleState:
    status: str = "ok"  # ok | pending | firing
    since: Optional[float] = None  # when the condition first held
    changed_at: Optional[float] = None
    last_value: Optional[float] = None


class AlertEngine:
    """Evaluates rules against one store on every tick it is handed.

    Clock-agnostic like the store: :meth:`evaluate` takes ``now`` in the
    same timebase the series were written with.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Sequence[AlertRule],
        transition_capacity: int = 256,
    ) -> None:
        self.store = store
        self.rules = list(rules)
        self._states: Dict[str, _RuleState] = {r.name: _RuleState() for r in self.rules}
        self.transitions: deque = deque(maxlen=transition_capacity)

    # -- evaluation ------------------------------------------------------
    def _measure(self, rule: AlertRule, now: float) -> Optional[float]:
        if rule.kind == "burn_rate":
            error_rate = self.store.rate(rule.errors, window_s=rule.window_s, now=now)
            total_rate = self.store.rate(rule.total, window_s=rule.window_s, now=now)
            if error_rate is None or not total_rate:
                return None
            error_ratio = min(1.0, error_rate / total_rate)
            budget = 1.0 - rule.objective
            return error_ratio / budget
        if rule.stat == "latest":
            latest = self.store.latest(rule.series)
            if latest is None or not isinstance(latest[1], (int, float)):
                return None
            return float(latest[1])
        if rule.stat == "rate":
            return self.store.rate(rule.series, window_s=rule.window_s, now=now)
        state = self.store.window_state(rule.series, window_s=rule.window_s, now=now)
        if state is None or state.empty:
            return None
        if rule.stat == "mean":
            return state.total / state.count
        if rule.stat == "count":
            return float(state.count)
        return state.quantile(_HISTOGRAM_STATS[rule.stat])

    def _condition(self, rule: AlertRule, value: Optional[float]) -> bool:
        if value is None:
            return False
        if rule.kind == "burn_rate":
            return value > rule.threshold
        return _OPS[rule.op](value, rule.value)

    def _transition(self, rule: AlertRule, state: _RuleState, to: str, now: float) -> None:
        event = {
            "t": now,
            "rule": rule.name,
            "from": state.status,
            "to": to,
            "value": state.last_value,
        }
        self.transitions.append(event)
        level = logging.WARNING if to == "firing" else logging.INFO
        logger.log(
            level,
            "alert %s: %s -> %s (value=%s)",
            rule.name, state.status, to, state.last_value,
        )
        state.status = to
        state.changed_at = now

    def evaluate(self, now: float) -> None:
        """One tick: measure every rule, advance its state machine."""
        for rule in self.rules:
            state = self._states[rule.name]
            value = self._measure(rule, now)
            state.last_value = value
            if self._condition(rule, value):
                if state.since is None:
                    state.since = now
                if state.status != "firing":
                    held = now - state.since
                    if held >= rule.for_s:
                        self._transition(rule, state, "firing", now)
                    elif state.status == "ok":
                        self._transition(rule, state, "pending", now)
            else:
                state.since = None
                if state.status == "firing":
                    self._transition(rule, state, "resolved", now)
                    state.status = "ok"
                elif state.status == "pending":
                    self._transition(rule, state, "ok", now)

    # -- reading ---------------------------------------------------------
    def firing(self) -> List[str]:
        return sorted(
            name for name, state in self._states.items() if state.status == "firing"
        )

    def snapshot(self) -> dict:
        """The stable alerts shape served over the wire and by the CLI."""
        rules = []
        for rule in self.rules:
            state = self._states[rule.name]
            entry = rule.describe()
            entry.update(
                {
                    "status": state.status,
                    "since": state.since,
                    "changed_at": state.changed_at,
                    "value": state.last_value,
                }
            )
            rules.append(entry)
        return {
            "rules": rules,
            "firing": self.firing(),
            "transitions": list(self.transitions),
        }
