"""OpenMetrics-style text exposition for the time-series store.

External scrapers (Prometheus, curl, a CI assertion) need no client
library: the daemon serves this text both over the wire
(``metrics_export`` op) and on a plain ``--metrics-port`` HTTP endpoint.
The grammar is the OpenMetrics subset that matters:

* ``# TYPE <name> <kind>`` / ``# HELP`` metadata lines,
* counters exposed as ``<name>_total`` samples,
* gauges as bare samples,
* histograms as summaries -- ``{quantile="0.5|0.95|0.99"}`` samples
  plus ``_count`` and ``_sum``, computed over the exporter's window,
* a trailing ``# EOF`` marker.

Series names are sanitized to the metric-name charset
(``[a-zA-Z_][a-zA-Z0-9_]*``); the original dotted series name rides in
the HELP line so nothing is lost.  Because the exposition is rendered
from a :class:`TimeSeriesStore` snapshot, a live daemon and a finished
sim run produce *grammatically identical* output -- one scrape pipeline
monitors both.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.timeseries import TimeSeriesStore

__all__ = ["OPENMETRICS_CONTENT_TYPE", "metric_name", "openmetrics"]

OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_QUANTILES = (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99))


def metric_name(name: str) -> str:
    """A dotted series name as a legal OpenMetrics metric name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or not (safe[0].isalpha() or safe[0] == "_"):
        safe = "_" + safe
    return safe


def _format(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def openmetrics(
    store: TimeSeriesStore,
    window_s: Optional[float] = None,
    extra_gauges: Optional[dict] = None,
    names: Optional[list] = None,
) -> str:
    """Render ``store`` as an OpenMetrics text document.

    Counters and gauges expose their latest sample; histogram summaries
    are computed over ``window_s`` (default: every retained interval).
    ``extra_gauges`` appends process facts (uptime, connection counts)
    that live outside the store; ``names`` restricts the exposition to
    those series (tenant scoping on token-authed daemons).
    """
    lines = []
    seen = set()
    wanted = store.names() if names is None else [n for n in store.names() if n in set(names)]
    for name in wanted:
        metric = metric_name(name)
        if metric in seen:
            continue
        seen.add(metric)
        kind = store.kind(name)
        latest = store.latest(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"# HELP {metric} series {name}")
            value = latest[1] if latest else 0
            lines.append(f"{metric}_total {_format(value)}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"# HELP {metric} series {name}")
            value = latest[1] if latest else 0
            lines.append(f"{metric} {_format(value)}")
        else:
            state = store.window_state(name, window_s=window_s)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"# HELP {metric} series {name}")
            count = state.count if state is not None else 0
            total = state.total if state is not None else 0.0
            for label, q in _QUANTILES:
                quantile = state.quantile(q) if state is not None else None
                lines.append(f'{metric}{{quantile="{label}"}} {_format(quantile)}')
            lines.append(f"{metric}_count {_format(count)}")
            lines.append(f"{metric}_sum {_format(total)}")
    for name in sorted(extra_gauges or {}):
        metric = metric_name(name)
        if metric in seen:
            continue
        seen.add(metric)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"# HELP {metric} series {name}")
        lines.append(f"{metric} {_format(extra_gauges[name])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
