"""Message-level network facade: traffic accounting + operation capture.

The Section IV criteria the architecture comparison must score --
*speed* and *resource consumption* -- are functions of the messages an
architecture sends: how many, how large, and over what distances.  Every
time an architecture model sends a logical message,
:meth:`NetworkSimulator.send` charges its latency (from the
:class:`~repro.net.topology.Topology`) and records its size, kind and
endpoints.

Since the discrete-event kernel (:mod:`repro.sim`) landed, the simulator
is also the *event-emitting facade* of each operation: while a model
operation runs, every ``send`` appends a hop to the operation's
:class:`~repro.sim.trace.OpTrace`, :meth:`broadcast` and
:meth:`parallel` mark fan-out groups, and :meth:`local_compute` marks
processing delays.  The captured trace replays through the kernel so
concurrent clients genuinely queue at shared sites.  Without a kernel,
behaviour is the degenerate mode: per-message latencies are returned
immediately and models compose them arithmetically (sequential hops add,
parallel fan-out takes the maximum) -- exactly the pre-kernel numbers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.topology import Topology
from repro.sim.trace import Compute, Hop, OpTrace, Parallel

__all__ = ["Message", "TrafficStats", "NetworkSimulator"]

#: Most link pairs a TrafficStats tracks individually; beyond this the
#: per-link map stops growing and further *new* links fold into an
#: overflow counter (aggregate message/byte counters are never lossy).
BY_LINK_CAP = 4096

#: Messages the simulator remembers individually before the log is
#: dropped wholesale (aggregate counters keep counting; ``snapshot()``
#: reports the truncation).
LOG_CAP = 100_000


@dataclass(frozen=True)
class Message:
    """One logical message between sites."""

    source: str
    destination: str
    size_bytes: int
    kind: str
    latency_ms: float


@dataclass
class TrafficStats:
    """Aggregated traffic counters, overall and per message kind."""

    messages: int = 0
    bytes: int = 0
    latency_ms_total: float = 0.0
    by_kind: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: messages recorded on links beyond the BY_LINK_CAP tracking horizon
    link_overflow_messages: int = 0

    def record(self, message: Message) -> None:
        """Fold one message into the counters."""
        self.messages += 1
        self.bytes += message.size_bytes
        self.latency_ms_total += message.latency_ms
        kind = self.by_kind.setdefault(
            message.kind, {"messages": 0, "bytes": 0, "latency_ms": 0.0}
        )
        kind["messages"] += 1
        kind["bytes"] += message.size_bytes
        kind["latency_ms"] += message.latency_ms
        link = (message.source, message.destination)
        if link in self.by_link:
            self.by_link[link] += 1
        elif len(self.by_link) < BY_LINK_CAP:
            self.by_link[link] = 1
        else:
            self.link_overflow_messages += 1

    def top_links(self, k: int = 10) -> List[Dict[str, object]]:
        """The ``k`` busiest links, most messages first (ties by name)."""
        ranked = sorted(self.by_link.items(), key=lambda item: (-item[1], item[0]))
        return [
            {"source": source, "destination": destination, "messages": count}
            for (source, destination), count in ranked[:k]
        ]

    def snapshot(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "latency_ms_total": round(self.latency_ms_total, 3),
            "by_kind": {name: dict(values) for name, values in self.by_kind.items()},
            "links": {
                "tracked": len(self.by_link),
                "top": self.top_links(),
                "overflow_messages": self.link_overflow_messages,
            },
        }


class _ParallelHandle:
    """What ``with network.parallel() as par:`` yields.

    Bare sends inside the group each become their own single-hop branch
    (broadcast fan-out); ``with par.branch():`` groups a multi-hop chain
    (request *then* response, per site) into one branch.
    """

    def __init__(self, simulator: "NetworkSimulator", group: Optional[Parallel]) -> None:
        self._simulator = simulator
        self._group = group

    @contextmanager
    def branch(self):
        if self._group is None:  # capture inactive
            yield
            return
        steps: List = []
        self._group.branches.append(steps)
        self._simulator._stack.append(steps)
        try:
            yield
        finally:
            self._simulator._stack.pop()


class NetworkSimulator:
    """Charges latency and bandwidth for logical messages between sites.

    Parameters
    ----------
    topology:
        Supplies per-link latency.

    Partitioned sites are unreachable: sending to or from one raises
    :class:`~repro.errors.NetworkError` (used by the reliability tests
    and by timed :class:`~repro.sim.schedule.Schedule` events).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.stats = TrafficStats()
        self._log: List[Message] = []
        self._log_dropped = 0
        self._partitioned: set = set()
        self._keep_log = True
        # Operation capture (repro.sim): the trace being built, a depth
        # counter for nested operations, and the append-target stack.
        self._trace: Optional[OpTrace] = None
        self._op_depth = 0
        self._stack: List[object] = []
        #: the most recent :class:`~repro.sim.workload.SimReport` run over
        #: this network (set by the workload runner; read by stats()).
        self.last_sim_report = None

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def partition(self, site: str) -> None:
        """Cut a site off from the network."""
        self._partitioned.add(site)

    def heal(self, site: str) -> None:
        """Reconnect a partitioned site."""
        self._partitioned.discard(site)

    def is_partitioned(self, site: str) -> bool:
        """True when the site is currently cut off."""
        return site in self._partitioned

    # ------------------------------------------------------------------
    # Operation capture
    # ------------------------------------------------------------------
    def begin_operation(self, kind: str, origin: str) -> Optional[OpTrace]:
        """Start capturing one operation's message structure.

        Re-entrant: a nested begin (a model operation invoking another)
        keeps appending to the outer trace and returns ``None``.
        """
        self._op_depth += 1
        if self._op_depth > 1:
            return None
        self._trace = OpTrace(kind=kind, origin=origin)
        self._stack = [self._trace.steps]
        return self._trace

    def end_operation(self) -> Optional[OpTrace]:
        """Finish the current capture; returns the trace at the outermost exit."""
        self._op_depth -= 1
        if self._op_depth > 0:
            return None
        self._op_depth = max(0, self._op_depth)
        trace, self._trace = self._trace, None
        self._stack = []
        return trace

    def _record_step(self, step) -> None:
        if self._trace is None:
            return
        top = self._stack[-1]
        if isinstance(top, Parallel):
            # A bare send inside parallel(): its own single-hop branch.
            top.branches.append([step])
        else:
            top.append(step)

    @contextmanager
    def parallel(self):
        """Mark a fan-out: everything sent inside starts together.

        The operation's clock advances to the *slowest* branch, which is
        the composition every scatter/gather and fan-in loop in the
        architecture models already uses arithmetically.
        """
        if self._trace is None:
            yield _ParallelHandle(self, None)
            return
        group = Parallel()
        self._record_step(group)
        self._stack.append(group)
        try:
            yield _ParallelHandle(self, group)
        finally:
            self._stack.pop()

    def local_compute(self, ms: float, site: str = "") -> float:
        """Record a processing delay on the operation's critical path.

        Returns ``ms`` so models can keep charging it arithmetically;
        during kernel replay a ``site``-bound compute also occupies that
        site's server (concurrent operations queue behind it).
        """
        if ms > 0:
            self._record_step(Compute(ms, site))
        return ms

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        destination: str,
        size_bytes: int,
        kind: str,
        background: bool = False,
    ) -> Message:
        """Send one logical message and return it (with its charged latency).

        ``background=True`` marks asynchronous hops (subscription
        notifications): they are captured and replayed -- and do load
        the destination's server -- but the operation does not wait for
        them, matching the models' "latency not on the critical path"
        accounting.
        """
        if size_bytes < 0:
            raise NetworkError("message size must be non-negative")
        if source in self._partitioned or destination in self._partitioned:
            raise NetworkError(
                f"cannot deliver {kind!r} message: "
                f"{source!r} or {destination!r} is partitioned"
            )
        latency = self.topology.latency_ms(source, destination)
        message = Message(source, destination, size_bytes, kind, latency)
        self.stats.record(message)
        self._record_step(
            Hop(source, destination, size_bytes, kind, latency, critical=not background)
        )
        if self._keep_log:
            self._log.append(message)
            if len(self._log) > LOG_CAP:
                # Benchmarks can generate millions of messages; keep the
                # aggregate counters but stop remembering individual
                # ones -- visibly: snapshot() reports the truncation.
                self._keep_log = False
                self._log_dropped += len(self._log)
                self._log.clear()
        else:
            self._log_dropped += 1
        return message

    def broadcast(self, source: str, destinations: List[str], size_bytes: int, kind: str) -> float:
        """Send the same message to several sites; return the slowest latency.

        The architectures use this for fan-out steps (ask every site,
        wait for all answers): the operation's latency is the maximum of
        the individual latencies, while bandwidth is charged per copy.
        """
        slowest = 0.0
        with self.parallel():
            for destination in destinations:
                message = self.send(source, destination, size_bytes, kind)
                slowest = max(slowest, message.latency_ms)
        return slowest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def log(self) -> List[Message]:
        """Individual messages recorded so far (may be truncated for huge runs)."""
        return list(self._log)

    def log_truncated(self) -> bool:
        """True once the per-message log overflowed and was dropped."""
        return not self._keep_log

    def log_dropped(self) -> int:
        """Messages not retained in the log (0 until truncation)."""
        return self._log_dropped

    def snapshot(self) -> dict:
        """Traffic counters plus log-retention facts (one-stop report dict)."""
        facts = self.stats.snapshot()
        facts["log"] = {
            "kept": len(self._log),
            "truncated": self.log_truncated(),
            "dropped": self._log_dropped,
        }
        return facts

    def reset(self) -> None:
        """Clear counters and the message log (benchmarks call this between phases)."""
        self.stats = TrafficStats()
        self._log.clear()
        self._log_dropped = 0
        self._keep_log = True

    def messages_between(self, source: str, destination: str) -> int:
        """How many messages went from ``source`` to ``destination``.

        Only the ``BY_LINK_CAP`` first-seen links are tracked
        individually; an untracked link reports 0 even though its
        messages are in the aggregate counters.
        """
        return self.stats.by_link.get((source, destination), 0)
