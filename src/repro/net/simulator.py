"""Message-level network simulator with traffic accounting.

The Section IV criteria the architecture comparison must score --
*speed* and *resource consumption* -- are functions of the messages an
architecture sends: how many, how large, and over what distances.  The
simulator therefore does exactly one job: every time an architecture
model sends a logical message, :meth:`NetworkSimulator.send` charges its
latency (from the :class:`~repro.net.topology.Topology`) and records its
size, kind and endpoints.  There is no concurrency model; architectures
compose per-message latencies into per-operation latencies themselves
(sequential hops add, parallel fan-out takes the maximum).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.topology import Topology

__all__ = ["Message", "TrafficStats", "NetworkSimulator"]


@dataclass(frozen=True)
class Message:
    """One logical message between sites."""

    source: str
    destination: str
    size_bytes: int
    kind: str
    latency_ms: float


@dataclass
class TrafficStats:
    """Aggregated traffic counters, overall and per message kind."""

    messages: int = 0
    bytes: int = 0
    latency_ms_total: float = 0.0
    by_kind: Dict[str, Dict[str, float]] = field(default_factory=dict)
    by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        """Fold one message into the counters."""
        self.messages += 1
        self.bytes += message.size_bytes
        self.latency_ms_total += message.latency_ms
        kind = self.by_kind.setdefault(
            message.kind, {"messages": 0, "bytes": 0, "latency_ms": 0.0}
        )
        kind["messages"] += 1
        kind["bytes"] += message.size_bytes
        kind["latency_ms"] += message.latency_ms
        link = (message.source, message.destination)
        self.by_link[link] = self.by_link.get(link, 0) + 1

    def snapshot(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "latency_ms_total": round(self.latency_ms_total, 3),
            "by_kind": {name: dict(values) for name, values in self.by_kind.items()},
        }


class NetworkSimulator:
    """Charges latency and bandwidth for logical messages between sites.

    Parameters
    ----------
    topology:
        Supplies per-link latency.
    partitioned_sites:
        Sites currently unreachable; sending to or from one raises
        :class:`~repro.errors.NetworkError` (used by reliability tests).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.stats = TrafficStats()
        self._log: List[Message] = []
        self._partitioned: set = set()
        self._keep_log = True

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def partition(self, site: str) -> None:
        """Cut a site off from the network."""
        self._partitioned.add(site)

    def heal(self, site: str) -> None:
        """Reconnect a partitioned site."""
        self._partitioned.discard(site)

    def is_partitioned(self, site: str) -> bool:
        """True when the site is currently cut off."""
        return site in self._partitioned

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, size_bytes: int, kind: str) -> Message:
        """Send one logical message and return it (with its charged latency)."""
        if size_bytes < 0:
            raise NetworkError("message size must be non-negative")
        if source in self._partitioned or destination in self._partitioned:
            raise NetworkError(
                f"cannot deliver {kind!r} message: "
                f"{source!r} or {destination!r} is partitioned"
            )
        latency = self.topology.latency_ms(source, destination)
        message = Message(source, destination, size_bytes, kind, latency)
        self.stats.record(message)
        if self._keep_log:
            self._log.append(message)
            if len(self._log) > 100_000:
                # Benchmarks can generate millions of messages; keep the
                # aggregate counters but stop remembering individual ones.
                self._keep_log = False
                self._log.clear()
        return message

    def broadcast(self, source: str, destinations: List[str], size_bytes: int, kind: str) -> float:
        """Send the same message to several sites; return the slowest latency.

        The architectures use this for fan-out steps (ask every site,
        wait for all answers): the operation's latency is the maximum of
        the individual latencies, while bandwidth is charged per copy.
        """
        slowest = 0.0
        for destination in destinations:
            message = self.send(source, destination, size_bytes, kind)
            slowest = max(slowest, message.latency_ms)
        return slowest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def log(self) -> List[Message]:
        """Individual messages recorded so far (may be truncated for huge runs)."""
        return list(self._log)

    def reset(self) -> None:
        """Clear counters and the message log (benchmarks call this between phases)."""
        self.stats = TrafficStats()
        self._log.clear()
        self._keep_log = True

    def messages_between(self, source: str, destination: str) -> int:
        """How many messages went from ``source`` to ``destination``."""
        return self.stats.by_link.get((source, destination), 0)
