"""Simulated wide-area network: topology, latency model, traffic accounting."""

from repro.net.simulator import Message, NetworkSimulator, TrafficStats
from repro.net.topology import Site, Topology

__all__ = ["Site", "Topology", "Message", "NetworkSimulator", "TrafficStats"]
