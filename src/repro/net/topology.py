"""Geographic topology of storage/consumer sites.

The paper's Section III-D requirements are about *where* things are:
"storage should be near the sensors", "Boston traffic data belongs in
Boston, not in Singapore or even Seattle", and the resource-consumption
criterion of Section IV charges architectures for the network traffic
they generate.

:class:`Site` is a named participant (a sensor-network gateway, a data
warehouse, a university consumer...) with a geographic location.
:class:`Topology` holds the sites and converts geography into link cost:
latency is a propagation component proportional to great-circle distance
plus a fixed per-hop overhead, which is all the fidelity the
architecture comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.attributes import GeoPoint
from repro.errors import ConfigurationError, UnknownEntityError

__all__ = ["Site", "Topology"]


@dataclass(frozen=True)
class Site:
    """A participant in the distributed system.

    Attributes
    ----------
    name:
        Unique site name.
    location:
        Geographic position, used for latency and placement-distance
        accounting.
    kind:
        Free-form role label: ``"sensor-gateway"``, ``"warehouse"``,
        ``"consumer"`` -- used by reports, not by the mechanics.
    stable:
        Whether this participant is a stable, permanent host (Section
        IV-B) or a churn-prone one (Section IV-C); the DHT model marks
        its participants unstable.
    """

    name: str
    location: GeoPoint
    kind: str = "storage"
    stable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("site name must be non-empty")


class Topology:
    """The set of sites plus the latency model between them.

    Parameters
    ----------
    hop_latency_ms:
        Fixed per-message overhead (software + last-mile), applied to
        every message.
    ms_per_km:
        Propagation delay per great-circle kilometre.  The default
        (0.02 ms/km) is roughly speed-of-light-in-fibre with routing
        inflation.
    local_latency_ms:
        Latency of a message a site sends to itself (index co-located
        with data); small but not zero.
    """

    def __init__(
        self,
        hop_latency_ms: float = 2.0,
        ms_per_km: float = 0.02,
        local_latency_ms: float = 0.2,
    ) -> None:
        if hop_latency_ms < 0 or ms_per_km < 0 or local_latency_ms < 0:
            raise ConfigurationError("latency parameters must be non-negative")
        self._sites: Dict[str, Site] = {}
        self.hop_latency_ms = hop_latency_ms
        self.ms_per_km = ms_per_km
        self.local_latency_ms = local_latency_ms

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def add_site(self, site: Site) -> None:
        """Register a site; names must be unique."""
        if site.name in self._sites:
            raise ConfigurationError(f"duplicate site name {site.name!r}")
        self._sites[site.name] = site

    def site(self, name: str) -> Site:
        """Fetch a site by name."""
        try:
            return self._sites[name]
        except KeyError:
            raise UnknownEntityError(f"unknown site {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    @property
    def site_names(self) -> List[str]:
        """All site names, sorted."""
        return sorted(self._sites)

    def sites(self, kind: Optional[str] = None) -> List[Site]:
        """All sites, optionally filtered by ``kind``."""
        sites = [self._sites[name] for name in self.site_names]
        if kind is not None:
            sites = [site for site in sites if site.kind == kind]
        return sites

    # ------------------------------------------------------------------
    # Geometry and latency
    # ------------------------------------------------------------------
    def distance_km(self, source: str, destination: str) -> float:
        """Great-circle distance between two sites."""
        return self.site(source).location.distance_km(self.site(destination).location)

    def latency_ms(self, source: str, destination: str) -> float:
        """One-way message latency between two sites."""
        if source == destination:
            return self.local_latency_ms
        return self.hop_latency_ms + self.ms_per_km * self.distance_km(source, destination)

    def nearest_site(self, location: GeoPoint, kind: Optional[str] = None) -> Site:
        """The site geographically closest to ``location``.

        The locale-aware placement policy uses this to decide where a
        sensor network's data "belongs".
        """
        candidates = self.sites(kind)
        if not candidates:
            raise UnknownEntityError("topology has no sites of the requested kind")
        return min(candidates, key=lambda site: site.location.distance_km(location))

    def neighbours_by_distance(self, name: str) -> List[Site]:
        """Every other site, nearest first."""
        origin = self.site(name)
        others = [site for site in self.sites() if site.name != name]
        return sorted(others, key=lambda site: site.location.distance_km(origin.location))
