"""Exception hierarchy for the PASS reproduction library.

Every error raised by :mod:`repro` derives from :class:`PassError`, so
callers embedding the library can catch a single base class.  The more
specific subclasses mirror the major subsystems: provenance modelling,
storage, indexing, the distributed architecture models and the query
engine.
"""

from __future__ import annotations


class PassError(Exception):
    """Base class for every error raised by the repro library."""


class ProvenanceError(PassError):
    """A provenance record or provenance graph constraint was violated."""


class CycleError(ProvenanceError):
    """Adding an ancestry edge would create a cycle in the provenance DAG."""


class DuplicateProvenanceError(ProvenanceError):
    """Two non-identical data sets attempted to register identical provenance.

    This enforces PASS property P3 from Section V of the paper:
    non-identical data items must not have identical provenance.
    """


class UnknownEntityError(PassError):
    """A referenced tuple set, provenance record or node does not exist."""


class StorageError(PassError):
    """A storage backend failed or was used after being closed."""


class CrashInjectedError(StorageError):
    """Raised by the fault-injection layer to simulate a process crash."""


class RecoveryError(StorageError):
    """Recovery after a (simulated) crash could not restore a consistent state."""


class IndexError_(PassError):
    """An index was asked to do something it does not support."""


class QueryError(PassError):
    """A query was malformed or used an unsupported construct."""


class UnsupportedQueryError(QueryError):
    """The architecture model cannot execute this class of query.

    Section IV of the paper notes, for example, that the SRB-style
    metadata model "denies transitive closure"; the corresponding
    architecture model raises this error for recursive queries rather
    than silently returning wrong answers.
    """


class NamingError(PassError):
    """A conventional (string) name could not be produced or parsed."""


class PolicyError(PassError):
    """A privacy or access-control policy rejected an operation."""


class NetworkError(PassError):
    """The simulated network could not route or deliver a message."""


class PlacementError(PassError):
    """No storage site satisfied a placement policy."""


class ConfigurationError(PassError):
    """A component was constructed with inconsistent parameters."""
