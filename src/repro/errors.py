"""Exception hierarchy for the PASS reproduction library.

Every error raised by :mod:`repro` derives from :class:`PassError`, so
callers embedding the library can catch a single base class.  The more
specific subclasses mirror the major subsystems: provenance modelling,
storage, indexing, the distributed architecture models and the query
engine.
"""

from __future__ import annotations


class PassError(Exception):
    """Base class for every error raised by the repro library."""


class ProvenanceError(PassError):
    """A provenance record or provenance graph constraint was violated."""


class CycleError(ProvenanceError):
    """Adding an ancestry edge would create a cycle in the provenance DAG."""


class DuplicateProvenanceError(ProvenanceError):
    """Two non-identical data sets attempted to register identical provenance.

    This enforces PASS property P3 from Section V of the paper:
    non-identical data items must not have identical provenance.
    """


class UnknownEntityError(PassError):
    """A referenced tuple set, provenance record or node does not exist."""


class StorageError(PassError):
    """A storage backend failed or was used after being closed."""


class CrashInjectedError(StorageError):
    """Raised by the fault-injection layer to simulate a process crash."""


class RecoveryError(StorageError):
    """Recovery after a (simulated) crash could not restore a consistent state."""


class IndexError_(PassError):
    """An index was asked to do something it does not support."""


class QueryError(PassError):
    """A query was malformed or used an unsupported construct."""


class UnsupportedQueryError(QueryError):
    """The architecture model cannot execute this class of query.

    Section IV of the paper notes, for example, that the SRB-style
    metadata model "denies transitive closure"; the corresponding
    architecture model raises this error for recursive queries rather
    than silently returning wrong answers.
    """


class NamingError(PassError):
    """A conventional (string) name could not be produced or parsed."""


class PolicyError(PassError):
    """A privacy or access-control policy rejected an operation."""


class NetworkError(PassError):
    """The simulated network could not route or deliver a message."""


class PlacementError(PassError):
    """No storage site satisfied a placement policy."""


class ConfigurationError(PassError):
    """A component was constructed with inconsistent parameters."""


class ProtocolError(PassError):
    """A wire-protocol frame or payload was malformed (repro.server)."""


class AuthError(PassError):
    """A server rejected a connection's credentials (repro.server)."""


# ----------------------------------------------------------------------
# Stable wire codes (repro.server)
# ----------------------------------------------------------------------
# The wire protocol ships errors as ``{"code": ..., "message": ...}``;
# the codes below are stable identifiers a remote client maps back to
# the exception type it would have seen in-process.  Codes are part of
# the protocol contract: renaming one is a wire-version break.
ERROR_CODES = {
    "provenance": ProvenanceError,
    "cycle": CycleError,
    "duplicate-provenance": DuplicateProvenanceError,
    "unknown-entity": UnknownEntityError,
    "storage": StorageError,
    "crash-injected": CrashInjectedError,
    "recovery": RecoveryError,
    "index": IndexError_,
    "query": QueryError,
    "unsupported-query": UnsupportedQueryError,
    "naming": NamingError,
    "policy": PolicyError,
    "network": NetworkError,
    "placement": PlacementError,
    "configuration": ConfigurationError,
    "protocol": ProtocolError,
    "auth": AuthError,
    "error": PassError,
}

_CLASS_TO_CODE = {cls: code for code, cls in ERROR_CODES.items()}


def error_code(error: BaseException) -> str:
    """The stable wire code of an exception (most specific class wins).

    Unknown exception types map to the generic ``"error"`` code, so a
    daemon never leaks a traceback in place of a structured error.
    """
    for cls in type(error).__mro__:
        code = _CLASS_TO_CODE.get(cls)
        if code is not None:
            return code
    return "error"


def error_from_code(code: str, message: str) -> PassError:
    """Reconstruct the typed exception a wire error code stands for.

    Codes no local class knows (a newer server, a corrupt frame) degrade
    to the :class:`PassError` base rather than failing the decode.
    """
    cls = ERROR_CODES.get(code, PassError)
    return cls(message)
