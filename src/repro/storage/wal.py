"""A write-ahead log used by the crash-recovery experiment.

The paper's reliability criterion (Section IV): "The system must recover
provenance metadata to a state consistent with its data after a system
failure."  To exercise that quantitatively (experiment E11) we need a
storage substrate in which a crash can actually lose or tear writes, and
a recovery procedure that repairs them.

:class:`WriteAheadLog` is a deliberately small, file-based redo log:

* every intended operation (``put_record``, ``put_payload``,
  ``mark_removed``) is appended as one JSON line with a CRC;
* a crash can be injected after any append, leaving the log ahead of the
  backing store (the normal WAL situation) or tearing the final line
  (simulating a partial sector write);
* :meth:`replay` re-applies complete, checksummed entries to a backend
  and reports what was recovered and what was discarded.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import RecoveryError, StorageError
from repro.storage.backend import StorageBackend

__all__ = ["WalEntry", "ReplayReport", "WriteAheadLog"]

_OPS = {"put_record", "put_payload", "mark_removed", "put_index_blob"}


@dataclass(frozen=True)
class WalEntry:
    """One logical operation recorded in the log."""

    sequence: int
    operation: str
    #: the PName digest the operation targets -- or, for
    #: ``put_index_blob``, the blob's name (index snapshots are keyed by
    #: name, not by record identity)
    pname: str
    payload: Optional[str] = None  # JSON record text or hex payload bytes

    def encode(self) -> str:
        """Encode as a single JSON line with a trailing CRC32 field."""
        body = json.dumps(
            {
                "seq": self.sequence,
                "op": self.operation,
                "pname": self.pname,
                "payload": self.payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        return f"{body}|{crc:08x}"

    @classmethod
    def decode(cls, line: str) -> "WalEntry":
        """Decode one line, raising ``StorageError`` on corruption."""
        if "|" not in line:
            raise StorageError("WAL line missing checksum")
        body, _, crc_text = line.rpartition("|")
        try:
            expected = int(crc_text, 16)
        except ValueError as exc:
            raise StorageError("WAL checksum is not hexadecimal") from exc
        actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        if actual != expected:
            raise StorageError("WAL checksum mismatch")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise StorageError("WAL body is not valid JSON") from exc
        if payload.get("op") not in _OPS:
            raise StorageError(f"unknown WAL operation {payload.get('op')!r}")
        return cls(
            sequence=int(payload["seq"]),
            operation=payload["op"],
            pname=payload["pname"],
            payload=payload.get("payload"),
        )


@dataclass
class ReplayReport:
    """What :meth:`WriteAheadLog.replay` did."""

    applied: int = 0
    skipped_corrupt: int = 0
    skipped_duplicate: int = 0

    def total_seen(self) -> int:
        """Total log lines examined."""
        return self.applied + self.skipped_corrupt + self.skipped_duplicate


class WriteAheadLog:
    """Append-only redo log for a storage backend.

    Parameters
    ----------
    path:
        File the log lives in.  Created on first append.
    """

    def __init__(self, path: os.PathLike) -> None:
        self._path = Path(path)
        self._sequence = self._last_sequence_on_disk()
        self._torn_next_write = False

    @property
    def path(self) -> Path:
        """Location of the log file."""
        return self._path

    @property
    def sequence(self) -> int:
        """Sequence number of the most recently appended entry (0 if none)."""
        return self._sequence

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def log_put_record(self, record: ProvenanceRecord) -> WalEntry:
        """Log an intent to store a provenance record."""
        return self._append("put_record", record.pname().digest, record.to_json())

    def log_put_payload(self, pname: PName, payload: bytes) -> WalEntry:
        """Log an intent to store a tuple-set payload."""
        return self._append("put_payload", pname.digest, payload.hex())

    def log_mark_removed(self, pname: PName) -> WalEntry:
        """Log an intent to mark a data set removed."""
        return self._append("mark_removed", pname.digest, None)

    def log_put_index_blob(self, name: str, payload: bytes) -> WalEntry:
        """Log an intent to persist an auxiliary index snapshot.

        The reachability labelling of :mod:`repro.lineage` is recovered
        like any other acknowledged write: replay re-installs the
        snapshot, and the store's fingerprint check decides whether it
        still matches the recovered records.
        """
        return self._append("put_index_blob", name, payload.hex())

    def inject_torn_write(self) -> None:
        """Make the *next* appended entry be written only partially.

        This simulates a crash in the middle of a sector write; the torn
        line must be detected and discarded on replay.
        """
        self._torn_next_write = True

    def _append(self, operation: str, pname_digest: str, payload: Optional[str]) -> WalEntry:
        self._sequence += 1
        entry = WalEntry(self._sequence, operation, pname_digest, payload)
        line = entry.encode()
        if self._torn_next_write:
            line = line[: max(1, len(line) // 2)]
            self._torn_next_write = False
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return entry

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def entries(self) -> List[WalEntry]:
        """Decode every intact entry currently in the log (corrupt lines skipped)."""
        result = []
        for line in self._read_lines():
            try:
                result.append(WalEntry.decode(line))
            except StorageError:
                continue
        return result

    def replay(self, backend: StorageBackend) -> ReplayReport:
        """Re-apply intact log entries to ``backend``.

        Entries whose effect is already present (same record stored, same
        payload stored, already marked removed) are counted as
        duplicates; corrupt or torn lines are skipped.  The result is a
        backend state consistent with every *acknowledged* write, which
        is exactly the recovery guarantee the paper's reliability
        criterion asks for.
        """
        report = ReplayReport()
        for line in self._read_lines():
            try:
                entry = WalEntry.decode(line)
            except StorageError:
                report.skipped_corrupt += 1
                continue
            if self._apply(entry, backend):
                report.applied += 1
            else:
                report.skipped_duplicate += 1
        backend.flush()
        return report

    def truncate(self) -> None:
        """Empty the log (called after a successful checkpoint)."""
        with open(self._path, "w", encoding="utf-8"):
            pass
        self._sequence = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply(self, entry: WalEntry, backend: StorageBackend) -> bool:
        if entry.operation == "put_index_blob":
            # Index blobs are keyed by name, not by a PName digest.
            if entry.payload is None:
                raise RecoveryError("put_index_blob entry missing its snapshot body")
            blob = bytes.fromhex(entry.payload)
            if backend.get_index_blob(entry.pname) == blob:
                return False
            return backend.put_index_blob(entry.pname, blob)
        pname = PName(entry.pname)
        if entry.operation == "put_record":
            if entry.payload is None:
                raise RecoveryError("put_record entry missing its record body")
            record = ProvenanceRecord.from_json(entry.payload)
            if backend.has_record(pname):
                return False
            backend.put_record(record)
            return True
        if entry.operation == "put_payload":
            if entry.payload is None:
                raise RecoveryError("put_payload entry missing its payload body")
            if backend.get_payload(pname) is not None:
                return False
            backend.put_payload(pname, bytes.fromhex(entry.payload))
            return True
        if entry.operation == "mark_removed":
            if backend.is_removed(pname):
                return False
            backend.mark_removed(pname)
            return True
        raise RecoveryError(f"unknown WAL operation {entry.operation!r}")

    def _read_lines(self) -> List[str]:
        if not self._path.exists():
            return []
        with open(self._path, "r", encoding="utf-8") as handle:
            return [line.rstrip("\n") for line in handle if line.strip()]

    def _last_sequence_on_disk(self) -> int:
        last = 0
        for line in self._read_lines():
            try:
                entry = WalEntry.decode(line)
            except StorageError:
                continue
            last = max(last, entry.sequence)
        return last
