"""Storage substrates: in-memory and SQLite backends, WAL, replication."""

from repro.storage.backend import StorageBackend, StorageStats
from repro.storage.memory import MemoryBackend
from repro.storage.replication import ReplicationManager
from repro.storage.sqlite import SQLiteBackend
from repro.storage.wal import ReplayReport, WalEntry, WriteAheadLog

__all__ = [
    "StorageBackend",
    "StorageStats",
    "MemoryBackend",
    "SQLiteBackend",
    "WriteAheadLog",
    "WalEntry",
    "ReplayReport",
    "ReplicationManager",
]
