"""Storage substrates: in-memory, SQLite and sharded backends, WAL, replication."""

from repro.storage.backend import StorageBackend, StorageStats
from repro.storage.factory import BACKEND_KINDS, make_backend
from repro.storage.memory import MemoryBackend
from repro.storage.replication import ReplicationManager
from repro.storage.sharded import ShardedBackend, shard_of_digest
from repro.storage.sqlite import SQLiteBackend
from repro.storage.wal import ReplayReport, WalEntry, WriteAheadLog

__all__ = [
    "StorageBackend",
    "StorageStats",
    "BACKEND_KINDS",
    "make_backend",
    "MemoryBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "shard_of_digest",
    "WriteAheadLog",
    "WalEntry",
    "ReplayReport",
    "ReplicationManager",
]
