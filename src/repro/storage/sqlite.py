"""SQLite-backed storage backend.

This is the durable prototype substrate: provenance records, tuple-set
payloads and removal markers in three tables, with SQLite's own WAL
journalling enabled.  A fault-injection hook lets experiment E11 crash
the backend after a configurable number of writes, then re-open the
database and (optionally) replay the library-level
:class:`~repro.storage.wal.WriteAheadLog` to verify the recovery story.

Schema
------
``records(pname TEXT PRIMARY KEY, body TEXT)``
    The provenance record as canonical JSON.
``payloads(pname TEXT PRIMARY KEY, body BLOB)``
    The serialised readings of the tuple set.
``removed(pname TEXT PRIMARY KEY)``
    PNames whose data was removed (provenance retained).
``ancestry(child TEXT, parent TEXT, PRIMARY KEY (child, parent))``
    Redundant edge table so ancestry queries can also be issued in SQL;
    kept in sync with the records.
``index_blobs(name TEXT PRIMARY KEY, body BLOB)``
    Auxiliary index snapshots (the :mod:`repro.lineage` reachability
    labelling), so reopening the store does not re-derive them.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import CrashInjectedError, StorageError
from repro.storage.backend import StorageBackend, validate_batch_payloads

__all__ = ["SQLiteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    pname TEXT PRIMARY KEY,
    body  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS payloads (
    pname TEXT PRIMARY KEY,
    body  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS removed (
    pname TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS ancestry (
    child  TEXT NOT NULL,
    parent TEXT NOT NULL,
    PRIMARY KEY (child, parent)
);
CREATE INDEX IF NOT EXISTS ancestry_parent ON ancestry(parent);
CREATE TABLE IF NOT EXISTS index_blobs (
    name TEXT PRIMARY KEY,
    body BLOB NOT NULL
);
"""


class SQLiteBackend(StorageBackend):
    """Durable backend over a single SQLite database file.

    Parameters
    ----------
    path:
        Database file.  Use ``":memory:"`` for a private in-memory
        database (handy in tests that want SQL behaviour without disk).
    crash_after_writes:
        When set, the backend raises
        :class:`~repro.errors.CrashInjectedError` once that many write
        operations have been attempted, *before* committing the failing
        write.  Used by the recovery experiment.
    """

    storage_kind = "sqlite"

    def __init__(
        self,
        path: str | Path = ":memory:",
        crash_after_writes: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._path = str(path)
        # The connection is usable from any thread; the backend itself is
        # not thread-safe, so concurrent callers (the sharded backend's
        # commit pool) serialize access per instance.
        self._connection = sqlite3.connect(self._path, check_same_thread=False)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        self._writes_seen = 0
        self._crash_after_writes = crash_after_writes
        self._closed = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _maybe_crash(self) -> None:
        if self._crash_after_writes is None:
            return
        self._writes_seen += 1
        if self._writes_seen > self._crash_after_writes:
            # Simulate a hard crash: the connection dies without commit.
            self._connection.rollback()
            self._connection.close()
            self._closed = True
            raise CrashInjectedError(
                f"injected crash after {self._crash_after_writes} writes"
            )

    def writes_performed(self) -> int:
        """Number of write operations attempted (for recovery bookkeeping)."""
        return self._writes_seen

    # ------------------------------------------------------------------
    # Provenance records
    # ------------------------------------------------------------------
    def put_record(self, record: ProvenanceRecord) -> None:
        self._check_open()
        self._maybe_crash()
        digest = record.pname().digest
        body = record.to_json()
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO records (pname, body) VALUES (?, ?)", (digest, body)
            )
            self._connection.executemany(
                "INSERT OR IGNORE INTO ancestry (child, parent) VALUES (?, ?)",
                [(digest, ancestor.digest) for ancestor in record.ancestors],
            )
        self.stats.puts += 1

    def put_batch(self, entries) -> None:
        """Commit a whole batch of records (and payloads) in one transaction.

        The crash-injection counter is charged up front for every write
        the batch would perform: the batch is atomic, so an injected
        crash loses the whole batch rather than a prefix of it.
        """
        self._check_open()
        entries = list(entries)
        validate_batch_payloads(entries)
        for record, payload in entries:
            self._maybe_crash()
            if payload is not None:
                self._maybe_crash()
        started = time.perf_counter()
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO records (pname, body) VALUES (?, ?)",
                [(record.pname().digest, record.to_json()) for record, _ in entries],
            )
            self._connection.executemany(
                "INSERT OR IGNORE INTO ancestry (child, parent) VALUES (?, ?)",
                [
                    (record.pname().digest, ancestor.digest)
                    for record, _ in entries
                    for ancestor in record.ancestors
                ],
            )
            self._connection.executemany(
                "INSERT OR REPLACE INTO payloads (pname, body) VALUES (?, ?)",
                [
                    (record.pname().digest, bytes(payload))
                    for record, payload in entries
                    if payload is not None
                ],
            )
        self._note_group_commit(len(entries), (time.perf_counter() - started) * 1000.0)
        for record, payload in entries:
            self.stats.puts += 1
            if payload is not None:
                self.stats.puts += 1
                self.stats.payload_bytes += len(payload)

    def get_record(self, pname: PName) -> Optional[ProvenanceRecord]:
        self._check_open()
        self.stats.gets += 1
        row = self._connection.execute(
            "SELECT body FROM records WHERE pname = ?", (pname.digest,)
        ).fetchone()
        if row is None:
            return None
        return ProvenanceRecord.from_json(row[0])

    def get_records(self, pnames):
        """Bulk fetch: chunked ``IN`` selects instead of one statement per record."""
        self._check_open()
        pnames = list(pnames)
        self.stats.gets += len(pnames)
        found = {}
        chunk_size = 500  # stay far below SQLite's bound-parameter limit
        for start in range(0, len(pnames), chunk_size):
            chunk = pnames[start : start + chunk_size]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._connection.execute(
                f"SELECT pname, body FROM records WHERE pname IN ({placeholders})",
                [pname.digest for pname in chunk],
            ).fetchall()
            for digest, body in rows:
                found[digest] = ProvenanceRecord.from_json(body)
        return [
            (pname, found[pname.digest]) for pname in pnames if pname.digest in found
        ]

    def has_record(self, pname: PName) -> bool:
        self._check_open()
        row = self._connection.execute(
            "SELECT 1 FROM records WHERE pname = ?", (pname.digest,)
        ).fetchone()
        return row is not None

    def iter_records(self) -> Iterator[Tuple[PName, ProvenanceRecord]]:
        self._check_open()
        cursor = self._connection.execute("SELECT pname, body FROM records")
        for digest, body in cursor:
            yield PName(digest), ProvenanceRecord.from_json(body)

    def record_count(self) -> int:
        self._check_open()
        row = self._connection.execute("SELECT COUNT(*) FROM records").fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    def put_payload(self, pname: PName, payload: bytes) -> None:
        self._check_open()
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("payload must be bytes")
        self._maybe_crash()
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO payloads (pname, body) VALUES (?, ?)",
                (pname.digest, bytes(payload)),
            )
        self.stats.puts += 1
        self.stats.payload_bytes += len(payload)

    def get_payload(self, pname: PName) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        row = self._connection.execute(
            "SELECT body FROM payloads WHERE pname = ?", (pname.digest,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def delete_payload(self, pname: PName) -> bool:
        self._check_open()
        self._maybe_crash()
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM payloads WHERE pname = ?", (pname.digest,)
            )
        deleted = cursor.rowcount > 0
        if deleted:
            self.stats.deletes += 1
        return deleted

    # ------------------------------------------------------------------
    # Auxiliary index snapshots
    # ------------------------------------------------------------------
    def put_index_blob(self, name: str, payload: bytes) -> bool:
        self._check_open()
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("index blob payload must be bytes")
        self._maybe_crash()
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO index_blobs (name, body) VALUES (?, ?)",
                (name, bytes(payload)),
            )
        self.stats.puts += 1
        return True

    def get_index_blob(self, name: str) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        row = self._connection.execute(
            "SELECT body FROM index_blobs WHERE name = ?", (name,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def delete_index_blob(self, name: str) -> bool:
        self._check_open()
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM index_blobs WHERE name = ?", (name,)
            )
        deleted = cursor.rowcount > 0
        if deleted:
            self.stats.deletes += 1
        return deleted

    # ------------------------------------------------------------------
    # Removal markers
    # ------------------------------------------------------------------
    def mark_removed(self, pname: PName) -> None:
        self._check_open()
        self._maybe_crash()
        with self._connection:
            self._connection.execute(
                "INSERT OR IGNORE INTO removed (pname) VALUES (?)", (pname.digest,)
            )

    def is_removed(self, pname: PName) -> bool:
        self._check_open()
        row = self._connection.execute(
            "SELECT 1 FROM removed WHERE pname = ?", (pname.digest,)
        ).fetchone()
        return row is not None

    def removed_pnames(self) -> List[PName]:
        self._check_open()
        cursor = self._connection.execute("SELECT pname FROM removed ORDER BY pname")
        return [PName(row[0]) for row in cursor]

    # ------------------------------------------------------------------
    # SQL-level ancestry (used by tests to cross-check the graph)
    # ------------------------------------------------------------------
    def sql_ancestors(self, pname: PName) -> List[PName]:
        """Transitive ancestors computed with a recursive SQL CTE.

        Exists to demonstrate (and test) that the edge table is
        sufficient to answer closure queries in plain SQL, and to give
        the benchmarks a "relational engine" comparison point.
        """
        self._check_open()
        cursor = self._connection.execute(
            """
            WITH RECURSIVE up(pname) AS (
                SELECT parent FROM ancestry WHERE child = ?
                UNION
                SELECT ancestry.parent FROM ancestry JOIN up ON ancestry.child = up.pname
            )
            SELECT pname FROM up
            """,
            (pname.digest,),
        )
        return [PName(row[0]) for row in cursor]

    def sql_descendants(self, pname: PName) -> List[PName]:
        """Transitive descendants via a recursive SQL CTE (see :meth:`sql_ancestors`)."""
        self._check_open()
        cursor = self._connection.execute(
            """
            WITH RECURSIVE down(pname) AS (
                SELECT child FROM ancestry WHERE parent = ?
                UNION
                SELECT ancestry.child FROM ancestry JOIN down ON ancestry.parent = down.pname
            )
            SELECT pname FROM down
            """,
            (pname.digest,),
        )
        return [PName(row[0]) for row in cursor]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if not self._closed:
            self._connection.commit()

    def close(self) -> None:
        if not self._closed:
            self._connection.commit()
            self._connection.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("SQLite backend has been closed (or crashed)")
