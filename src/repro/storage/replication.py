"""Replication of provenance records across storage sites.

Section V: "Our model does not inherently involve replication, as data
is locale-specific, but replication is desirable for reliability and for
query performance.  Supporting replication cheaply is an interesting
problem."

:class:`ReplicationManager` implements a simple, explicit replication
policy over a set of named backends (one per simulated site):

* every record has a *home* site (chosen by the caller, typically the
  locale-aware placement policy);
* the manager maintains up to ``replication_factor`` total copies,
  choosing replica sites by a deterministic preference order;
* reads prefer the requested site, falling back to any live replica;
* sites can be failed and recovered, which is how the reliability
  criterion is scored for the distributed models.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import ConfigurationError, StorageError, UnknownEntityError
from repro.storage.backend import StorageBackend

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Keeps up to N copies of each provenance record across sites.

    Parameters
    ----------
    backends:
        Mapping of site name to that site's storage backend.
    replication_factor:
        Total number of copies to maintain (including the home copy).
    """

    def __init__(self, backends: Mapping[str, StorageBackend], replication_factor: int = 2) -> None:
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be at least 1")
        if not backends:
            raise ConfigurationError("ReplicationManager needs at least one backend")
        self._backends: Dict[str, StorageBackend] = dict(backends)
        self._factor = min(replication_factor, len(self._backends))
        self._locations: Dict[str, List[str]] = {}
        self._failed: Set[str] = set()

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[str]:
        """All site names, failed or not."""
        return sorted(self._backends)

    @property
    def replication_factor(self) -> int:
        """Number of copies maintained per record."""
        return self._factor

    def fail_site(self, site: str) -> None:
        """Mark a site as crashed/unreachable."""
        self._require_site(site)
        self._failed.add(site)

    def recover_site(self, site: str) -> None:
        """Bring a failed site back (its stored copies become readable again)."""
        self._require_site(site)
        self._failed.discard(site)

    def is_failed(self, site: str) -> bool:
        """True when the site is currently marked failed."""
        self._require_site(site)
        return site in self._failed

    def live_sites(self) -> List[str]:
        """Sites currently reachable."""
        return sorted(set(self._backends) - self._failed)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def store(self, record: ProvenanceRecord, home_site: str) -> List[str]:
        """Store ``record`` at its home site plus replicas; return the copy sites.

        Replica sites are chosen deterministically: the live sites other
        than the home, in sorted order, until the replication factor is
        met.  If the home site is down the write fails -- the paper's
        model stores data where it is produced, so there is no
        "write anywhere" fallback.
        """
        self._require_site(home_site)
        if home_site in self._failed:
            raise StorageError(f"home site {home_site!r} is failed; cannot store")
        copies = [home_site]
        for site in self.live_sites():
            if len(copies) >= self._factor:
                break
            if site != home_site:
                copies.append(site)
        for site in copies:
            self._backends[site].put_record(record)
        self._locations[record.pname().digest] = copies
        return list(copies)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def locations(self, pname: PName) -> List[str]:
        """Sites believed to hold a copy (regardless of failure state)."""
        try:
            return list(self._locations[pname.digest])
        except KeyError:
            raise UnknownEntityError(f"no replicas recorded for {pname}") from None

    def fetch(self, pname: PName, prefer_site: Optional[str] = None) -> ProvenanceRecord:
        """Fetch a record from the preferred site, else any live replica.

        Raises :class:`~repro.errors.StorageError` when every replica is
        on a failed site -- that is the data-loss event the reliability
        experiment counts.
        """
        sites = self.locations(pname)
        ordered: Sequence[str]
        if prefer_site is not None and prefer_site in sites:
            ordered = [prefer_site] + [site for site in sites if site != prefer_site]
        else:
            ordered = sites
        for site in ordered:
            if site in self._failed:
                continue
            record = self._backends[site].get_record(pname)
            if record is not None:
                return record
        raise StorageError(f"no live replica of {pname} (copies at {sites})")

    def available(self, pname: PName) -> bool:
        """True when at least one live site still holds the record."""
        try:
            return any(site not in self._failed for site in self.locations(pname))
        except UnknownEntityError:
            return False

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self) -> int:
        """Re-replicate records that lost copies to failed sites.

        Copies on failed sites are treated as lost; new replicas are
        created on live sites (reading from a surviving copy) until the
        replication factor is met again.  Returns the number of new
        copies created.
        """
        created = 0
        for digest, sites in list(self._locations.items()):
            live_copies = [site for site in sites if site not in self._failed]
            if not live_copies:
                continue  # unrecoverable until a holder comes back
            pname = PName(digest)
            record = None
            for site in live_copies:
                record = self._backends[site].get_record(pname)
                if record is not None:
                    break
            if record is None:  # pragma: no cover - defensive
                continue
            needed = self._factor - len(live_copies)
            if needed <= 0:
                continue
            for site in self.live_sites():
                if needed == 0:
                    break
                if site in live_copies:
                    continue
                self._backends[site].put_record(record)
                live_copies.append(site)
                created += 1
                needed -= 1
            self._locations[digest] = live_copies
        return created

    def copy_count(self, pname: PName) -> int:
        """Number of live copies of the record right now."""
        return sum(1 for site in self.locations(pname) if site not in self._failed)

    def _require_site(self, site: str) -> None:
        if site not in self._backends:
            raise UnknownEntityError(f"unknown site {site!r}")
