"""In-memory storage backend.

Dict-backed and fast; the default substrate for unit tests, examples and
the per-site stores inside the distributed architecture models.  It is
deliberately free of durability so that crash-recovery behaviour is a
property only of the SQLite backend (experiment E11 compares the two).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import StorageError
from repro.storage.backend import StorageBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Stores everything in process memory."""

    storage_kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._records: Dict[str, ProvenanceRecord] = {}
        self._payloads: Dict[str, bytes] = {}
        self._index_blobs: Dict[str, bytes] = {}
        self._removed: Set[str] = set()
        self._closed = False

    # -- provenance records ---------------------------------------------------
    def put_record(self, record: ProvenanceRecord) -> None:
        self._check_open()
        self._records[record.pname().digest] = record
        self.stats.puts += 1

    def get_record(self, pname: PName) -> Optional[ProvenanceRecord]:
        self._check_open()
        self.stats.gets += 1
        return self._records.get(pname.digest)

    def has_record(self, pname: PName) -> bool:
        self._check_open()
        return pname.digest in self._records

    def iter_records(self) -> Iterator[Tuple[PName, ProvenanceRecord]]:
        self._check_open()
        for digest, record in self._records.items():
            yield PName(digest), record

    def record_count(self) -> int:
        self._check_open()
        return len(self._records)

    # -- payloads -----------------------------------------------------------------
    def put_payload(self, pname: PName, payload: bytes) -> None:
        self._check_open()
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("payload must be bytes")
        self._payloads[pname.digest] = bytes(payload)
        self.stats.puts += 1
        self.stats.payload_bytes += len(payload)

    def get_payload(self, pname: PName) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        return self._payloads.get(pname.digest)

    def delete_payload(self, pname: PName) -> bool:
        self._check_open()
        existed = self._payloads.pop(pname.digest, None) is not None
        if existed:
            self.stats.deletes += 1
        return existed

    # -- auxiliary index snapshots -------------------------------------------
    def put_index_blob(self, name: str, payload: bytes) -> bool:
        self._check_open()
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("index blob payload must be bytes")
        self._index_blobs[name] = bytes(payload)
        self.stats.puts += 1
        return True

    def get_index_blob(self, name: str) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        return self._index_blobs.get(name)

    def delete_index_blob(self, name: str) -> bool:
        self._check_open()
        existed = self._index_blobs.pop(name, None) is not None
        if existed:
            self.stats.deletes += 1
        return existed

    # -- removal markers -------------------------------------------------------
    def mark_removed(self, pname: PName) -> None:
        self._check_open()
        self._removed.add(pname.digest)

    def is_removed(self, pname: PName) -> bool:
        self._check_open()
        return pname.digest in self._removed

    def removed_pnames(self) -> List[PName]:
        self._check_open()
        return [PName(digest) for digest in sorted(self._removed)]

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("backend has been closed")
