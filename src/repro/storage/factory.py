"""Backend factory: construct a storage backend from a kind name.

The PassClient registry (``connect("memory://")`` /
``connect("sqlite:///pass.db")``) and anything else that configures
storage by name goes through here, so the set of shipped backends lives
in exactly one place.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend

__all__ = ["BACKEND_KINDS", "make_backend"]

#: the backend kinds make_backend understands
BACKEND_KINDS = ("memory", "sqlite")


def make_backend(kind: str, path: Optional[str] = None, **options) -> StorageBackend:
    """Build a storage backend by kind name.

    ``path`` only applies to durable backends (``sqlite``); extra
    keyword options are forwarded to the backend constructor.
    """
    if kind == "memory":
        if path is not None:
            raise ConfigurationError("the memory backend takes no path")
        return MemoryBackend(**options)
    if kind == "sqlite":
        return SQLiteBackend(path if path is not None else ":memory:", **options)
    raise ConfigurationError(
        f"unknown storage backend kind {kind!r}; known: {list(BACKEND_KINDS)}"
    )
