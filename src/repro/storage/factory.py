"""Backend factory: construct a storage backend from a kind name.

The PassClient registry (``connect("memory://")`` /
``connect("sqlite:///pass.db")`` / ``connect("sqlite:///pass.db?shards=8")``)
and anything else that configures storage by name goes through here, so
the set of shipped backends lives in exactly one place.

``shards=N`` (N >= 2) on the ``memory`` and ``sqlite`` kinds builds a
:class:`~repro.storage.sharded.ShardedBackend` partitioning the keyspace
across N per-shard substrates of that kind.  The factory also guards the
two reopen mistakes that would silently mis-partition data: opening an
existing *sharded* base without ``shards=`` (or with a different count)
and opening an existing *unsharded* database with ``shards=N`` both
raise :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError, StorageError
from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sharded import ShardedBackend, shard_file_name
from repro.storage.sqlite import SQLiteBackend

__all__ = ["BACKEND_KINDS", "make_backend"]

#: the backend kinds make_backend understands
BACKEND_KINDS = ("memory", "sqlite", "sharded")


def _sharded_base_exists(path: Optional[str]) -> bool:
    return path is not None and Path(shard_file_name(path, 0)).exists()


def make_backend(
    kind: str, path: Optional[str] = None, shards: int = 1, **options
) -> StorageBackend:
    """Build a storage backend by kind name.

    ``path`` only applies to durable backends (``sqlite``/``sharded``);
    ``shards`` >= 2 partitions the store (see module docstring); extra
    keyword options are forwarded to the backend constructor.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if kind == "memory":
        if path is not None:
            raise ConfigurationError("the memory backend takes no path")
        if shards > 1:
            return ShardedBackend(None, shards=shards, kind="memory", **options)
        return MemoryBackend(**options)
    if kind == "sqlite":
        db_path = path if path is not None else ":memory:"
        if shards > 1:
            return make_backend("sharded", path=db_path, shards=shards, **options)
        if _sharded_base_exists(path):
            raise StorageError(
                f"{path!r} is the base of a sharded database "
                f"({shard_file_name(path, 0)} exists); open it with the "
                "shards=N it was created with"
            )
        return SQLiteBackend(db_path, **options)
    if kind == "sharded":
        db_path = path if path is not None else ":memory:"
        if (
            db_path != ":memory:"
            and Path(db_path).exists()
            and not _sharded_base_exists(db_path)
        ):
            raise StorageError(
                f"{db_path!r} is an existing unsharded SQLite database; open "
                "it without shards= (or migrate it into a sharded base first)"
            )
        return ShardedBackend(db_path, shards=max(2, shards), **options)
    raise ConfigurationError(
        f"unknown storage backend kind {kind!r}; known: {list(BACKEND_KINDS)}"
    )
