"""Abstract storage backend for provenance records and tuple-set payloads.

The PASS store separates *what* it stores (provenance records, reading
payloads, removal markers) from *where* bytes live.  Two backends ship
with the library:

* :class:`repro.storage.memory.MemoryBackend` -- a dict-backed store used
  by most tests and by the distributed architecture models (each
  simulated site gets its own).
* :class:`repro.storage.sqlite.SQLiteBackend` -- the durable prototype
  the calibration notes anticipate, with WAL journalling and crash
  recovery used by experiment E11.

Backends store provenance records keyed by PName digest, raw reading
payloads keyed the same way, and a removed-set.  They intentionally know
nothing about indexing or queries; those live above, in
:mod:`repro.index` and :mod:`repro.core.pass_store`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Tuple

from repro.core.provenance import PName, ProvenanceRecord

__all__ = ["StorageBackend", "StorageStats"]


class StorageStats:
    """Simple operation counters every backend maintains.

    The evaluation harness reads these to charge storage cost to the
    architecture models (resource-consumption criterion).
    """

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.payload_bytes = 0

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for reports)."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "payload_bytes": self.payload_bytes,
        }


class StorageBackend(ABC):
    """Interface every storage backend implements."""

    def __init__(self) -> None:
        self.stats = StorageStats()

    # -- provenance records ---------------------------------------------------
    @abstractmethod
    def put_record(self, record: ProvenanceRecord) -> None:
        """Persist a provenance record, keyed by its PName."""

    @abstractmethod
    def get_record(self, pname: PName) -> Optional[ProvenanceRecord]:
        """Fetch a provenance record, or ``None`` when absent."""

    @abstractmethod
    def has_record(self, pname: PName) -> bool:
        """True when a record with this PName is stored."""

    def get_records(self, pnames: "List[PName]") -> "List[Tuple[PName, ProvenanceRecord]]":
        """Fetch several records, preserving input order; missing PNames are skipped.

        The planner's executor feeds index-served candidate sets through
        here.  The default loops :meth:`get_record`; backends with a
        cheaper bulk read (one statement instead of one per record)
        override it.
        """
        result: List[Tuple[PName, ProvenanceRecord]] = []
        for pname in pnames:
            record = self.get_record(pname)
            if record is not None:
                result.append((pname, record))
        return result

    @abstractmethod
    def iter_records(self) -> Iterator[Tuple[PName, ProvenanceRecord]]:
        """Iterate over every stored ``(PName, record)`` pair."""

    @abstractmethod
    def record_count(self) -> int:
        """Number of stored provenance records."""

    def put_batch(self, entries: "List[Tuple[ProvenanceRecord, Optional[bytes]]]") -> None:
        """Persist several ``(record, payload)`` pairs as one batch.

        ``payload`` may be ``None`` for metadata-only records.  The
        default simply loops; durable backends override it to commit the
        whole batch in a single transaction, which is what makes the
        façade's ``publish_many`` cheaper per tuple set than looped
        publishes.
        """
        for record, payload in entries:
            self.put_record(record)
            if payload is not None:
                self.put_payload(record.pname(), payload)

    # -- payloads (the readings themselves) ----------------------------------
    @abstractmethod
    def put_payload(self, pname: PName, payload: bytes) -> None:
        """Persist the serialised readings of a tuple set."""

    @abstractmethod
    def get_payload(self, pname: PName) -> Optional[bytes]:
        """Fetch a tuple set's serialised readings, or ``None``."""

    @abstractmethod
    def delete_payload(self, pname: PName) -> bool:
        """Remove a payload (the *data*, never the provenance).

        Returns True when something was deleted.  Used to exercise PASS
        property P4: deleting data must not delete provenance.
        """

    # -- auxiliary index snapshots -------------------------------------------
    def put_index_blob(self, name: str, payload: bytes) -> bool:
        """Persist an auxiliary index snapshot under ``name``.

        Used by the :mod:`repro.lineage` reachability index so reopening
        a durable store does not re-derive its labelling.  Returns True
        when the blob was actually stored; the default (no blob storage)
        returns False so callers know persistence did not happen.
        """
        return False

    def get_index_blob(self, name: str) -> Optional[bytes]:
        """Fetch a previously stored index snapshot, or ``None``."""
        return None

    def delete_index_blob(self, name: str) -> bool:
        """Drop a stored index snapshot; True when something was deleted."""
        return False

    # -- removal markers -------------------------------------------------------
    @abstractmethod
    def mark_removed(self, pname: PName) -> None:
        """Remember that the data named by ``pname`` was removed."""

    @abstractmethod
    def is_removed(self, pname: PName) -> bool:
        """True when the data named by ``pname`` was removed."""

    @abstractmethod
    def removed_pnames(self) -> List[PName]:
        """All PNames whose data was removed."""

    # -- lifecycle ---------------------------------------------------------------
    def flush(self) -> None:
        """Force durability (no-op for volatile backends)."""

    def close(self) -> None:
        """Release resources; further use raises ``StorageError``."""
