"""Abstract storage backend for provenance records and tuple-set payloads.

The PASS store separates *what* it stores (provenance records, reading
payloads, removal markers) from *where* bytes live.  Two backends ship
with the library:

* :class:`repro.storage.memory.MemoryBackend` -- a dict-backed store used
  by most tests and by the distributed architecture models (each
  simulated site gets its own).
* :class:`repro.storage.sqlite.SQLiteBackend` -- the durable prototype
  the calibration notes anticipate, with WAL journalling and crash
  recovery used by experiment E11.

Backends store provenance records keyed by PName digest, raw reading
payloads keyed the same way, and a removed-set.  They intentionally know
nothing about indexing or queries; those live above, in
:mod:`repro.index` and :mod:`repro.core.pass_store`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import StorageError

__all__ = ["StorageBackend", "StorageStats", "validate_batch_payloads"]


def validate_batch_payloads(entries) -> None:
    """Reject a batch containing a non-bytes payload *before* any write.

    Shared by every ``put_batch`` implementation so an invalid entry
    fails the whole batch identically on all backends (no partial state).
    """
    for record, payload in entries:
        if payload is not None and not isinstance(payload, (bytes, bytearray)):
            raise StorageError(
                f"payload for {record.pname().short} must be bytes, "
                f"got {type(payload).__name__}"
            )


class StorageStats:
    """Simple operation counters every backend maintains.

    The evaluation harness reads these to charge storage cost to the
    architecture models (resource-consumption criterion).
    """

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.payload_bytes = 0

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for reports)."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "payload_bytes": self.payload_bytes,
        }


class StorageBackend(ABC):
    """Interface every storage backend implements."""

    #: machine-readable backend family name in ``storage_stats()["kind"]``
    storage_kind = "abstract"

    def __init__(self) -> None:
        self.stats = StorageStats()
        # Storage-engine counters behind the frozen stats()["storage"]
        # block: group commits (batched transactions), records committed
        # through them, and commit wall time.  Parallelism counters stay
        # zero on single-substrate backends; the sharded backend bumps
        # them.
        self._group_commits = 0
        self._batch_records = 0
        self._commit_ms_total = 0.0
        self._commit_ms_max = 0.0
        self._parallel_scans = 0
        self._parallel_probes = 0

    def _note_group_commit(self, records: int, elapsed_ms: float) -> None:
        """Account one batched commit (``put_batch``) in the storage block."""
        self._group_commits += 1
        self._batch_records += records
        self._commit_ms_total += elapsed_ms
        if elapsed_ms > self._commit_ms_max:
            self._commit_ms_max = elapsed_ms

    # -- provenance records ---------------------------------------------------
    @abstractmethod
    def put_record(self, record: ProvenanceRecord) -> None:
        """Persist a provenance record, keyed by its PName."""

    @abstractmethod
    def get_record(self, pname: PName) -> Optional[ProvenanceRecord]:
        """Fetch a provenance record, or ``None`` when absent."""

    @abstractmethod
    def has_record(self, pname: PName) -> bool:
        """True when a record with this PName is stored."""

    def get_records(self, pnames: "List[PName]") -> "List[Tuple[PName, ProvenanceRecord]]":
        """Fetch several records, preserving input order; missing PNames are skipped.

        The planner's executor feeds index-served candidate sets through
        here.  The default loops :meth:`get_record`; backends with a
        cheaper bulk read (one statement instead of one per record)
        override it.
        """
        result: List[Tuple[PName, ProvenanceRecord]] = []
        for pname in pnames:
            record = self.get_record(pname)
            if record is not None:
                result.append((pname, record))
        return result

    @abstractmethod
    def iter_records(self) -> Iterator[Tuple[PName, ProvenanceRecord]]:
        """Iterate over every stored ``(PName, record)`` pair."""

    def scan_all(self) -> "List[Tuple[PName, ProvenanceRecord]]":
        """Materialize every stored pair (the executor's full-scan path).

        The default just drains :meth:`iter_records`; partitioned
        backends override it to fan the scan across shards concurrently.
        Callers must not rely on any particular ordering -- single-file
        backends yield insertion order, the sharded backend digest order.
        """
        return list(self.iter_records())

    @abstractmethod
    def record_count(self) -> int:
        """Number of stored provenance records."""

    def shard_count(self) -> int:
        """How many independent partitions back this store (1 = unsharded)."""
        return 1

    def put_batch(self, entries: "List[Tuple[ProvenanceRecord, Optional[bytes]]]") -> None:
        """Persist several ``(record, payload)`` pairs as one batch.

        ``payload`` may be ``None`` for metadata-only records.  The
        default loops; durable backends override it to commit the whole
        batch in a single transaction, which is what makes the façade's
        ``publish_many`` cheaper per tuple set than looped publishes.

        The batch is atomic with respect to *invalid input*: every
        payload is type-checked before anything is written, so a bad
        entry rejects the whole batch and leaves no partial state --
        identical visible behaviour to the transactional backends.
        """
        entries = list(entries)
        validate_batch_payloads(entries)
        started = time.perf_counter()
        for record, payload in entries:
            self.put_record(record)
            if payload is not None:
                self.put_payload(record.pname(), payload)
        self._note_group_commit(len(entries), (time.perf_counter() - started) * 1000.0)

    # -- payloads (the readings themselves) ----------------------------------
    @abstractmethod
    def put_payload(self, pname: PName, payload: bytes) -> None:
        """Persist the serialised readings of a tuple set."""

    @abstractmethod
    def get_payload(self, pname: PName) -> Optional[bytes]:
        """Fetch a tuple set's serialised readings, or ``None``."""

    @abstractmethod
    def delete_payload(self, pname: PName) -> bool:
        """Remove a payload (the *data*, never the provenance).

        Returns True when something was deleted.  Used to exercise PASS
        property P4: deleting data must not delete provenance.
        """

    # -- auxiliary index snapshots -------------------------------------------
    def put_index_blob(self, name: str, payload: bytes) -> bool:
        """Persist an auxiliary index snapshot under ``name``.

        Used by the :mod:`repro.lineage` reachability index so reopening
        a durable store does not re-derive its labelling.  Returns True
        when the blob was actually stored; the default (no blob storage)
        returns False so callers know persistence did not happen.
        """
        return False

    def get_index_blob(self, name: str) -> Optional[bytes]:
        """Fetch a previously stored index snapshot, or ``None``."""
        return None

    def delete_index_blob(self, name: str) -> bool:
        """Drop a stored index snapshot; True when something was deleted."""
        return False

    # -- removal markers -------------------------------------------------------
    @abstractmethod
    def mark_removed(self, pname: PName) -> None:
        """Remember that the data named by ``pname`` was removed."""

    @abstractmethod
    def is_removed(self, pname: PName) -> bool:
        """True when the data named by ``pname`` was removed."""

    @abstractmethod
    def removed_pnames(self) -> List[PName]:
        """All PNames whose data was removed."""

    # -- the stats()["storage"] block -----------------------------------------
    def storage_stats(self) -> dict:
        """The frozen ``stats()["storage"]`` block (see docs/STORAGE.md).

        Same keys on every backend -- unsharded stores report
        ``shards: 1`` and zero parallelism -- so dashboards can key on
        the block unconditionally (golden-key suite enforced).
        """
        return {
            "kind": self.storage_kind,
            "shards": self.shard_count(),
            "records": self.record_count(),
            "group_commits": self._group_commits,
            "batch_records": self._batch_records,
            "commit_ms": {
                "total": round(self._commit_ms_total, 3),
                "max": round(self._commit_ms_max, 3),
            },
            "parallel_scans": self._parallel_scans,
            "parallel_probes": self._parallel_probes,
            "per_shard": self._per_shard_storage(),
        }

    def _per_shard_storage(self) -> "List[dict]":
        """One entry per shard; the single-substrate default is shard 0."""
        return [
            {
                "shard": 0,
                "records": self.record_count(),
                "group_commits": self._group_commits,
            }
        ]

    # -- lifecycle ---------------------------------------------------------------
    def flush(self) -> None:
        """Force durability (no-op for volatile backends)."""

    def close(self) -> None:
        """Release resources; further use raises ``StorageError``."""
