"""Digest-partitioned storage: N independent shards behind one backend.

The single-file SQLite backend serializes every write and scan on one
connection; at the paper's city-scale ingest rates that one lock is the
bottleneck long before the query layers are.  :class:`ShardedBackend`
splits the keyspace by PName digest across N per-shard backends -- each
SQLite shard with its own file, WAL and connection -- so batched writes
commit per shard on a thread pool (group commit: one transaction and one
fsync per shard per batch) and full scans / bulk probes fan out across
shards concurrently.  SQLite releases the GIL inside its C calls, so the
per-shard commits and fetches genuinely overlap on a multi-core box.

Partitioning must be *stable*: shard assignment uses the leading 32 bits
of the PName's SHA-256 hex digest (:func:`shard_of_digest`), never
Python's per-process-salted ``hash()``, so the same record lands on the
same shard in every interpreter run.  The shard count is written into a
manifest blob on shard 0 at creation time; reopening with a different
count raises :class:`~repro.errors.StorageError` instead of silently
scattering new records under a different partitioning.

Non-digest state is homed deterministically: auxiliary index blobs
(including the closure labelling's boundary index, see
:mod:`repro.lineage.partition`) live on shard 0 through the ordinary
``put_index_blob`` API, while :meth:`ShardedBackend.put_shard_index_blob`
addresses one shard's blob store explicitly for per-shard closure
snapshots.

See ``docs/STORAGE.md`` for the sharding scheme, group-commit semantics
and guidance on choosing ``shards=N``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import StorageError
from repro.storage.backend import StorageBackend, StorageStats, validate_batch_payloads
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend

__all__ = ["ShardedBackend", "shard_of_digest", "shard_file_name"]

#: reserved blob name carrying {"format", "shards"} on shard 0
MANIFEST_BLOB = "__shard_manifest__"
#: bump when the manifest layout changes
_MANIFEST_FORMAT = 1
#: sanity bound: more shards than this is a configuration mistake
MAX_SHARDS = 1024


def shard_of_digest(digest: str, shards: int) -> int:
    """The shard owning ``digest`` (a 64-char SHA-256 hex PName digest).

    Salt-independent by construction -- the digest's leading 32 bits mod
    the shard count -- so assignment is identical across processes,
    interpreter runs and hosts.
    """
    return int(digest[:8], 16) % shards


def shard_file_name(path: str, shard: int) -> str:
    """The per-shard database file for base ``path`` (``<path>.shardNN``)."""
    return f"{path}.shard{shard:02d}"


class _AggregateStats(StorageStats):
    """``backend.stats`` for the sharded store: the sum over all shards.

    Operation counters live where the operations run (on the per-shard
    backends); this view folds them together so the ``stats()["backend"]``
    block keeps its schema whatever the shard count.
    """

    def __init__(self, shards: Sequence[StorageBackend]) -> None:
        super().__init__()
        self._backends = shards

    def snapshot(self) -> dict:
        totals = super().snapshot()
        for backend in self._backends:
            for key, value in backend.stats.snapshot().items():
                totals[key] += value
        return totals


class ShardedBackend(StorageBackend):
    """N digest-partitioned backends behind the one ``StorageBackend`` ABC.

    Parameters
    ----------
    path:
        Base database path; shard ``i`` lives at ``<path>.shardNN``.
        ``None`` / ``":memory:"`` builds private in-memory shards (SQL
        behaviour without disk -- what ``sqlite://?shards=N`` gives you).
    shards:
        Partition count, fixed at creation time and persisted in the
        shard-0 manifest; reopening with a different count raises
        :class:`StorageError`.
    kind:
        Per-shard substrate: ``"sqlite"`` (default) or ``"memory"``.
    max_workers:
        Thread-pool width for group commits and parallel scans
        (default: ``min(shards, cpu_count)``, at least 2).
    """

    storage_kind = "sharded"

    def __init__(
        self,
        path: Optional[str] = None,
        shards: int = 4,
        kind: str = "sqlite",
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 1 <= shards <= MAX_SHARDS:
            raise StorageError(f"shard count must be in 1..{MAX_SHARDS}, got {shards}")
        if kind not in ("sqlite", "memory"):
            raise StorageError(f"unknown shard substrate {kind!r} (sqlite or memory)")
        self._path = None if path in (None, ":memory:") else str(path)
        if self._path is not None and kind == "memory":
            raise StorageError("memory shards take no path")
        self._shard_total = shards
        self._closed = False
        self._locks = [threading.Lock() for _ in range(shards)]
        if max_workers is None:
            max_workers = min(shards, max(2, os.cpu_count() or 1))
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, max_workers), thread_name_prefix="repro-shard"
        )
        self._shards: List[StorageBackend] = self._open_shards(kind)
        self._adopt_or_write_manifest()
        # Infrastructure writes (the manifest) must not show up in the
        # user-facing operation counters.
        for shard in self._shards:
            shard.stats = StorageStats()
        self.stats = _AggregateStats(self._shards)

    # ------------------------------------------------------------------
    # Construction / manifest
    # ------------------------------------------------------------------
    def _open_shards(self, kind: str) -> List[StorageBackend]:
        if self._path is None:
            if kind == "memory":
                return [MemoryBackend() for _ in range(self._shard_total)]
            return [SQLiteBackend(":memory:") for _ in range(self._shard_total)]
        base = Path(self._path)
        existing = sorted(p.name for p in base.parent.glob(base.name + ".shard*"))
        if existing:
            # A sharded base already lives here: shard 0 (and its
            # manifest) must be present before anything is created.
            if Path(shard_file_name(self._path, 0)).name not in existing:
                self._pool.shutdown(wait=False)
                raise StorageError(
                    f"sharded database at {self._path!r} is missing shard 00 "
                    f"(found {existing}); refusing to open"
                )
        return [
            SQLiteBackend(shard_file_name(self._path, index))
            for index in range(self._shard_total)
        ]

    def _adopt_or_write_manifest(self) -> None:
        shard0 = self._shards[0]
        blob = shard0.get_index_blob(MANIFEST_BLOB)
        if blob is None:
            if self._path is not None and shard0.record_count() > 0:
                self._teardown_shards()
                raise StorageError(
                    f"shard 00 of {self._path!r} holds records but no shard "
                    "manifest; the database is corrupt or was not created by "
                    "ShardedBackend"
                )
            manifest = {"format": _MANIFEST_FORMAT, "shards": self._shard_total}
            shard0.put_index_blob(
                MANIFEST_BLOB, json.dumps(manifest, sort_keys=True).encode("utf-8")
            )
            return
        try:
            manifest = json.loads(blob.decode("utf-8"))
            recorded = int(manifest["shards"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._teardown_shards()
            raise StorageError(
                f"unreadable shard manifest on {self._path!r}; refusing to guess "
                "a partitioning"
            ) from None
        if recorded != self._shard_total:
            self._teardown_shards()
            raise StorageError(
                f"database at {self._path!r} was created with shards={recorded} "
                f"but opened with shards={self._shard_total}; shard count is "
                "fixed at creation time (re-open with the original count)"
            )

    def _teardown_shards(self) -> None:
        for shard in self._shards:
            try:
                shard.close()
            except StorageError:
                pass
        self._pool.shutdown(wait=False)
        self._closed = True

    # ------------------------------------------------------------------
    # Partitioning / fan-out plumbing
    # ------------------------------------------------------------------
    def shard_of(self, digest: str) -> int:
        """Which shard owns ``digest`` under this backend's partitioning."""
        return shard_of_digest(digest, self._shard_total)

    def shard_count(self) -> int:
        return self._shard_total

    @property
    def shard_backends(self) -> Tuple[StorageBackend, ...]:
        """The per-shard backends, in shard order (tests and tooling)."""
        return tuple(self._shards)

    def _shard_for(self, pname: PName) -> StorageBackend:
        return self._shards[self.shard_of(pname.digest)]

    def _map_shards(self, fn, shard_ids: Sequence[int]) -> Dict[int, object]:
        """Run ``fn(shard_id)`` for each id, on the pool when it fans out."""
        shard_ids = list(shard_ids)
        if len(shard_ids) <= 1:
            return {index: fn(index) for index in shard_ids}
        futures = {index: self._pool.submit(fn, index) for index in shard_ids}
        return {index: future.result() for index, future in futures.items()}

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("sharded backend has been closed")

    # ------------------------------------------------------------------
    # Provenance records
    # ------------------------------------------------------------------
    def put_record(self, record: ProvenanceRecord) -> None:
        self._check_open()
        index = self.shard_of(record.pname().digest)
        with self._locks[index]:
            self._shards[index].put_record(record)

    def get_record(self, pname: PName) -> Optional[ProvenanceRecord]:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            return self._shards[index].get_record(pname)

    def has_record(self, pname: PName) -> bool:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            return self._shards[index].has_record(pname)

    def get_records(self, pnames):
        """Bulk fetch fanned across shards; input order is preserved."""
        self._check_open()
        pnames = list(pnames)
        split: Dict[int, List[PName]] = {}
        for pname in pnames:
            split.setdefault(self.shard_of(pname.digest), []).append(pname)
        if len(split) > 1:
            self._parallel_probes += 1

        def fetch(index: int):
            with self._locks[index]:
                return self._shards[index].get_records(split[index])

        chunks = self._map_shards(fetch, sorted(split))
        found = {
            pname.digest: (pname, record)
            for chunk in chunks.values()
            for pname, record in chunk
        }
        return [found[pname.digest] for pname in pnames if pname.digest in found]

    def iter_records(self) -> Iterator[Tuple[PName, ProvenanceRecord]]:
        self._check_open()
        for index in range(self._shard_total):
            with self._locks[index]:
                chunk = list(self._shards[index].iter_records())
            yield from chunk

    def scan_all(self) -> List[Tuple[PName, ProvenanceRecord]]:
        """Parallel full scan: every shard drained concurrently, merged in
        digest order so the answer is deterministic across shard counts."""
        self._check_open()
        self._parallel_scans += 1

        def scan(index: int):
            with self._locks[index]:
                return list(self._shards[index].iter_records())

        chunks = self._map_shards(scan, range(self._shard_total))
        merged = [pair for index in sorted(chunks) for pair in chunks[index]]
        merged.sort(key=lambda pair: pair[0].digest)
        return merged

    def record_count(self) -> int:
        self._check_open()
        return sum(shard.record_count() for shard in self._shards)

    def put_batch(self, entries) -> None:
        """Group commit: the batch splits by shard and each shard's slice
        commits as one transaction, concurrently across shards.

        The whole batch is validated up front, so a bad entry rejects it
        with no partial state on any shard.  Atomicity is per shard (one
        transaction each); a crash can lose whole shard slices, never a
        prefix of one -- the same guarantee the WAL replay path restores.
        """
        self._check_open()
        entries = list(entries)
        validate_batch_payloads(entries)
        split: Dict[int, list] = {}
        for record, payload in entries:
            index = self.shard_of(record.pname().digest)
            split.setdefault(index, []).append((record, payload))
        started = time.perf_counter()

        def commit(index: int) -> None:
            with self._locks[index]:
                self._shards[index].put_batch(split[index])

        self._map_shards(commit, sorted(split))
        self._note_group_commit(len(entries), (time.perf_counter() - started) * 1000.0)

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    def put_payload(self, pname: PName, payload: bytes) -> None:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            self._shards[index].put_payload(pname, payload)

    def get_payload(self, pname: PName) -> Optional[bytes]:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            return self._shards[index].get_payload(pname)

    def delete_payload(self, pname: PName) -> bool:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            return self._shards[index].delete_payload(pname)

    # ------------------------------------------------------------------
    # Auxiliary index snapshots
    # ------------------------------------------------------------------
    def put_index_blob(self, name: str, payload: bytes) -> bool:
        """Store-wide blobs (closure boundary index, ...) home on shard 0."""
        self._check_open()
        with self._locks[0]:
            return self._shards[0].put_index_blob(name, payload)

    def get_index_blob(self, name: str) -> Optional[bytes]:
        self._check_open()
        with self._locks[0]:
            return self._shards[0].get_index_blob(name)

    def delete_index_blob(self, name: str) -> bool:
        self._check_open()
        with self._locks[0]:
            return self._shards[0].delete_index_blob(name)

    def put_shard_index_blob(self, shard: int, name: str, payload: bytes) -> bool:
        """Persist a blob in one shard's own blob store (per-shard closure
        labels live next to the records they describe)."""
        self._check_open()
        with self._locks[shard]:
            return self._shards[shard].put_index_blob(name, payload)

    def get_shard_index_blob(self, shard: int, name: str) -> Optional[bytes]:
        self._check_open()
        with self._locks[shard]:
            return self._shards[shard].get_index_blob(name)

    def delete_shard_index_blob(self, shard: int, name: str) -> bool:
        self._check_open()
        with self._locks[shard]:
            return self._shards[shard].delete_index_blob(name)

    # ------------------------------------------------------------------
    # Removal markers
    # ------------------------------------------------------------------
    def mark_removed(self, pname: PName) -> None:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            self._shards[index].mark_removed(pname)

    def is_removed(self, pname: PName) -> bool:
        self._check_open()
        index = self.shard_of(pname.digest)
        with self._locks[index]:
            return self._shards[index].is_removed(pname)

    def removed_pnames(self) -> List[PName]:
        self._check_open()
        merged: List[PName] = []
        for index in range(self._shard_total):
            with self._locks[index]:
                merged.extend(self._shards[index].removed_pnames())
        merged.sort(key=lambda pname: pname.digest)
        return merged

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _per_shard_storage(self) -> List[dict]:
        return [
            {
                "shard": index,
                "records": shard.record_count(),
                "group_commits": shard._group_commits,
            }
            for index, shard in enumerate(self._shards)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._closed:
            return
        for index in range(self._shard_total):
            with self._locks[index]:
                self._shards[index].flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.close()
            except StorageError:
                pass
        self._pool.shutdown(wait=True)
