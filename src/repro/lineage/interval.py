"""The interval/chain reachability index: scalable transitive closure.

The three :mod:`repro.core.closure` strategies trade one extreme for
another: ``naive`` re-walks the DAG per query, ``labelled`` materializes
full per-node ancestor/descendant *sets* -- O(V^2) memory on deep
lineage, which is what capped the store far below the millions-of-records
goal.  Production provenance stores (cf. the Software Heritage
provenance index) compress reachability instead; this module implements
that idea as a fourth :class:`~repro.core.closure.ClosureStrategy`.

Design
------
The DAG is decomposed into **chains**: paths ``c[0] -> c[1] -> ...``
where each ``c[i+1]`` is a direct child of ``c[i]`` (positions increase
downstream).  Every node then carries two compressed label maps:

* ``down[v][chain] = p`` -- the smallest position in ``chain`` occupied
  by a descendant-or-self of ``v``.  Because a chain is a real path,
  *everything at position >= p* in that chain is also reachable, so the
  descendant set of ``v`` is exactly the union of chain suffixes --
  enumeration is output-sensitive, and membership (``is_ancestor``) is
  one dict probe.
* ``up[v][chain] = p`` -- symmetric: the largest position occupied by an
  ancestor-or-self, making the ancestor set a union of chain prefixes.

Memory is O(V * k) worst case (k = number of chains) but the maps are
sparse: a node only carries entries for chains its closure touches.

Maintenance is **lazy**: edge insertions append to a dirty set; the
first query after a batch either merges the dirty edges incrementally
(min/max label propagation along the affected region) or, when the
batch is large relative to the graph, rebuilds the decomposition
outright.  Labels only tighten during incremental merges, so the
worklist converges and the ``operations`` counter stays monotone.

The index is also **persistable**: :meth:`snapshot` emits the chains and
labels together with the graph's structural fingerprint, and
:meth:`restore` refuses anything that does not match byte-for-byte --
the versioned rebuild fallback the SQLite backend relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.closure import ClosureStrategy, register_strategy
from repro.core.graph import ProvenanceGraph
from repro.core.provenance import PName
from repro.errors import UnknownEntityError

__all__ = ["IntervalClosure"]

#: bump when the snapshot layout changes; restore() refuses other versions
_SNAPSHOT_FORMAT = 1
#: dirty batches beyond this fraction of the graph trigger a full rebuild
_REBUILD_FRACTION = 0.25
#: ... but never rebuild for batches smaller than this (churny ingest)
_REBUILD_MIN_BATCH = 512


@register_strategy
class IntervalClosure(ClosureStrategy):
    """Chain-decomposition reachability labelling with lazy maintenance."""

    name = "interval"
    fast_reachability = True

    def __init__(self, graph: Optional[ProvenanceGraph] = None) -> None:
        super().__init__(graph)
        #: digest -> (chain id, position within the chain)
        self._chain_of: Dict[str, Tuple[int, int]] = {}
        #: chain id -> node digests in upstream-to-downstream order
        self._chains: List[List[str]] = []
        #: digest -> {chain id: min position reachable downstream (incl. self)}
        self._down: Dict[str, Dict[int, int]] = {}
        #: digest -> {chain id: max position reachable upstream (incl. self)}
        self._up: Dict[str, Dict[int, int]] = {}
        #: edges inserted since the labels were last made current
        self._dirty: List[Tuple[str, str]] = []
        self._built = False
        self.rebuilds = 0
        self.incremental_merges = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _on_edge(self, child: PName, parent: PName) -> None:
        self._dirty.append((child.digest, parent.digest))

    def rebuild(self) -> None:
        """Force a full recompute of chains and interval labels now."""
        self._rebuild()

    def _ensure_current(self) -> None:
        """Bring the labelling up to date with the graph (lazily)."""
        if self._built and not self._dirty:
            return
        threshold = max(_REBUILD_MIN_BATCH, int(_REBUILD_FRACTION * max(1, len(self.graph))))
        if not self._built or len(self._dirty) > threshold:
            self._rebuild()
        else:
            self._apply_dirty()

    def _rebuild(self) -> None:
        """Recompute chains and labels from scratch in O(V + E + labels)."""
        graph = self.graph
        order = [pname.digest for pname in graph.topological_order()]
        self._chain_of = {}
        self._chains = []
        for digest in order:
            self._assign_chain(digest)
        self._down = {}
        for digest in reversed(order):
            label = dict((self._chain_of[digest],))  # {own chain: own position}
            for child in graph.children_of(digest):
                self._merge_min(label, self._down[child])
            self._down[digest] = label
        self._up = {}
        for digest in order:
            label = dict((self._chain_of[digest],))
            for parent in graph.parents_of(digest):
                self._merge_max(label, self._up[parent])
            self._up[digest] = label
        self._dirty.clear()
        self._built = True
        self.rebuilds += 1

    def _assign_chain(self, digest: str) -> None:
        """Append ``digest`` to a chain whose tail is one of its parents, else open one."""
        for parent in sorted(self.graph.parents_of(digest)):
            assignment = self._chain_of.get(parent)
            if assignment is None:
                continue
            chain_id, position = assignment
            if position == len(self._chains[chain_id]) - 1:
                self._chains[chain_id].append(digest)
                self._chain_of[digest] = (chain_id, position + 1)
                self.operations += 1
                return
        chain_id = len(self._chains)
        self._chains.append([digest])
        self._chain_of[digest] = (chain_id, 0)
        self.operations += 1

    def _apply_dirty(self) -> None:
        """Fold a small batch of new edges into the existing labelling."""
        edges, self._dirty = self._dirty, []
        # 1. Chain positions for endpoints the decomposition has not seen,
        #    assigned parents-before-children (Kahn over the new subgraph).
        fresh = {d for edge in edges for d in edge if d not in self._chain_of}
        if fresh:
            in_degree = {
                digest: sum(1 for parent in self.graph.parents_of(digest) if parent in fresh)
                for digest in fresh
            }
            queue = deque(sorted(d for d, degree in in_degree.items() if degree == 0))
            while queue:
                digest = queue.popleft()
                self._assign_chain(digest)
                self._down[digest] = dict((self._chain_of[digest],))
                self._up[digest] = dict((self._chain_of[digest],))
                for child in sorted(self.graph.children_of(digest)):
                    if child in in_degree:
                        in_degree[child] -= 1
                        if in_degree[child] == 0:
                            queue.append(child)
        # 2. Label propagation: each edge child->parent lets the parent (and
        #    its up-set) reach what the child reaches, and the child (and its
        #    down-set) inherit the parent's ancestry.  Labels only tighten,
        #    so the worklists converge.
        for child, parent in edges:
            self.incremental_merges += 1
            self._propagate(parent, self._down[child], self._down, up=True)
            self._propagate(child, self._up[parent], self._up, up=False)

    def _propagate(
        self,
        start: str,
        source: Dict[int, int],
        labels: Dict[str, Dict[int, int]],
        up: bool,
    ) -> None:
        merge = self._merge_min if up else self._merge_max
        step = self.graph.parents_of if up else self.graph.children_of
        if not merge(labels[start], source):
            return
        work = deque([start])
        while work:
            digest = work.popleft()
            current = labels[digest]
            for neighbour in step(digest):
                if merge(labels[neighbour], current):
                    work.append(neighbour)

    def _merge_min(self, target: Dict[int, int], source: Dict[int, int]) -> bool:
        changed = False
        for chain, position in source.items():
            known = target.get(chain)
            if known is None or position < known:
                target[chain] = position
                changed = True
        self.operations += len(source)
        return changed

    def _merge_max(self, target: Dict[int, int], source: Dict[int, int]) -> bool:
        changed = False
        for chain, position in source.items():
            known = target.get(chain)
            if known is None or position > known:
                target[chain] = position
                changed = True
        self.operations += len(source)
        return changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ancestors(self, pname: PName) -> Set[PName]:
        self._require(pname)
        self._ensure_current()
        self.operations += 1
        labels = self._up.get(pname.digest)
        if not labels:
            return set()
        found: Set[PName] = set()
        for chain, last in labels.items():
            members = self._chains[chain]
            for digest in members[: last + 1]:
                if digest != pname.digest:
                    found.add(PName(digest))
        self.operations += len(found)
        return found

    def descendants(self, pname: PName) -> Set[PName]:
        self._require(pname)
        self._ensure_current()
        self.operations += 1
        labels = self._down.get(pname.digest)
        if not labels:
            return set()
        found: Set[PName] = set()
        for chain, first in labels.items():
            for digest in self._chains[chain][first:]:
                if digest != pname.digest:
                    found.add(PName(digest))
        self.operations += len(found)
        return found

    def reachable(self, ancestor: PName, descendant: PName) -> bool:
        if ancestor not in self.graph or descendant not in self.graph:
            raise UnknownEntityError("unknown node in reachability query")
        if ancestor.digest == descendant.digest:
            return False
        self._ensure_current()
        self.operations += 1
        target = self._chain_of.get(descendant.digest)
        labels = self._down.get(ancestor.digest)
        if target is None or labels is None:
            return False
        chain, position = target
        first = labels.get(chain)
        return first is not None and first <= position

    # ------------------------------------------------------------------
    # Planner estimates (exact, O(labels) each)
    # ------------------------------------------------------------------
    def estimate_ancestors(self, pname: PName) -> Optional[int]:
        if pname not in self.graph:
            return 0
        self._ensure_current()
        labels = self._up.get(pname.digest)
        if not labels:
            return 0
        return sum(last + 1 for last in labels.values()) - 1  # minus self

    def estimate_descendants(self, pname: PName) -> Optional[int]:
        if pname not in self.graph:
            return 0
        self._ensure_current()
        labels = self._down.get(pname.digest)
        if not labels:
            return 0
        return sum(len(self._chains[chain]) - first for chain, first in labels.items()) - 1

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self, fingerprint: Dict[str, int]) -> Optional[dict]:
        if not self._built:
            # Nothing has forced a labelling yet (no lineage query ran);
            # persisting would mean building one just to write it out.
            # The next open rebuilds lazily anyway -- skip.
            return None
        self._ensure_current()
        return {
            "format": _SNAPSHOT_FORMAT,
            "strategy": self.name,
            "fingerprint": dict(fingerprint),
            "chains": [list(chain) for chain in self._chains],
            # JSON objects key on strings; labels travel as [chain, pos] pairs
            "down": {d: sorted(label.items()) for d, label in self._down.items()},
            "up": {d: sorted(label.items()) for d, label in self._up.items()},
        }

    def restore(self, state: dict, fingerprint: Dict[str, int]) -> bool:
        try:
            if state.get("format") != _SNAPSHOT_FORMAT or state.get("strategy") != self.name:
                return False
            if dict(state["fingerprint"]) != dict(fingerprint):
                return False
            chains = [list(chain) for chain in state["chains"]]
            down = {
                digest: {int(chain): int(pos) for chain, pos in pairs}
                for digest, pairs in state["down"].items()
            }
            up = {
                digest: {int(chain): int(pos) for chain, pos in pairs}
                for digest, pairs in state["up"].items()
            }
        except (KeyError, TypeError, ValueError):
            return False
        self._chains = chains
        self._chain_of = {
            digest: (chain_id, position)
            for chain_id, chain in enumerate(chains)
            for position, digest in enumerate(chain)
        }
        self._down = down
        self._up = up
        self._dirty.clear()
        self._built = True
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def index_stats(self) -> dict:
        facts = super().index_stats()
        facts.update(
            {
                "built": self._built,
                "chains": len(self._chains),
                "label_entries": sum(len(v) for v in self._down.values())
                + sum(len(v) for v in self._up.values()),
                "dirty_edges": len(self._dirty),
                "rebuilds": self.rebuilds,
                "incremental_merges": self.incremental_merges,
            }
        )
        return facts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, pname: PName) -> None:
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown node {pname}")
