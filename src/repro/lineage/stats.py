"""Ingest-maintained statistics over the provenance DAG.

The cost-based planner can only choose a lineage access path over a
full scan if it can *price* one without running it.  Chain-walking the
graph at plan time would defeat the point, so the store feeds this
collector one :meth:`observe` call per ingested record and every
estimate is a counter read:

* node / edge counts and the mean derivation fan-in,
* a **depth histogram** (how many records sit at each derivation
  depth), maintained incrementally -- a record's depth is one more than
  the deepest of its ancestors,
* the expected closure size a lineage probe should plan for.

The depth of a record is fixed at ingest from what is known *then*;
out-of-order ingest (a child arriving before its ancestor's own record)
can understate depths.  That is acceptable by construction: statistics
feed estimates, and estimates affect cost, never correctness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.provenance import PName

__all__ = ["GraphStatistics"]


class GraphStatistics:
    """Cheap per-store facts about the shape of the provenance DAG."""

    def __init__(self) -> None:
        self.nodes = 0
        self.edges = 0
        self.max_depth = 0
        self.max_fan_in = 0
        #: derivation depth -> number of records at that depth
        self.depth_histogram: Dict[int, int] = {}
        self._depth_of: Dict[str, int] = {}
        self._depth_total = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def observe(self, pname: PName, ancestors: Iterable[PName]) -> None:
        """Fold one freshly ingested record into the counters."""
        ancestor_list = list(ancestors)
        depth = 0
        for ancestor in ancestor_list:
            known = self._ensure_node(ancestor.digest)
            depth = max(depth, known + 1)
        self.edges += len(ancestor_list)
        self.max_fan_in = max(self.max_fan_in, len(ancestor_list))
        previous = self._depth_of.get(pname.digest)
        if previous is None:
            self.nodes += 1
        elif depth > previous:
            # The node was first seen as a bare ancestor reference (depth
            # 0); its own record tells us its real derivation depth.
            self.depth_histogram[previous] -= 1
            if not self.depth_histogram[previous]:
                del self.depth_histogram[previous]
            self._depth_total -= previous
        else:
            return
        self._depth_of[pname.digest] = depth
        self.depth_histogram[depth] = self.depth_histogram.get(depth, 0) + 1
        self._depth_total += depth
        self.max_depth = max(self.max_depth, depth)

    def recompute(self, graph) -> None:
        """Recompute every counter from the live graph (scheduled refresh).

        The incremental path fixes a record's depth at ingest time, so
        out-of-order ingest (child before ancestor) understates depths
        forever.  The feedback loop periodically calls this with the
        store's :class:`~repro.core.graph.ProvenanceGraph`: one memoized
        longest-path pass over ``parents_of`` (the graph is acyclic by
        construction) rebuilds the histogram with *true* depths.
        """
        depth_of: Dict[str, int] = {}
        for digest in graph.node_digests():
            if digest in depth_of:
                continue
            stack = [digest]
            while stack:
                current = stack[-1]
                if current in depth_of:
                    stack.pop()
                    continue
                parents = graph.parents_of(current)
                pending = [p for p in parents if p not in depth_of]
                if pending:
                    stack.extend(pending)
                    continue
                depth_of[current] = max(
                    (depth_of[p] + 1 for p in parents), default=0
                )
                stack.pop()
        histogram: Dict[int, int] = {}
        total = 0
        edges = 0
        fan_in = 0
        for digest, depth in depth_of.items():
            histogram[depth] = histogram.get(depth, 0) + 1
            total += depth
            parent_count = len(graph.parents_of(digest))
            edges += parent_count
            fan_in = max(fan_in, parent_count)
        self._depth_of = depth_of
        self.nodes = len(depth_of)
        self.edges = edges
        self.max_fan_in = fan_in
        self.depth_histogram = histogram
        self._depth_total = total
        self.max_depth = max(histogram, default=0)

    def _ensure_node(self, digest: str) -> int:
        """Register an implicitly referenced ancestor; return its known depth."""
        known = self._depth_of.get(digest)
        if known is not None:
            return known
        self.nodes += 1
        self._depth_of[digest] = 0
        self.depth_histogram[0] = self.depth_histogram.get(0, 0) + 1
        return 0

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def mean_depth(self) -> float:
        """Average derivation depth across all known nodes."""
        if not self.nodes:
            return 0.0
        return self._depth_total / self.nodes

    def mean_fan_in(self) -> float:
        """Average number of direct ancestors per node."""
        if not self.nodes:
            return 0.0
        return self.edges / self.nodes

    def depth_of(self, pname: PName) -> Optional[int]:
        """The ingest-time derivation depth of a known record, or ``None``."""
        return self._depth_of.get(pname.digest)

    def expected_reach(self) -> int:
        """Expected closure size of an average lineage probe.

        A node at depth ``d`` has at least ``d`` ancestors; with mean
        fan-in ``f`` the walked region widens by roughly that factor.
        The product is a deliberately rough but *cheap* estimate, capped
        at the node count (an estimate can never exceed the store).
        """
        if not self.nodes:
            return 0
        estimate = int(round(self.mean_depth() * max(1.0, self.mean_fan_in()))) + 1
        return min(self.nodes, estimate)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The collector as a plain dict (``client.stats()`` / CLI)."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "max_depth": self.max_depth,
            "max_fan_in": self.max_fan_in,
            "mean_depth": round(self.mean_depth(), 3),
            "mean_fan_in": round(self.mean_fan_in(), 3),
            "expected_reach": self.expected_reach(),
            "depth_histogram": dict(sorted(self.depth_histogram.items())),
        }
