"""Partitioned persistence of the interval labelling for sharded stores.

The single-blob checkpoint (``PassStore.persist_closure_index``) is
all-or-nothing: one fingerprint over the whole graph, so one shard's
worth of drift throws away every label.  On a digest-partitioned backend
(:class:`~repro.storage.sharded.ShardedBackend`) that is needlessly
coarse -- the swh-provenance flavor split applied here: keep the
*normalized* cross-shard structure small and shared, and spread the
*denormalized* per-node label maps across the shards that own them.

Layout
------
* **Per-shard label blobs** (shard ``i``'s own blob store): the
  ``down``/``up`` interval label entries of every digest homed on shard
  ``i``, stamped with that shard's structural CRC (XOR of per-node and
  per-edge CRCs over the records whose *child* digest lives there --
  the per-shard decomposition of
  :meth:`~repro.core.graph.ProvenanceGraph.fingerprint`).
* **The boundary index** (shard 0, via the store-wide blob API): the
  chain decomposition -- chains are the only structure reachability
  queries share across shards -- plus the shard-count, the global
  fingerprint and the per-shard CRC vector.

Reopen then adopts what it can:

* every shard CRC matches -- assemble the blobs and adopt the labelling
  wholesale (``mode: "full"``), no rebuild at all;
* some shards are stale but only by *additions* (provenance records are
  content-addressed and immutable, so a digest present at snapshot time
  can never have changed -- the snapshot's node set must be a subset of
  the live graph): adopt the old labelling and feed the new records'
  edges through the interval index's incremental dirty-merge, a
  shard-local catch-up instead of a global recompute
  (``mode: "partial"``);
* anything else -- record *loss*, unreadable blob, shard-count change --
  falls back to the strategy's own lazy rebuild (``mode: "rebuild"``).
  Old labels over missing records would assert reachability through
  data that no longer exists, so partial adoption is never attempted
  across loss.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, List

from repro.storage.sharded import shard_of_digest

__all__ = [
    "boundary_blob_name",
    "persist_partitioned",
    "restore_partitioned",
    "shard_blob_name",
    "shard_fingerprints",
]

#: bump when the partitioned layout changes; restore refuses other versions
_PARTITION_FORMAT = 1


def boundary_blob_name(closure_name: str) -> str:
    """The store-wide (shard 0) boundary-index blob for ``closure_name``."""
    return f"closure:{closure_name}:boundary"


def shard_blob_name(closure_name: str) -> str:
    """The per-shard label blob (same name in every shard's blob store)."""
    return f"closure:{closure_name}:labels"


def shard_fingerprints(graph, shards: int) -> List[int]:
    """Per-shard structural CRCs, partitioned by the child digest's shard.

    XOR-combining the vector reproduces ``graph.fingerprint()["crc"]``,
    so the per-shard stamps are exactly a decomposition of the global
    one: a shard whose records (and their ancestry edges) did not change
    keeps its CRC whatever happened elsewhere.
    """
    crcs = [0] * shards
    for pname in graph.nodes():
        digest = pname.digest
        index = shard_of_digest(digest, shards)
        crcs[index] ^= zlib.crc32(digest.encode("ascii"))
        for parent in graph.parents_of(digest):
            crcs[index] ^= zlib.crc32(f"{digest}->{parent}".encode("ascii"))
    return crcs


def _encode(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode(blob) -> dict:
    if blob is None:
        return {}
    try:
        document = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}
    return document if isinstance(document, dict) else {}


def persist_partitioned(store) -> bool:
    """Checkpoint ``store``'s closure labelling as per-shard blobs.

    Returns True when a snapshot was written.  Strategies that have
    nothing to persist (never built, non-snapshotting) make this a
    no-op, mirroring the single-blob path.
    """
    backend = store.backend
    shards = backend.shard_count()
    state = store.closure.snapshot(store.graph.fingerprint())
    if state is None:
        return False
    crcs = shard_fingerprints(store.graph, shards)
    name = store.closure.name
    per_shard: List[Dict[str, dict]] = [{"down": {}, "up": {}} for _ in range(shards)]
    for side in ("down", "up"):
        for digest, pairs in state[side].items():
            per_shard[shard_of_digest(digest, shards)][side][digest] = pairs
    for index in range(shards):
        backend.put_shard_index_blob(
            index,
            shard_blob_name(name),
            _encode(
                {
                    "format": _PARTITION_FORMAT,
                    "shard": index,
                    "crc": crcs[index],
                    "down": per_shard[index]["down"],
                    "up": per_shard[index]["up"],
                }
            ),
        )
    backend.put_index_blob(
        boundary_blob_name(name),
        _encode(
            {
                "format": _PARTITION_FORMAT,
                "snapshot_format": state["format"],
                "strategy": state["strategy"],
                "shards": shards,
                "fingerprint": state["fingerprint"],
                "shard_crcs": crcs,
                "chains": state["chains"],
            }
        ),
    )
    return True


def restore_partitioned(store) -> dict:
    """Adopt a partitioned checkpoint; returns the adoption report.

    The report is the ``closure_restore`` sub-block of
    ``stats()["storage"]``: ``mode`` (``full`` / ``partial`` /
    ``rebuild``), ``shards``, ``adopted`` (count of clean shards),
    ``stale`` (shard ids caught up incrementally) and ``reason`` (why a
    rebuild was chosen, else None).
    """
    backend = store.backend
    closure = store.closure
    shards = backend.shard_count()

    def rebuild(reason: str) -> dict:
        return {
            "mode": "rebuild",
            "shards": shards,
            "adopted": 0,
            "stale": [],
            "reason": reason,
        }

    boundary = _decode(backend.get_index_blob(boundary_blob_name(closure.name)))
    if not boundary:
        return rebuild("no boundary index")
    if (
        boundary.get("format") != _PARTITION_FORMAT
        or boundary.get("strategy") != closure.name
    ):
        return rebuild("boundary index has a different format or strategy")
    if boundary.get("shards") != shards:
        return rebuild(
            f"boundary index was written for shards={boundary.get('shards')}"
        )
    try:
        chains = [list(chain) for chain in boundary["chains"]]
        recorded_crcs = [int(crc) for crc in boundary["shard_crcs"]]
    except (KeyError, TypeError, ValueError):
        return rebuild("unreadable boundary index")
    if len(recorded_crcs) != shards:
        return rebuild("boundary CRC vector does not match the shard count")

    # Additions-only soundness check: every snapshot digest must still be
    # in the graph (chains cover every node the decomposition saw).
    snapshot_digests = {digest for chain in chains for digest in chain}
    graph_digests = {pname.digest for pname in store.graph.nodes()}
    if not snapshot_digests <= graph_digests:
        return rebuild("snapshot references records no longer present")

    current_crcs = shard_fingerprints(store.graph, shards)
    stale = [i for i in range(shards) if current_crcs[i] != recorded_crcs[i]]
    merged_down: Dict[str, list] = {}
    merged_up: Dict[str, list] = {}
    for index in range(shards):
        blob = _decode(backend.get_shard_index_blob(index, shard_blob_name(closure.name)))
        if blob.get("format") != _PARTITION_FORMAT or blob.get("shard") != index:
            return rebuild(f"shard {index} label blob missing or unreadable")
        if int(blob.get("crc", -1)) != recorded_crcs[index]:
            return rebuild(f"shard {index} label blob does not match the boundary index")
        try:
            merged_down.update(blob["down"])
            merged_up.update(blob["up"])
        except (KeyError, TypeError):
            return rebuild(f"shard {index} label blob missing or unreadable")

    state = {
        "format": boundary.get("snapshot_format"),
        "strategy": closure.name,
        "fingerprint": boundary.get("fingerprint"),
        "chains": chains,
        "down": merged_down,
        "up": merged_up,
    }
    # Validate the assembled snapshot against its own recorded fingerprint
    # (the CRC vector above already tied it to the live per-shard state).
    if not closure.restore(state, dict(boundary.get("fingerprint", {}))):
        return rebuild("assembled snapshot was refused by the strategy")

    if stale:
        # Shard-local catch-up: only edges incident to post-snapshot
        # digests are dirty; the interval index's incremental merge
        # relabels just the affected region on the next query.
        fresh = graph_digests - snapshot_digests
        for digest in fresh:
            for parent in store.graph.parents_of(digest):
                closure._dirty.append((digest, parent))
            for child in store.graph.children_of(digest):
                if child not in fresh:
                    closure._dirty.append((child, digest))
    return {
        "mode": "partial" if stale else "full",
        "shards": shards,
        "adopted": shards - len(stale),
        "stale": stale,
        "reason": None,
    }
