"""repro.lineage -- the scalable reachability (lineage) engine.

Section II-B of the paper: "the indexing structures in sensor data
storage systems must provide for ... efficient recursive or transitive
queries.  Simple relational or XML-based name-to-value schemes are not
sufficient."  This package is the engine that takes that requirement to
scale:

* :class:`~repro.lineage.interval.IntervalClosure` -- an interval/chain
  reachability index registered as the ``"interval"`` closure strategy
  (``connect("memory://?closure=interval")``): O(labels) membership,
  output-sensitive enumeration, O(V * k) memory instead of the labelled
  strategy's O(V^2) sets, maintained lazily from a dirty set and
  persistable through the storage backend.
* :class:`~repro.lineage.stats.GraphStatistics` -- ingest-maintained
  depth-histogram / fan-out statistics the cost-based planner prices
  lineage probes with.
* :mod:`~repro.lineage.partition` -- per-shard checkpointing of the
  interval labelling for digest-partitioned backends
  (``sqlite:///pass.db?shards=N``): shards whose records did not change
  adopt their labels on reopen, additions-only drift is caught up
  incrementally, and only loss forces a full rebuild.
* The planner-facing access paths
  :class:`~repro.query.paths.LineageAncestorsProbe` and
  :class:`~repro.query.paths.LineageDescendantsProbe` (re-exported here;
  they live with the other physical operators in
  :mod:`repro.query.paths`), which turn ``Q.derived_from(x)`` /
  ``Q.ancestor_of(x)`` from full scans with per-record reachability
  tests into one closure enumeration -- on the local stores and on
  every per-site store inside the distributed architecture models.

See ``docs/LINEAGE.md`` for the index design, its maintenance
invariants, and guidance on choosing a closure strategy.
"""

from repro.lineage.interval import IntervalClosure
from repro.lineage.partition import persist_partitioned, restore_partitioned
from repro.lineage.stats import GraphStatistics
from repro.query.paths import LineageAncestorsProbe, LineageDescendantsProbe

__all__ = [
    "GraphStatistics",
    "IntervalClosure",
    "LineageAncestorsProbe",
    "LineageDescendantsProbe",
    "persist_partitioned",
    "restore_partitioned",
]
