"""The cost-based query planner.

Given a :class:`~repro.core.query.Query`, the planner:

1. normalizes the predicate (:mod:`repro.query.normalize`),
2. extracts every *sargable* conjunct -- one the store's indexes can
   answer -- and builds a candidate access path for each
   (:mod:`repro.query.paths`),
3. estimates each candidate's cardinality from the store's
   :class:`~repro.query.statistics.Statistics` and index metadata,
4. picks the cheapest path, upgrading to an index intersection when a
   second conjunct is selective enough to pay for its probe,
5. caches the analysis keyed by the predicate's *shape* (structure and
   attribute names, constants stripped), so the paper's sliding-window
   workloads -- same query, moving constants -- skip straight to path
   construction.

The planner only chooses *candidate generation*; the executor always
evaluates the full predicate on the candidates, so a bad estimate can
cost time but never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.query import (
    TRUE,
    AncestorOf,
    And,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    NearLocation,
    Or,
    Predicate,
    Query,
    TimeWindowOverlaps,
)
from repro.query.normalize import normalize, shape_key
from repro.query.paths import (
    AccessPath,
    EqualityProbe,
    ExistsProbe,
    FullScanPath,
    IndexIntersection,
    IndexUnion,
    LineageAncestorsProbe,
    LineageDescendantsProbe,
    MultiProbe,
    RangeProbe,
    SpatialRadiusProbe,
    TemporalOverlapProbe,
)

__all__ = ["Plan", "QueryPlanner"]

#: Re-analyse a cached shape once the store has grown/shrunk this much.
_CACHE_STALENESS_FACTOR = 4.0
#: LRU bound on cached shapes (long-lived stores see unbounded shape
#: variety, e.g. AttributeIn arities; the cache must not grow with them).
_CACHE_MAX_SHAPES = 512
#: A second index probe joins an intersection only when it narrows to
#: at most this fraction of the store.
_INTERSECTION_SELECTIVITY = 0.5


@dataclass
class Plan:
    """The outcome of planning one query."""

    query: Query
    #: normalized predicate (the full, user-visible query condition)
    predicate: Predicate
    #: chosen candidate generator
    path: AccessPath
    #: value-free cache key of the predicate
    shape: str
    #: True when the shape's analysis came from the plan cache
    cache_hit: bool
    #: estimated candidate rows at plan time
    estimated_rows: int
    #: what the executor actually evaluates on candidates: the predicate
    #: minus conjuncts the chosen path answers *exactly* (lineage probes
    #: enumerate the closure; re-testing reachability per candidate
    #: would re-pay the walk).  Soundness: an exact conjunct holds for
    #: every candidate by construction.  Deliberately non-defaulted: a
    #: forgotten residual must be a TypeError, not a plan that filters
    #: nothing.
    residual: Predicate
    #: why the adaptive engine re-ranked this shape (None = nothing
    #: adapted); carried onto the execution's Explain verbatim
    adapted: Optional[str] = None


@dataclass
class _ShapeAnalysis:
    """What the cache remembers about one predicate shape.

    ``selection`` records *which strategy won*, by the shape keys of the
    chosen conjuncts -- ``("full",)``, ``("single", conjunct_shape)`` or
    ``("intersect", shape_a, shape_b)``.  Constants are rebound from the
    incoming predicate on every hit, so sliding-window workloads reuse
    the analysis without re-ranking every option.  Rebinding by shape is
    always *sound*: for a conjunction, any sargable conjunct (or
    intersection of conjuncts) is a complete candidate generator.
    """

    #: record count when the analysis was made (staleness guard)
    record_count: int
    selection: Tuple[str, ...]
    hits: int = 0


class QueryPlanner:
    """Plans queries for one :class:`~repro.core.pass_store.PassStore`."""

    def __init__(self, store) -> None:
        self._store = store
        self._cache: "OrderedDict[str, _ShapeAnalysis]" = OrderedDict()
        # Cumulative counters: per-entry hits die with their entry, so
        # the snapshot must not be a sum over live entries (LRU eviction
        # would silently deflate it).
        self._hits = 0
        self._evictions = 0
        self._drift_invalidations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(self, query: Query, force_full_scan: bool = False) -> Plan:
        """Choose an access path for ``query``."""
        predicate = normalize(query.predicate)
        shape = shape_key(predicate)
        if force_full_scan:
            path: AccessPath = FullScanPath()
            return Plan(
                query, predicate, path, shape, False, path.estimate(self._store), predicate
            )

        cached = self._cache.get(shape)
        adapted: Optional[str] = None
        if cached is not None:
            # The feedback loop may have marked this shape: its recent
            # executions misestimated badly enough that the cached
            # selection is suspect.  Evict and re-rank from scratch.
            feedback = getattr(self._store, "feedback", None)
            drift_reason = feedback.should_replan(shape) if feedback is not None else None
            if drift_reason is not None:
                del self._cache[shape]
                self._drift_invalidations += 1
                adapted = drift_reason
                cached = None
        if cached is not None and not self._stale(cached):
            rebuilt = self._rebuild(predicate, cached.selection)
            if rebuilt is not None:
                path, residual = rebuilt
                cached.hits += 1
                self._hits += 1
                self._cache.move_to_end(shape)
                return Plan(
                    query, predicate, path, shape, True, path.estimate(self._store), residual
                )

        path, selection, residual = self._choose_path(predicate)
        self._cache[shape] = _ShapeAnalysis(
            self._store.statistics.record_count, selection
        )
        self._cache.move_to_end(shape)
        while len(self._cache) > _CACHE_MAX_SHAPES:
            self._cache.popitem(last=False)
            self._evictions += 1
        return Plan(
            query,
            predicate,
            path,
            shape,
            False,
            path.estimate(self._store),
            residual,
            adapted=adapted,
        )

    def cache_snapshot(self) -> dict:
        """Plan-cache facts for ``client.stats()`` and tests.

        ``hits`` and ``evictions`` are cumulative over the planner's
        lifetime -- an LRU eviction (or a drift invalidation) must not
        erase the history of the entry it dropped.
        """
        return {
            "entries": len(self._cache),
            "hits": self._hits,
            "evictions": self._evictions,
            "drift_invalidations": self._drift_invalidations,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stale(self, cached: _ShapeAnalysis) -> bool:
        now = self._store.statistics.record_count
        then = max(1, cached.record_count)
        return now > then * _CACHE_STALENESS_FACTOR or now * _CACHE_STALENESS_FACTOR < then

    @staticmethod
    def _conjuncts_of(predicate: Predicate) -> Tuple[Predicate, ...]:
        if isinstance(predicate, And):
            return predicate.parts
        return (predicate,)

    def _choose_path(
        self, predicate: Predicate
    ) -> Tuple[AccessPath, Tuple[str, ...], Predicate]:
        """Full analysis: rank every sargable conjunct.

        Returns ``(path, selection, residual)`` where ``residual`` is the
        predicate the executor must still evaluate on candidates (exact
        conjuncts covered by the path are removed; see :class:`Plan`).
        """
        store = self._store
        record_count = store.statistics.record_count
        options: List[Tuple[AccessPath, str, Predicate]] = []
        for conjunct in self._conjuncts_of(predicate):
            path = self._sargable(conjunct)
            if path is not None:
                options.append((path, shape_key(conjunct), conjunct))
        if not options:
            return FullScanPath(), ("full",), predicate

        ranked = sorted(options, key=lambda item: item[0].estimate(store))
        best, best_shape, best_conjunct = ranked[0]
        if best.estimate(store) >= record_count and not best.exact:
            # The "index" would touch everything; scanning is cheaper
            # than probing plus fetching every record by name.  Exact
            # probes (lineage) are exempt: even an everything-sized
            # closure enumeration beats a scan that re-tests
            # reachability once per record -- so before giving up,
            # fall back to the cheapest exact option if there is one.
            exact_ranked = [option for option in ranked if option[0].exact]
            if not exact_ranked:
                return FullScanPath(), ("full",), predicate
            best, best_shape, best_conjunct = exact_ranked[0]
        if (
            len(ranked) > 1
            and ranked[1][0].estimate(store) <= record_count * _INTERSECTION_SELECTIVITY
        ):
            second, second_shape, second_conjunct = ranked[1]
            chosen = [(best, best_conjunct), (second, second_conjunct)]
            return (
                IndexIntersection([best, second]),
                ("intersect", best_shape, second_shape),
                self._residual_of(predicate, chosen),
            )
        return best, ("single", best_shape), self._residual_of(predicate, [(best, best_conjunct)])

    def _residual_of(
        self, predicate: Predicate, chosen: List[Tuple[AccessPath, Predicate]]
    ) -> Predicate:
        """The predicate minus conjuncts the chosen path answers exactly.

        Dropping is only sound for *exact* paths inside a conjunction:
        every candidate the path (or an intersection containing it)
        yields already satisfies the conjunct.  Inexact paths keep their
        conjunct in the residual, as before.
        """
        covered = [conjunct for path, conjunct in chosen if path.exact]
        if not covered:
            return predicate
        remaining = [c for c in self._conjuncts_of(predicate) if c not in covered]
        if not remaining:
            return TRUE
        if len(remaining) == 1:
            return remaining[0]
        return And(tuple(remaining))

    def _rebuild(
        self, predicate: Predicate, selection: Tuple[str, ...]
    ) -> Optional[Tuple[AccessPath, Predicate]]:
        """Re-instantiate a cached strategy with the new predicate's constants.

        Returns ``None`` when the selection no longer applies (a conjunct
        shape disappeared) -- the caller then falls back to full analysis.
        """
        if selection[0] == "full":
            return FullScanPath(), predicate
        wanted = list(selection[1:])
        chosen: List[Tuple[AccessPath, Predicate]] = []
        for conjunct in self._conjuncts_of(predicate):
            if not wanted:
                break
            conjunct_shape = shape_key(conjunct)
            if conjunct_shape in wanted:
                path = self._sargable(conjunct)
                if path is None:
                    return None
                chosen.append((path, conjunct))
                wanted.remove(conjunct_shape)
        if wanted:
            return None
        residual = self._residual_of(predicate, chosen)
        if selection[0] == "intersect":
            return IndexIntersection([path for path, _ in chosen]), residual
        return chosen[0][0], residual

    def _sargable(self, conjunct: Predicate) -> Optional[AccessPath]:
        """An index path answering ``conjunct`` completely, or None."""
        store = self._store
        if isinstance(conjunct, AttributeEquals) and store.attribute_index.covers(conjunct.name):
            return EqualityProbe(conjunct.name, conjunct.value)
        if isinstance(conjunct, AttributeIn) and store.attribute_index.covers(conjunct.name):
            return MultiProbe(conjunct.name, conjunct.values)
        if isinstance(conjunct, AttributeRange) and store.attribute_index.covers(conjunct.name):
            return RangeProbe(
                conjunct.name,
                conjunct.low,
                conjunct.high,
                conjunct.include_low,
                conjunct.include_high,
            )
        if isinstance(conjunct, AttributeExists) and store.attribute_index.covers(conjunct.name):
            return ExistsProbe(conjunct.name)
        if isinstance(conjunct, TimeWindowOverlaps):
            # The temporal index is keyed on exactly these two attributes;
            # windows over any other pair fall back to a scan.
            if conjunct.start_attr == "window_start" and conjunct.end_attr == "window_end":
                return TemporalOverlapProbe(conjunct.start, conjunct.end)
            return None
        if isinstance(conjunct, NearLocation):
            # The spatial index tracks the 'location' attribute (what
            # ingest indexes); radii over other geo attributes scan.  A
            # degenerate negative radius matches nothing -- scan (and
            # find nothing) rather than let the index probe raise.
            if conjunct.name == "location" and conjunct.radius_km >= 0:
                return SpatialRadiusProbe(conjunct.centre, conjunct.radius_km)
            return None
        if isinstance(conjunct, DerivedFrom):
            # Recursive queries are the paper's signature workload; the
            # closure engine enumerates the taint set output-sensitively
            # instead of re-testing reachability per stored record.
            return LineageDescendantsProbe(conjunct.ancestor, conjunct.include_self)
        if isinstance(conjunct, AncestorOf):
            return LineageAncestorsProbe(conjunct.descendant, conjunct.include_self)
        if isinstance(conjunct, Or):
            branches = [self._sargable(part) for part in conjunct.parts]
            if all(branch is not None for branch in branches):
                return IndexUnion([branch for branch in branches if branch is not None])
            return None
        return None
