"""The cost-based query planner.

Given a :class:`~repro.core.query.Query`, the planner:

1. normalizes the predicate (:mod:`repro.query.normalize`),
2. extracts every *sargable* conjunct -- one the store's indexes can
   answer -- and builds a candidate access path for each
   (:mod:`repro.query.paths`),
3. estimates each candidate's cardinality from the store's
   :class:`~repro.query.statistics.Statistics` and index metadata,
4. picks the cheapest path, upgrading to an index intersection when a
   second conjunct is selective enough to pay for its probe,
5. caches the analysis keyed by the predicate's *shape* (structure and
   attribute names, constants stripped), so the paper's sliding-window
   workloads -- same query, moving constants -- skip straight to path
   construction.

The planner only chooses *candidate generation*; the executor always
evaluates the full predicate on the candidates, so a bad estimate can
cost time but never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.query import (
    And,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    NearLocation,
    Or,
    Predicate,
    Query,
    TimeWindowOverlaps,
)
from repro.query.normalize import normalize, shape_key
from repro.query.paths import (
    AccessPath,
    EqualityProbe,
    ExistsProbe,
    FullScanPath,
    IndexIntersection,
    IndexUnion,
    MultiProbe,
    RangeProbe,
    SpatialRadiusProbe,
    TemporalOverlapProbe,
)

__all__ = ["Plan", "QueryPlanner"]

#: Re-analyse a cached shape once the store has grown/shrunk this much.
_CACHE_STALENESS_FACTOR = 4.0
#: LRU bound on cached shapes (long-lived stores see unbounded shape
#: variety, e.g. AttributeIn arities; the cache must not grow with them).
_CACHE_MAX_SHAPES = 512
#: A second index probe joins an intersection only when it narrows to
#: at most this fraction of the store.
_INTERSECTION_SELECTIVITY = 0.5


@dataclass
class Plan:
    """The outcome of planning one query."""

    query: Query
    #: normalized predicate (what the executor evaluates on candidates)
    predicate: Predicate
    #: chosen candidate generator
    path: AccessPath
    #: value-free cache key of the predicate
    shape: str
    #: True when the shape's analysis came from the plan cache
    cache_hit: bool
    #: estimated candidate rows at plan time
    estimated_rows: int


@dataclass
class _ShapeAnalysis:
    """What the cache remembers about one predicate shape.

    ``selection`` records *which strategy won*, by the shape keys of the
    chosen conjuncts -- ``("full",)``, ``("single", conjunct_shape)`` or
    ``("intersect", shape_a, shape_b)``.  Constants are rebound from the
    incoming predicate on every hit, so sliding-window workloads reuse
    the analysis without re-ranking every option.  Rebinding by shape is
    always *sound*: for a conjunction, any sargable conjunct (or
    intersection of conjuncts) is a complete candidate generator.
    """

    #: record count when the analysis was made (staleness guard)
    record_count: int
    selection: Tuple[str, ...]
    hits: int = 0


class QueryPlanner:
    """Plans queries for one :class:`~repro.core.pass_store.PassStore`."""

    def __init__(self, store) -> None:
        self._store = store
        self._cache: "OrderedDict[str, _ShapeAnalysis]" = OrderedDict()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(self, query: Query, force_full_scan: bool = False) -> Plan:
        """Choose an access path for ``query``."""
        predicate = normalize(query.predicate)
        shape = shape_key(predicate)
        if force_full_scan:
            path: AccessPath = FullScanPath()
            return Plan(query, predicate, path, shape, False, path.estimate(self._store))

        cached = self._cache.get(shape)
        if cached is not None and not self._stale(cached):
            path = self._rebuild(predicate, cached.selection)
            if path is not None:
                cached.hits += 1
                self._cache.move_to_end(shape)
                return Plan(query, predicate, path, shape, True, path.estimate(self._store))

        path, selection = self._choose_path(predicate)
        self._cache[shape] = _ShapeAnalysis(
            self._store.statistics.record_count, selection
        )
        self._cache.move_to_end(shape)
        while len(self._cache) > _CACHE_MAX_SHAPES:
            self._cache.popitem(last=False)
        return Plan(query, predicate, path, shape, False, path.estimate(self._store))

    def cache_snapshot(self) -> dict:
        """Plan-cache facts for ``client.stats()`` and tests."""
        return {
            "entries": len(self._cache),
            "hits": sum(entry.hits for entry in self._cache.values()),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stale(self, cached: _ShapeAnalysis) -> bool:
        now = self._store.statistics.record_count
        then = max(1, cached.record_count)
        return now > then * _CACHE_STALENESS_FACTOR or now * _CACHE_STALENESS_FACTOR < then

    @staticmethod
    def _conjuncts_of(predicate: Predicate) -> Tuple[Predicate, ...]:
        if isinstance(predicate, And):
            return predicate.parts
        return (predicate,)

    def _choose_path(self, predicate: Predicate) -> Tuple[AccessPath, Tuple[str, ...]]:
        """Full analysis: rank every sargable conjunct, return (path, selection)."""
        store = self._store
        record_count = store.statistics.record_count
        options: List[Tuple[AccessPath, str]] = []
        for conjunct in self._conjuncts_of(predicate):
            path = self._sargable(conjunct)
            if path is not None:
                options.append((path, shape_key(conjunct)))
        if not options:
            return FullScanPath(), ("full",)

        ranked = sorted(options, key=lambda item: item[0].estimate(store))
        best, best_shape = ranked[0]
        if best.estimate(store) >= record_count:
            # The "index" would touch everything; scanning is cheaper
            # than probing plus fetching every record by name.
            return FullScanPath(), ("full",)
        if (
            len(ranked) > 1
            and ranked[1][0].estimate(store) <= record_count * _INTERSECTION_SELECTIVITY
        ):
            second, second_shape = ranked[1]
            return IndexIntersection([best, second]), ("intersect", best_shape, second_shape)
        return best, ("single", best_shape)

    def _rebuild(self, predicate: Predicate, selection: Tuple[str, ...]) -> Optional[AccessPath]:
        """Re-instantiate a cached strategy with the new predicate's constants.

        Returns ``None`` when the selection no longer applies (a conjunct
        shape disappeared) -- the caller then falls back to full analysis.
        """
        if selection[0] == "full":
            return FullScanPath()
        wanted = list(selection[1:])
        chosen: List[AccessPath] = []
        for conjunct in self._conjuncts_of(predicate):
            if not wanted:
                break
            conjunct_shape = shape_key(conjunct)
            if conjunct_shape in wanted:
                path = self._sargable(conjunct)
                if path is None:
                    return None
                chosen.append(path)
                wanted.remove(conjunct_shape)
        if wanted:
            return None
        if selection[0] == "intersect":
            return IndexIntersection(chosen)
        return chosen[0]

    def _sargable(self, conjunct: Predicate) -> Optional[AccessPath]:
        """An index path answering ``conjunct`` completely, or None."""
        store = self._store
        if isinstance(conjunct, AttributeEquals) and store.attribute_index.covers(conjunct.name):
            return EqualityProbe(conjunct.name, conjunct.value)
        if isinstance(conjunct, AttributeIn) and store.attribute_index.covers(conjunct.name):
            return MultiProbe(conjunct.name, conjunct.values)
        if isinstance(conjunct, AttributeRange) and store.attribute_index.covers(conjunct.name):
            return RangeProbe(
                conjunct.name,
                conjunct.low,
                conjunct.high,
                conjunct.include_low,
                conjunct.include_high,
            )
        if isinstance(conjunct, AttributeExists) and store.attribute_index.covers(conjunct.name):
            return ExistsProbe(conjunct.name)
        if isinstance(conjunct, TimeWindowOverlaps):
            # The temporal index is keyed on exactly these two attributes;
            # windows over any other pair fall back to a scan.
            if conjunct.start_attr == "window_start" and conjunct.end_attr == "window_end":
                return TemporalOverlapProbe(conjunct.start, conjunct.end)
            return None
        if isinstance(conjunct, NearLocation):
            # The spatial index tracks the 'location' attribute (what
            # ingest indexes); radii over other geo attributes scan.  A
            # degenerate negative radius matches nothing -- scan (and
            # find nothing) rather than let the index probe raise.
            if conjunct.name == "location" and conjunct.radius_km >= 0:
                return SpatialRadiusProbe(conjunct.centre, conjunct.radius_km)
            return None
        if isinstance(conjunct, Or):
            branches = [self._sargable(part) for part in conjunct.parts]
            if all(branch is not None for branch in branches):
                return IndexUnion([branch for branch in branches if branch is not None])
            return None
        return None
