"""repro.query -- the cost-based query planner and execution subsystem.

Section III of the paper derives the query classes a provenance-aware
sensor store must serve: time-window, geographic-radius, attribute and
lineage queries.  The store maintains temporal, spatial and attribute
indexes on every ingest; this package is what finally puts them all on
the read path:

* :mod:`repro.query.normalize` -- predicate canonicalization and the
  value-free shape keys the plan cache is keyed by,
* :mod:`repro.query.statistics` -- ingest-maintained statistics feeding
  the cost model,
* :mod:`repro.query.paths` -- the physical access paths (index probes,
  scans, intersections, unions),
* :mod:`repro.query.planner` -- the cost-based path choice + plan cache,
* :mod:`repro.query.executor` -- execution, honest accounting and
  :class:`~repro.query.explain.Explain` output.

:class:`~repro.core.pass_store.PassStore` owns one
:class:`~repro.query.planner.QueryPlanner` and routes ``query`` /
``query_records`` / ``explain`` through it, so every architecture model
(they all bottom out in per-site PassStores) plans per site for free.
"""

from repro.query.executor import execute
from repro.query.explain import Explain
from repro.query.normalize import normalize, shape_key
from repro.query.paths import (
    AccessPath,
    EqualityProbe,
    ExistsProbe,
    FullScanPath,
    IndexIntersection,
    IndexUnion,
    MultiProbe,
    RangeProbe,
    SpatialRadiusProbe,
    TemporalOverlapProbe,
)
from repro.query.planner import Plan, QueryPlanner
from repro.query.statistics import Statistics

__all__ = [
    "AccessPath",
    "EqualityProbe",
    "ExistsProbe",
    "Explain",
    "FullScanPath",
    "IndexIntersection",
    "IndexUnion",
    "MultiProbe",
    "Plan",
    "QueryPlanner",
    "RangeProbe",
    "SpatialRadiusProbe",
    "Statistics",
    "TemporalOverlapProbe",
    "execute",
    "normalize",
    "shape_key",
]
