"""The estimated-vs-actual feedback loop (adaptive query engine).

Every planned execution already records what the planner expected
(``estimated_rows``) and what actually happened (``actual_rows``) --
this module is the consumer that closes the loop.  One
:class:`FeedbackCollector` rides on each
:class:`~repro.core.pass_store.PassStore` and drives four mechanisms:

* **Drift-based plan-cache invalidation.**  The planner's staleness
  guard only watches record-count growth, so a cached selection whose
  observed selectivity drifts on a stable store would keep its stale
  plan forever.  The collector keeps a sliding window of misestimate
  flags per plan shape; when enough recent runs misestimated by
  ``>= _DRIFT_RATIO``, the shape is marked and the planner evicts and
  re-ranks it on the next hit (the fresh plan reports ``adapted``).
* **Statistics refresh scheduling.**  Attribute statistics and the
  :class:`~repro.lineage.stats.GraphStatistics` depth histogram are
  maintained incrementally and never revisited; accumulated drift or
  ingest volume now schedules a full rebuild
  (:meth:`PassStore.refresh_statistics`), fixing e.g. depths
  understated by out-of-order ingest.
* **Adaptive closure strategy switching.**  The DAG-shape summary
  (node count, max depth) is checked every ``_CLOSURE_CHECK_INTERVAL``
  fresh ingests; when the graph outgrows the labelled strategy's sweet
  spot the store switches ``labelled -> interval`` through the same
  ``rebuild_closure_index`` plumbing the daemon's async job uses (and
  back, with hysteresis, should the graph be small and shallow).
* **Hot-key result caching with precise ingest invalidation.**  Exact
  repeats (same shape *and* constants) are counted; once a key is hot
  its result is cached, bounded LRU, and invalidated precisely by the
  stream engine's anchor index (:class:`~repro.stream.dispatch.DispatchIndex`)
  from the post-commit ingest hook -- only an ingest that can match the
  cached predicate evicts it.  Lineage queries are never cached: an
  out-of-order ingest can make *old* records start matching, which no
  anchor on the new record would catch.

Everything is O(1) per query and per ingest (amortized), and the whole
loop surfaces as the frozen ``stats()["planner"]["feedback"]`` block.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.attributes import canonical_encode
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import (
    TRUE,
    And,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    NearLocation,
    Or,
    Predicate,
    Query,
    TimeWindowOverlaps,
)
from repro.errors import ConfigurationError
from repro.query.normalize import normalize, shape_key

__all__ = ["FeedbackCollector", "ResultKey"]

#: A run misestimates when (estimated+1)/(actual+1) falls outside
#: [1/ratio, ratio].
_DRIFT_RATIO = 4.0
#: Sliding window of misestimate flags kept per plan shape.
_DRIFT_WINDOW = 8
#: Don't judge a shape on fewer runs than this.
_DRIFT_MIN_SAMPLES = 4
#: Fraction of the window that must misestimate to declare drift.
_DRIFT_FRACTION = 0.5
#: After a drift invalidation, leave the (re-ranked) shape alone for
#: this many observations -- bounds replan churn when the misestimate
#: is intrinsic (a selective residual no access path can see).
_DRIFT_COOLDOWN = 64
#: Shapes tracked for drift (LRU-bounded like the plan cache).
_MAX_TRACKED_SHAPES = 512

#: Refresh statistics after this many drift events ...
_REFRESH_DRIFT_EVENTS = 4
#: ... or when the store grew by this factor since the last refresh
#: (against at least _REFRESH_MIN_BASE records, so small stores don't
#: churn).
_REFRESH_INGEST_FACTOR = 2.0
_REFRESH_MIN_BASE = 256

#: Check the DAG shape for a closure-strategy switch every N fresh ingests.
_CLOSURE_CHECK_INTERVAL = 1024
#: labelled -> interval once the graph is this big or deep ...
_CLOSURE_NODES_INTERVAL = 8192
_CLOSURE_DEPTH_INTERVAL = 96
#: ... and back only well below (hysteresis; disjoint from the up
#: thresholds so the strategies can never flap).
_CLOSURE_NODES_LABELLED = 2048
_CLOSURE_DEPTH_LABELLED = 24

#: Result-cache bounds: entries, rows per entry, and how many repeats
#: make a key "hot" enough to admit.
_RESULT_CACHE_MAX = 64
_RESULT_CACHE_MAX_ROWS = 1024
_HOT_KEY_MIN_HITS = 3
#: Only executions that scanned at least this many rows are worth
#: caching -- a small index probe re-runs faster than the bookkeeping
#: it would displace (and tiny workloads keep their honest scan costs).
_RESULT_CACHE_MIN_SCANNED = 64
#: Distinct keys whose repeat counts are tracked (LRU-bounded).
_MAX_TRACKED_KEYS = 512
#: Hot keys reported in the snapshot.
_SNAPSHOT_HOT_KEYS = 5


class ResultKey:
    """Identity of one cacheable query: shape + constants + options."""

    __slots__ = ("shape", "token", "predicate")

    def __init__(self, shape: str, token: str, predicate: Predicate) -> None:
        self.shape = shape
        self.token = token
        self.predicate = predicate


def _constants_token(predicate: Predicate) -> Optional[str]:
    """A canonical constants-preserving key, or ``None`` when the
    predicate holds constructs the result cache won't track.

    Mirrors :func:`~repro.query.normalize.shape_key` (commutative
    children sorted) but keeps the constants, canonically encoded --
    two queries produce the same token iff they ask the same question.
    """
    try:
        if predicate is TRUE:
            return "true"
        if isinstance(predicate, And):
            parts = [_constants_token(p) for p in predicate.parts]
            if any(part is None for part in parts):
                return None
            return "and(" + ",".join(sorted(parts)) + ")"  # type: ignore[arg-type]
        if isinstance(predicate, Or):
            parts = [_constants_token(p) for p in predicate.parts]
            if any(part is None for part in parts):
                return None
            return "or(" + ",".join(sorted(parts)) + ")"  # type: ignore[arg-type]
        if isinstance(predicate, AttributeEquals):
            return f"eq[{predicate.name}={canonical_encode(predicate.value)}]"
        if isinstance(predicate, AttributeIn):
            values = ",".join(sorted(canonical_encode(v) for v in predicate.values))
            return f"in[{predicate.name}:{values}]"
        if isinstance(predicate, AttributeRange):
            low = "" if predicate.low is None else canonical_encode(predicate.low)
            high = "" if predicate.high is None else canonical_encode(predicate.high)
            return (
                f"range[{predicate.name}:{low}:{int(predicate.include_low)}"
                f":{high}:{int(predicate.include_high)}]"
            )
        if isinstance(predicate, AttributeExists):
            return f"exists[{predicate.name}]"
        if isinstance(predicate, AttributeContains):
            return f"contains[{predicate.name}={predicate.needle}]"
        if isinstance(predicate, NearLocation):
            centre = predicate.centre
            return (
                f"near[{predicate.name}:{centre.latitude!r}:{centre.longitude!r}"
                f":{predicate.radius_km!r}]"
            )
        if isinstance(predicate, TimeWindowOverlaps):
            return (
                f"window[{predicate.start_attr}:{predicate.end_attr}"
                f":{predicate.start.seconds!r}:{predicate.end.seconds!r}]"
            )
    except (ConfigurationError, AttributeError):
        return None
    # Negations, raw/agent/annotation predicates, lineage probes and
    # unknown extensions are not worth (or not sound to) cache.
    return None


class FeedbackCollector:
    """Per-store consumer of estimated-vs-actual execution feedback."""

    def __init__(self, store) -> None:
        # Deferred: repro.stream's package __init__ reaches repro.api,
        # which is mid-import while repro.core.pass_store loads.
        from repro.stream.dispatch import DispatchIndex

        self._store = store
        #: master switch (benchmarks compare against the static engine
        #: by flipping this off; everything becomes a no-op).
        self.enabled = True

        # -- drift detection ------------------------------------------
        self._windows: "OrderedDict[str, Deque[int]]" = OrderedDict()
        self._drift_marks: Dict[str, str] = {}
        self._cooldown: Dict[str, int] = {}
        self._queries_observed = 0
        self._misestimates = 0
        self._drift_events = 0
        self._plans_invalidated = 0

        # -- statistics refresh scheduling ----------------------------
        self._drift_since_refresh = 0
        self._ingested_since_refresh = 0
        self._records_at_refresh = 0
        self._stats_refreshes = 0

        # -- closure strategy advisor ---------------------------------
        self._ingests_since_closure_check = 0
        self._closure_switches = 0

        # -- hot-key result cache -------------------------------------
        self._key_counts: "OrderedDict[str, int]" = OrderedDict()
        self._results: "OrderedDict[str, Tuple[Tuple[PName, ProvenanceRecord], ...]]" = (
            OrderedDict()
        )
        self._invalidation = DispatchIndex()
        self._result_hits = 0
        self._result_misses = 0
        self._result_invalidations = 0
        self._result_evictions = 0

    # ------------------------------------------------------------------
    # Drift detection (fed by the executor, consumed by the planner)
    # ------------------------------------------------------------------
    def observe_execution(
        self, shape: str, estimated_rows: int, actual_rows: int, cache_hit: bool
    ) -> None:
        """Fold one execution's estimate error into the shape's window."""
        if not self.enabled:
            return
        self._queries_observed += 1
        ratio = (estimated_rows + 1.0) / (actual_rows + 1.0)
        misestimated = ratio >= _DRIFT_RATIO or ratio <= 1.0 / _DRIFT_RATIO
        if misestimated:
            self._misestimates += 1
        cooldown = self._cooldown.get(shape, 0)
        if cooldown:
            if cooldown <= 1:
                del self._cooldown[shape]
            else:
                self._cooldown[shape] = cooldown - 1
            return
        window = self._window(shape)
        if not cache_hit:
            # Fresh analysis: drop any stale mark and judge the new
            # selection on its own record.
            self._drift_marks.pop(shape, None)
            window.clear()
        window.append(1 if misestimated else 0)
        if not cache_hit or len(window) < _DRIFT_MIN_SAMPLES:
            return
        miscount = sum(window)
        if miscount / len(window) >= _DRIFT_FRACTION and shape not in self._drift_marks:
            self._drift_events += 1
            self._drift_since_refresh += 1
            self._drift_marks[shape] = (
                f"drift: {miscount}/{len(window)} recent runs misestimated"
                f" >={_DRIFT_RATIO:g}x; plan re-ranked"
            )
            window.clear()

    def should_replan(self, shape: str) -> Optional[str]:
        """Consume a drift mark: the planner evicts the shape and re-ranks.

        Returns the human-readable reason (the plan's ``adapted``
        annotation) or ``None``.  Consuming a mark starts the shape's
        cooldown so an intrinsic misestimate can't thrash the cache.
        """
        if not self.enabled:
            return None
        reason = self._drift_marks.pop(shape, None)
        if reason is None:
            return None
        self._plans_invalidated += 1
        self._cooldown[shape] = _DRIFT_COOLDOWN
        return reason

    def _window(self, shape: str) -> Deque[int]:
        window = self._windows.get(shape)
        if window is None:
            window = deque(maxlen=_DRIFT_WINDOW)
            self._windows[shape] = window
            while len(self._windows) > _MAX_TRACKED_SHAPES:
                evicted, _ = self._windows.popitem(last=False)
                self._drift_marks.pop(evicted, None)
                self._cooldown.pop(evicted, None)
        else:
            self._windows.move_to_end(shape)
        return window

    # ------------------------------------------------------------------
    # Statistics refresh scheduling
    # ------------------------------------------------------------------
    def refresh_due(self) -> bool:
        """True when accumulated drift or ingest volume warrants a rebuild."""
        if not self.enabled:
            return False
        if self._drift_since_refresh >= _REFRESH_DRIFT_EVENTS:
            return True
        base = max(self._records_at_refresh, _REFRESH_MIN_BASE)
        return self._ingested_since_refresh >= base * _REFRESH_INGEST_FACTOR

    def note_refreshed(self) -> None:
        """Reset the refresh triggers (called by ``refresh_statistics``)."""
        self._stats_refreshes += 1
        self._drift_since_refresh = 0
        self._ingested_since_refresh = 0
        self._records_at_refresh = self._store.statistics.record_count

    # ------------------------------------------------------------------
    # Closure strategy advisor
    # ------------------------------------------------------------------
    def closure_check_due(self) -> bool:
        """Amortized: true once per ``_CLOSURE_CHECK_INTERVAL`` fresh ingests."""
        if not self.enabled:
            return False
        if self._ingests_since_closure_check < _CLOSURE_CHECK_INTERVAL:
            return False
        self._ingests_since_closure_check = 0
        return True

    def advise_closure(self, current: str) -> Optional[str]:
        """The strategy the DAG shape calls for, or ``None`` to stay put.

        Only ever advises between ``labelled`` and ``interval`` -- an
        explicitly chosen naive/memoized strategy (experiments) is left
        alone.  Thresholds are hysteretic: the up and down regions are
        disjoint, so the store can never flap between strategies.
        """
        if not self.enabled:
            return None
        graph_stats = self._store.graph_stats
        nodes = graph_stats.nodes
        depth = graph_stats.max_depth
        if current == "labelled" and (
            nodes >= _CLOSURE_NODES_INTERVAL or depth >= _CLOSURE_DEPTH_INTERVAL
        ):
            return "interval"
        if current == "interval" and (
            nodes <= _CLOSURE_NODES_LABELLED and depth <= _CLOSURE_DEPTH_LABELLED
        ):
            return "labelled"
        return None

    def note_closure_switch(self) -> None:
        self._closure_switches += 1

    # ------------------------------------------------------------------
    # Hot-key result cache
    # ------------------------------------------------------------------
    def result_key(self, query: Query) -> Optional[ResultKey]:
        """The query's cache identity, or ``None`` when it must not cache.

        Lineage queries are excluded by construction: a late-arriving
        intermediate record can make *old* records start matching, and
        no anchor on the new record would invalidate the entry.
        """
        if not self.enabled or query.requires_lineage:
            return None
        predicate = normalize(query.predicate)
        constants = _constants_token(predicate)
        if constants is None:
            return None
        token = (
            f"{constants}|order={query.order_by}|limit={query.limit}"
            f"|removed={int(query.include_removed)}"
        )
        return ResultKey(shape_key(predicate), token, predicate)

    def cached_result(
        self, key: ResultKey
    ) -> Optional[Tuple[Tuple[PName, ProvenanceRecord], ...]]:
        """The cached pairs for ``key``, counting the sighting either way."""
        self._note_sighting(key.token)
        entry = self._results.get(key.token)
        if entry is None:
            self._result_misses += 1
            return None
        self._results.move_to_end(key.token)
        self._result_hits += 1
        return entry

    def maybe_admit(
        self,
        key: ResultKey,
        pairs: List[Tuple[PName, ProvenanceRecord]],
        rows_scanned: int,
    ) -> None:
        """Cache ``pairs`` once the key is hot, worthwhile, and anchorable."""
        if not self.enabled or key.token in self._results:
            return
        if len(pairs) > _RESULT_CACHE_MAX_ROWS:
            return
        if rows_scanned < _RESULT_CACHE_MIN_SCANNED:
            return
        if self._key_counts.get(key.token, 0) < _HOT_KEY_MIN_HITS:
            return
        kind = self._invalidation.add(key.token, key.predicate)
        if kind == "scan":
            # Unanchorable: every ingest would invalidate it; not worth
            # caching (and `candidates` would return it for any record).
            self._invalidation.remove(key.token)
            return
        self._results[key.token] = tuple(pairs)
        while len(self._results) > _RESULT_CACHE_MAX:
            evicted, _ = self._results.popitem(last=False)
            self._invalidation.remove(evicted)
            self._result_evictions += 1

    def _note_sighting(self, token: str) -> None:
        count = self._key_counts.get(token)
        if count is None:
            self._key_counts[token] = 1
            while len(self._key_counts) > _MAX_TRACKED_KEYS:
                self._key_counts.popitem(last=False)
        else:
            self._key_counts[token] = count + 1
            self._key_counts.move_to_end(token)

    def invalidate_all(self) -> None:
        """Drop every cached result (removal/annotation touched a record)."""
        for token in list(self._results):
            self._invalidation.remove(token)
        if self._results:
            self._result_invalidations += len(self._results)
            self._results.clear()

    # ------------------------------------------------------------------
    # Ingest-path maintenance (called from the store's post-commit hook)
    # ------------------------------------------------------------------
    def on_ingest(self, pname: PName, record: ProvenanceRecord) -> None:
        """Precise invalidation + scheduling counters for one fresh record."""
        if not self.enabled:
            return
        self._ingested_since_refresh += 1
        self._ingests_since_closure_check += 1
        if self._results:
            for token in self._invalidation.candidates(record):
                if self._results.pop(token, None) is not None:
                    self._invalidation.remove(token)
                    self._result_invalidations += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hot_keys(self, top: int = _SNAPSHOT_HOT_KEYS) -> List[dict]:
        """The most-repeated query keys (deterministic order)."""
        ranked = sorted(
            self._key_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [{"key": token, "count": count} for token, count in ranked[:top]]

    def snapshot(self) -> dict:
        """The frozen ``stats()["planner"]["feedback"]`` block."""
        return {
            "enabled": self.enabled,
            "queries_observed": self._queries_observed,
            "misestimates": self._misestimates,
            "drift_events": self._drift_events,
            "plans_invalidated": self._plans_invalidated,
            "stats_refreshes": self._stats_refreshes,
            "closure_switches": self._closure_switches,
            "hot_keys": self.hot_keys(),
            "result_cache": {
                "entries": len(self._results),
                "hits": self._result_hits,
                "misses": self._result_misses,
                "invalidations": self._result_invalidations,
                "evictions": self._result_evictions,
            },
        }
