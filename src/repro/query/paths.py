"""Access paths: the physical operators the planner chooses among.

Each path knows three things:

* how to *estimate* its result cardinality from the store's
  :class:`~repro.query.statistics.Statistics` and index metadata without
  fetching a single record,
* how to *probe* the store's indexes for the candidate PNames,
* how many index probes it performs (so the store's counters can charge
  each probe exactly once).

Paths only have to be **complete** -- return a superset of the true
matches among stored records -- because the executor always evaluates
the full predicate on the candidates.  Soundness therefore never
depends on estimate quality; only performance does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.attributes import AttributeValue, GeoPoint, Timestamp
from repro.core.provenance import PName
from repro.obs import trace

__all__ = [
    "AccessPath",
    "FullScanPath",
    "EqualityProbe",
    "MultiProbe",
    "RangeProbe",
    "ExistsProbe",
    "TemporalOverlapProbe",
    "SpatialRadiusProbe",
    "LineageAncestorsProbe",
    "LineageDescendantsProbe",
    "IndexIntersection",
    "IndexUnion",
]


class AccessPath(ABC):
    """One way of producing candidate PNames for a query."""

    #: short machine-readable operator name, shown in Explain output
    kind = "abstract"
    #: True when :meth:`probe` returns *exactly* the stored records
    #: matching the conjunct it was built from (not merely a superset).
    #: The planner drops exactly-covered conjuncts from the residual
    #: predicate, so e.g. a lineage conjunct is never re-evaluated per
    #: candidate after its probe already enumerated the closure.
    exact = False

    @abstractmethod
    def describe(self) -> str:
        """Human-readable operator description for Explain output."""

    @abstractmethod
    def estimate(self, store) -> int:
        """Estimated candidate rows; must not fetch records."""

    @abstractmethod
    def probe(self, store) -> Set[PName]:
        """Execute the index probe(s) and return the candidate set."""

    @property
    def probe_count(self) -> int:
        """How many index probes :meth:`probe` performs (stats accounting)."""
        return 1

    def probes_run(self) -> int:
        """Probes actually executed by the last :meth:`probe` call.

        Equals :attr:`probe_count` except for operators that can
        short-circuit (an intersection stops once empty); the executor
        charges this, so ``index_hits`` never counts a skipped probe.
        """
        return self.probe_count


class FullScanPath(AccessPath):
    """Scan every stored record; the plan of last resort."""

    kind = "full-scan"

    def describe(self) -> str:
        return "full scan over all records"

    def estimate(self, store) -> int:
        return store.statistics.record_count

    def probe(self, store) -> Set[PName]:  # pragma: no cover - executor special-cases
        return {pname for pname, _ in store.backend.iter_records()}

    @property
    def probe_count(self) -> int:
        return 0


class EqualityProbe(AccessPath):
    """One inverted-index bucket: ``attribute == value``."""

    kind = "attr-eq"

    def __init__(self, name: str, value: AttributeValue) -> None:
        self.name = name
        self.value = value

    def describe(self) -> str:
        return f"attribute-equality index probe on {self.name!r}"

    def estimate(self, store) -> int:
        # Bucket sizes are known exactly: one dict probe, no fetches.
        return store.attribute_index.count(self.name, self.value)

    def probe(self, store) -> Set[PName]:
        return store.attribute_index.lookup(self.name, self.value)


class MultiProbe(AccessPath):
    """Union of several equality buckets: ``attribute IN (v1, v2, ...)``."""

    kind = "attr-in"

    def __init__(self, name: str, values: Sequence[AttributeValue]) -> None:
        self.name = name
        self.values = tuple(values)

    def describe(self) -> str:
        return f"attribute multi-probe on {self.name!r} ({len(self.values)} values)"

    def estimate(self, store) -> int:
        return store.attribute_index.count_any(self.name, self.values)

    def probe(self, store) -> Set[PName]:
        return store.attribute_index.lookup_any(self.name, self.values)

    @property
    def probe_count(self) -> int:
        return len(self.values)


class RangeProbe(AccessPath):
    """Bisected scan of an attribute's sorted value view."""

    kind = "attr-range"

    def __init__(
        self,
        name: str,
        low: Optional[AttributeValue],
        high: Optional[AttributeValue],
        include_low: bool = True,
        include_high: bool = True,
    ) -> None:
        self.name = name
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def describe(self) -> str:
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"attribute-range index scan on {self.name!r} [{low} .. {high}]"

    def estimate(self, store) -> int:
        return store.attribute_index.estimate_range(
            self.name, self.low, self.high, self.include_low, self.include_high
        )

    def probe(self, store) -> Set[PName]:
        return store.attribute_index.lookup_range(
            self.name, self.low, self.high, self.include_low, self.include_high
        )


class ExistsProbe(AccessPath):
    """Union of every bucket of one attribute (``attribute exists``)."""

    kind = "attr-exists"

    def __init__(self, name: str) -> None:
        self.name = name

    def describe(self) -> str:
        return f"attribute-exists index scan on {self.name!r}"

    def estimate(self, store) -> int:
        return store.attribute_index.attribute_entry_count(self.name)

    def probe(self, store) -> Set[PName]:
        return store.attribute_index.lookup_all(self.name)


class TemporalOverlapProbe(AccessPath):
    """Time-window overlap through the temporal index."""

    kind = "temporal-overlap"

    def __init__(self, start: Timestamp, end: Timestamp) -> None:
        self.start = start
        self.end = end

    def describe(self) -> str:
        return f"temporal-overlap index scan [{self.start} .. {self.end}]"

    def estimate(self, store) -> int:
        return store.temporal_index.estimate_overlapping(self.start, self.end)

    def probe(self, store) -> Set[PName]:
        return store.temporal_index.overlapping(self.start, self.end)


class SpatialRadiusProbe(AccessPath):
    """Geographic radius through the spatial grid index."""

    kind = "spatial-radius"

    def __init__(self, centre: GeoPoint, radius_km: float) -> None:
        self.centre = centre
        self.radius_km = radius_km

    def describe(self) -> str:
        return f"spatial-radius index scan ({self.radius_km} km around {self.centre})"

    def estimate(self, store) -> int:
        return store.spatial_index.estimate_within(self.centre, self.radius_km)

    def probe(self, store) -> Set[PName]:
        return store.spatial_index.within_radius(self.centre, self.radius_km)


class _LineageProbe(AccessPath):
    """Common machinery of the two lineage reachability probes.

    The probe asks the store's closure engine for one output-sensitive
    enumeration instead of testing reachability per stored record; with
    the :mod:`repro.lineage` interval index that is O(answer), and even
    the naive strategy pays one BFS instead of one per record.  The
    probe is *exact*: a stored record is in the probe set iff it matches
    the lineage conjunct, so the executor never re-evaluates it.
    """

    exact = True
    #: "ancestors" or "descendants"; subclasses pin it
    direction = "abstract"

    def __init__(self, focus: PName, include_self: bool = False) -> None:
        self.focus = focus
        self.include_self = include_self

    def describe(self) -> str:
        suffix = " (incl. the focus itself)" if self.include_self else ""
        return f"lineage reachability probe: {self.direction} of {self.focus.short}{suffix}"

    def estimate(self, store) -> int:
        if self.focus not in store.graph:
            return 1 if self.include_self else 0
        estimator = (
            store.closure.estimate_ancestors
            if self.direction == "ancestors"
            else store.closure.estimate_descendants
        )
        estimated = estimator(self.focus)
        if estimated is None:
            # Strategy cannot answer cheaply: price from the store's
            # depth-histogram / fan-out statistics instead.
            estimated = store.graph_stats.expected_reach()
        return estimated + (1 if self.include_self else 0)

    def probe(self, store) -> Set[PName]:
        with trace.span(
            "closure.probe",
            attrs={"direction": self.direction, "focus": self.focus.short},
        ):
            if self.focus in store.graph:
                walker = (
                    store.closure.ancestors
                    if self.direction == "ancestors"
                    else store.closure.descendants
                )
                found = set(walker(self.focus))
            else:
                found = set()
            if self.include_self:
                found.add(self.focus)
            return found


class LineageAncestorsProbe(_LineageProbe):
    """Candidates for ``AncestorOf(x)``: the ancestor closure of ``x``."""

    kind = "lineage-ancestors"
    direction = "ancestors"


class LineageDescendantsProbe(_LineageProbe):
    """Candidates for ``DerivedFrom(x)``: the descendant (taint) closure of ``x``."""

    kind = "lineage-descendants"
    direction = "descendants"


class IndexIntersection(AccessPath):
    """Intersect several index paths (conjunctions of selective conjuncts)."""

    kind = "index-intersection"

    def __init__(self, paths: Sequence[AccessPath]) -> None:
        self.paths = list(paths)
        self._probes_run = 0

    def describe(self) -> str:
        inner = " & ".join(path.describe() for path in self.paths)
        return f"intersection of [{inner}]"

    def estimate(self, store) -> int:
        # Candidates fetched = the intersection; bounded by the smallest input.
        return min(path.estimate(store) for path in self.paths)

    def probe(self, store) -> Set[PName]:
        result: Optional[Set[PName]] = None
        self._probes_run = 0
        # Probe cheapest-first so later intersections shrink fast.
        for path in sorted(self.paths, key=lambda p: p.estimate(store)):
            hits = path.probe(store)
            self._probes_run += path.probes_run()
            result = hits if result is None else (result & hits)
            if not result:
                break  # short-circuit: remaining probes never execute
        return result if result is not None else set()

    @property
    def probe_count(self) -> int:
        return sum(path.probe_count for path in self.paths)

    def probes_run(self) -> int:
        return self._probes_run


class IndexUnion(AccessPath):
    """Union of index paths (a disjunction whose branches are all sargable)."""

    kind = "index-union"

    def __init__(self, paths: Sequence[AccessPath]) -> None:
        self.paths = list(paths)

    def describe(self) -> str:
        inner = " | ".join(path.describe() for path in self.paths)
        return f"union of [{inner}]"

    def estimate(self, store) -> int:
        return sum(path.estimate(store) for path in self.paths)

    def probe(self, store) -> Set[PName]:
        result: Set[PName] = set()
        for path in self.paths:
            result |= path.probe(store)
        return result

    @property
    def probe_count(self) -> int:
        return sum(path.probe_count for path in self.paths)

    def probes_run(self) -> int:
        return sum(path.probes_run() for path in self.paths)
