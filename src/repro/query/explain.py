"""Structured EXPLAIN output for planned queries.

Every planned execution produces an :class:`Explain`: which access path
ran, what the planner expected, what actually happened, and whether the
plan cache already knew the query's shape.  Distributed targets nest one
child per participating site under an aggregate root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Explain"]


@dataclass
class Explain:
    """What one query execution did and what the planner predicted."""

    #: which target/site executed ("local", a site name, a model name)
    site: str
    #: access-path description ("full scan ...", "temporal-overlap ...")
    path: str
    #: machine-readable path kind ("full-scan", "attr-eq", ...)
    path_kind: str
    #: planner's candidate-row estimate
    estimated_rows: int
    #: records that matched the predicate
    actual_rows: int
    #: records materialized and evaluated to answer
    rows_scanned: int
    #: wall time of plan + execute, so estimated-vs-actual rows carry a
    #: latency column (distributed roots report the whole scatter/gather)
    duration_ms: float = 0.0
    #: True when the predicate shape was already in the plan cache
    cache_hit: bool = False
    #: True when an index (not a full scan) produced the candidates
    used_index: bool = False
    #: value-free predicate shape (the plan-cache key)
    shape: Optional[str] = None
    #: why the adaptive engine deviated from the cached/static plan
    #: (drift re-rank, hot-key cache hit); ``None`` when nothing adapted
    adapted: Optional[str] = None
    notes: List[str] = field(default_factory=list)
    #: per-site explains for distributed targets
    children: List["Explain"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """The explain tree as plain data (reports, JSON)."""
        data = {
            "site": self.site,
            "path": self.path,
            "path_kind": self.path_kind,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "rows_scanned": self.rows_scanned,
            "duration_ms": self.duration_ms,
            "cache_hit": self.cache_hit,
            "used_index": self.used_index,
            "shape": self.shape,
        }
        if self.adapted is not None:
            data["adapted"] = self.adapted
        if self.notes:
            data["notes"] = list(self.notes)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, payload: dict) -> "Explain":
        """Inverse of :meth:`to_dict` (the wire protocol's decode path)."""
        return cls(
            site=payload["site"],
            path=payload["path"],
            path_kind=payload["path_kind"],
            estimated_rows=payload["estimated_rows"],
            actual_rows=payload["actual_rows"],
            rows_scanned=payload["rows_scanned"],
            duration_ms=payload.get("duration_ms", 0.0),
            cache_hit=payload.get("cache_hit", False),
            used_index=payload.get("used_index", False),
            shape=payload.get("shape"),
            adapted=payload.get("adapted"),
            notes=list(payload.get("notes", [])),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
        )

    def format(self, indent: int = 0) -> str:
        """Render the explain tree as indented text (the CLI's output)."""
        pad = "  " * indent
        lines = [
            f"{pad}[{self.site}] {self.path}",
            f"{pad}  estimated rows: {self.estimated_rows}"
            f"   actual rows: {self.actual_rows}"
            f"   rows scanned: {self.rows_scanned}"
            f"   duration: {self.duration_ms:.3f} ms",
            f"{pad}  index used: {'yes' if self.used_index else 'no'}"
            f"   plan cache: {'hit' if self.cache_hit else 'miss'}",
        ]
        if self.adapted is not None:
            lines.append(f"{pad}  adapted: {self.adapted}")
        for note in self.notes:
            lines.append(f"{pad}  note: {note}")
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
