"""Predicate normalization: the planner's front door.

Queries arrive in whatever shape the caller composed -- DSL sugar,
nested conjunctions, double negations.  The planner wants one canonical
shape so that (a) sargable conjuncts are easy to extract and (b) queries
that differ only in their constants share a plan-cache entry.

:func:`normalize` applies the classic rewrites:

* ``Not`` is pushed inward (De Morgan; double negation cancels),
* nested ``And``/``Or`` are flattened into one n-ary node,
* duplicate sub-predicates are dropped (order-preserving),
* trivial ``TRUE`` conjuncts disappear,
* single-child ``And``/``Or`` collapse to the child.

:func:`shape_key` reduces a (normalized) predicate to a string that
keeps structure, predicate types and attribute names but drops the
constants -- two time-window queries over different windows share a
shape, which is exactly what makes the plan cache useful for the
paper's sliding-window workloads.
"""

from __future__ import annotations

from typing import List

from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Predicate,
    TimeWindowOverlaps,
)

__all__ = ["normalize", "shape_key"]


def normalize(predicate: Predicate) -> Predicate:
    """Rewrite ``predicate`` into the canonical planner shape."""
    return _normalize(predicate, negated=False)


def _normalize(predicate: Predicate, negated: bool) -> Predicate:
    if isinstance(predicate, Not):
        return _normalize(predicate.part, not negated)
    if isinstance(predicate, (And, Or)):
        # De Morgan: a negated And becomes an Or of negated parts (and
        # vice versa), so negation only ever rests on the leaves.
        flip = isinstance(predicate, And) == negated
        parts: List[Predicate] = []
        for part in predicate.parts:
            lowered = _normalize(part, negated)
            same_shape = isinstance(lowered, Or) if flip else isinstance(lowered, And)
            if same_shape:
                parts.extend(lowered.parts)  # type: ignore[union-attr]
            else:
                parts.append(lowered)
        kept: List[Predicate] = []
        for part in parts:
            if part is TRUE:
                if flip:
                    return TRUE  # a TRUE branch makes the disjunction trivial
                continue  # TRUE conjuncts never constrain anything
            if part not in kept:
                kept.append(part)
        if not kept:
            return TRUE
        if len(kept) == 1:
            return kept[0]
        return Or(tuple(kept)) if flip else And(tuple(kept))
    if negated:
        return Not(predicate)
    return predicate


def shape_key(predicate: Predicate) -> str:
    """A value-free structural key for the plan cache.

    Commutative children are keyed in sorted order so ``a=1 & b=2`` and
    ``b=2 & a=1`` share one cache entry.
    """
    if isinstance(predicate, Not):
        return f"not({shape_key(predicate.part)})"
    if isinstance(predicate, And):
        return "and(" + ",".join(sorted(shape_key(p) for p in predicate.parts)) + ")"
    if isinstance(predicate, Or):
        return "or(" + ",".join(sorted(shape_key(p) for p in predicate.parts)) + ")"
    if isinstance(predicate, AttributeEquals):
        return f"eq[{predicate.name}]"
    if isinstance(predicate, AttributeRange):
        bounds = (
            f"{'l' if predicate.low is not None else ''}"
            f"{'L' if predicate.include_low else ''}"
            f"{'h' if predicate.high is not None else ''}"
            f"{'H' if predicate.include_high else ''}"
        )
        return f"range[{predicate.name}:{bounds}]"
    if isinstance(predicate, AttributeIn):
        return f"in[{predicate.name}:{len(predicate.values)}]"
    if isinstance(predicate, AttributeContains):
        return f"contains[{predicate.name}]"
    if isinstance(predicate, AttributeExists):
        return f"exists[{predicate.name}]"
    if isinstance(predicate, NearLocation):
        return f"near[{predicate.name}]"
    if isinstance(predicate, TimeWindowOverlaps):
        return f"window[{predicate.start_attr}:{predicate.end_attr}]"
    if isinstance(predicate, AgentIs):
        return "agent"
    if isinstance(predicate, AnnotationMatches):
        return f"annotation[{predicate.key}]"
    if isinstance(predicate, IsRaw):
        return f"raw[{predicate.raw}]"
    if isinstance(predicate, DerivedFrom):
        return "derived-from"
    if isinstance(predicate, AncestorOf):
        return "ancestor-of"
    if predicate is TRUE:
        return "true"
    # Unknown predicate classes are keyed by type so user extensions
    # still cache (conservatively: one entry per extension type).
    return f"other[{type(predicate).__name__}]"
