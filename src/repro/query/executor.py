"""The executor: run a plan, account for it honestly, explain it.

The executor is the one place candidate records are materialized and
the residual predicate is evaluated, which gives it two jobs beyond
producing ``(PName, record)`` pairs:

* **accounting** -- each index probe bumps ``index_hits`` exactly once,
  every record fetched for evaluation bumps ``records_scanned``, and
  full scans are counted separately, so ``client.stats()`` reports what
  actually happened;
* **explanation** -- every execution yields an
  :class:`~repro.query.explain.Explain` comparing the planner's estimate
  with the rows actually scanned and matched.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import Query
from repro.obs import trace
from repro.query.explain import Explain
from repro.query.paths import FullScanPath

__all__ = ["execute"]


def execute(
    store, query: Query, force_full_scan: bool = False
) -> Tuple[List[Tuple[PName, ProvenanceRecord]], Explain]:
    """Plan and run ``query`` against ``store``.

    Returns the matching ``(PName, record)`` pairs (ordered and limited
    per the query's options) plus the :class:`Explain` of what ran.
    """
    started = time.perf_counter()
    # One span covers plan + probe/scan + fetch + evaluate: the phase
    # facts ride as attrs (Explain carries the full breakdown), keeping
    # the traced read path at a single span per executor run -- the
    # per-phase spans measurably taxed hot queries.
    with trace.span("query.execute", attrs={"site": store.site}) as op_span:
        feedback = getattr(store, "feedback", None)
        result_key = None
        if feedback is not None and not force_full_scan:
            # Hot-key result cache: exact repeats (same shape, same
            # constants, same options) skip planning and execution
            # entirely.  Entries are invalidated precisely from the
            # post-commit ingest hook, so a hit is always current.
            result_key = feedback.result_key(query)
            if result_key is not None:
                cached_pairs = feedback.cached_result(result_key)
                if cached_pairs is not None:
                    op_span.set_attr("path", "result-cache")
                    op_span.set_attr("rows", len(cached_pairs))
                    explain = Explain(
                        site=store.site,
                        path="hot-key result cache",
                        path_kind="result-cache",
                        estimated_rows=len(cached_pairs),
                        actual_rows=len(cached_pairs),
                        rows_scanned=0,
                        duration_ms=(time.perf_counter() - started) * 1000.0,
                        cache_hit=True,
                        used_index=True,
                        shape=result_key.shape,
                        adapted="hot-key: served from result cache",
                    )
                    return list(cached_pairs), explain
            # Accumulated drift/ingest volume schedules a statistics
            # rebuild; running it *before* planning lets the fresh
            # histograms price this very query.
            if feedback.refresh_due():
                store.refresh_statistics()
        plan = store.planner.plan(query, force_full_scan=force_full_scan)
        full_scan = isinstance(plan.path, FullScanPath)
        if full_scan:
            # scan_all is the backend's bulk-read entry point: sharded
            # backends fan the scan out across shards concurrently and
            # merge in digest order.
            candidates = store.backend.scan_all()
            store.stats.full_scans += 1
        else:
            hits = plan.path.probe(store)
            store.stats.index_hits += plan.path.probes_run()
            # Digest order keeps index-served answers deterministic across
            # backends and runs (sets have no stable iteration order); the
            # bulk fetch keeps durable backends at one statement per chunk
            # instead of one per candidate.
            candidates = store.backend.get_records(
                sorted(hits, key=lambda p: p.digest)
            )
        store.stats.records_scanned += len(candidates)
        if plan.cache_hit:
            store.stats.plan_cache_hits += 1

        # The residual drops conjuncts the path answered exactly (a lineage
        # probe already enumerated the closure; re-testing reachability per
        # candidate would re-pay the walk).  Ordering/limit/removed-data
        # options still apply in full.
        residual = replace(query, predicate=plan.residual)
        pairs = residual.evaluate_pairs(
            candidates, lineage=store, removed=store.is_removed
        )
        op_span.set_attr("path", plan.path.kind)
        op_span.set_attr("rows_scanned", len(candidates))
        op_span.set_attr("rows", len(pairs))
        if feedback is not None and not force_full_scan:
            feedback.observe_execution(
                plan.shape, plan.estimated_rows, len(pairs), plan.cache_hit
            )
            if result_key is not None:
                feedback.maybe_admit(result_key, pairs, len(candidates))
    explain = Explain(
        site=store.site,
        path=plan.path.describe(),
        path_kind=plan.path.kind,
        estimated_rows=plan.estimated_rows,
        actual_rows=len(pairs),
        rows_scanned=len(candidates),
        duration_ms=(time.perf_counter() - started) * 1000.0,
        cache_hit=plan.cache_hit,
        used_index=not full_scan,
        shape=plan.shape,
        adapted=plan.adapted,
    )
    return pairs, explain
