"""Ingest-maintained statistics the cost-based planner estimates from.

A planner is only as good as its cardinality estimates, and estimates
must be cheap -- far cheaper than running any candidate plan.  The
:class:`Statistics` collector therefore never scans anything: the store
feeds it one :meth:`observe` call per ingested record, and everything
else is a counter read or an O(log n) bisection delegated to the indexes
it shares with the store.

What it knows:

* total record count,
* per-attribute record counts and (via the attribute index) distinct
  value counts,
* the overall time span covered by indexed time windows,
* how many records carry an indexable location,
* the shape of the provenance DAG (depth histogram, fan-in), via the
  shared :class:`~repro.lineage.stats.GraphStatistics` collector, which
  is what prices the lineage reachability probes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import ProvenanceRecord
from repro.index.attribute_index import AttributeIndex
from repro.index.spatial_index import SpatialIndex
from repro.index.temporal_index import TemporalIndex

__all__ = ["Statistics"]


class Statistics:
    """Per-store statistics, updated on every ingest.

    Parameters
    ----------
    attribute_index / temporal_index / spatial_index:
        The store's live indexes.  The collector consults them for
        distinct-value counts and probe-size estimates; it maintains its
        own record/attribute counters so estimates stay O(1) even when
        an index is restricted to a subset of attributes.
    graph_statistics:
        The store's :class:`~repro.lineage.stats.GraphStatistics`
        (lineage-probe estimates); a private collector is created when
        none is shared.
    """

    def __init__(
        self,
        attribute_index: AttributeIndex,
        temporal_index: TemporalIndex,
        spatial_index: SpatialIndex,
        graph_statistics=None,
    ) -> None:
        self._attribute_index = attribute_index
        self._temporal_index = temporal_index
        self._spatial_index = spatial_index
        if graph_statistics is None:
            from repro.lineage.stats import GraphStatistics

            graph_statistics = GraphStatistics()
        self.graph = graph_statistics
        self.record_count = 0
        #: attribute name -> number of records carrying it
        self.attribute_counts: Dict[str, int] = {}
        self._window_min: Optional[float] = None
        self._window_max: Optional[float] = None
        self.windowed_count = 0
        self.located_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self, records: Iterable[ProvenanceRecord]) -> None:
        """Reset the counters and re-observe every stored record.

        The feedback loop's scheduled refresh: incremental counters are
        append-only (removal never decrements, annotations re-count
        nothing), so a store that drifted far enough from its last
        refresh rebuilds them from the backend in one pass.  The shared
        graph collector is *not* touched here -- it has its own
        :meth:`~repro.lineage.stats.GraphStatistics.recompute`.
        """
        self.record_count = 0
        self.attribute_counts = {}
        self._window_min = None
        self._window_max = None
        self.windowed_count = 0
        self.located_count = 0
        for record in records:
            self.observe(record)

    def observe(self, record: ProvenanceRecord) -> None:
        """Fold one freshly ingested record into the counters."""
        self.record_count += 1
        for name in record.attributes:
            self.attribute_counts[name] = self.attribute_counts.get(name, 0) + 1
        start = record.get("window_start")
        end = record.get("window_end")
        if isinstance(start, Timestamp) and isinstance(end, Timestamp):
            self.windowed_count += 1
            if self._window_min is None or start.seconds < self._window_min:
                self._window_min = start.seconds
            if self._window_max is None or end.seconds > self._window_max:
                self._window_max = end.seconds
        if isinstance(record.get("location"), GeoPoint):
            self.located_count += 1

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def attribute_count(self, name: str) -> int:
        """Records carrying attribute ``name``."""
        return self.attribute_counts.get(name, 0)

    def distinct_count(self, name: str) -> int:
        """Distinct indexed values of attribute ``name``."""
        return self._attribute_index.cardinality(name)

    def time_span(self) -> Optional[Tuple[Timestamp, Timestamp]]:
        """(earliest window start, latest window end), or None when unwindowed."""
        if self._window_min is None or self._window_max is None:
            return None
        return (Timestamp(self._window_min), Timestamp(self._window_max))

    def snapshot(self) -> dict:
        """The collector as a plain dict (exposed through ``client.stats()``)."""
        span = self.time_span()
        return {
            "record_count": self.record_count,
            "attributes": len(self.attribute_counts),
            "distinct_counts": {
                name: self.distinct_count(name) for name in sorted(self.attribute_counts)
            },
            "windowed_records": self.windowed_count,
            "located_records": self.located_count,
            "time_span": (
                None if span is None else (span[0].seconds, span[1].seconds)
            ),
            "graph": self.graph.snapshot(),
        }
