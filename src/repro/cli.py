"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover what a user wants from a terminal:

* ``experiments`` -- run one or more of the E1-E14 experiments and print
  their regenerated tables (optionally writing them to a file),
* ``workload`` -- generate a synthetic workload, publish it into a
  ``connect()`` target (``--store memory://`` by default) and print a
  summary (sanity-checking a deployment's shape before writing code
  against it),
* ``query`` -- run a simple ``name=value`` attribute query through the
  PassClient façade against a freshly generated workload.

The CLI is a thin veneer over the library; everything it does is
available programmatically, and the storage/architecture target is a
``--store`` URL (``memory://``, ``sqlite:///pass.db``,
``centralized://``, ``dht://?sites=32``, ...) exactly as accepted by
:func:`repro.api.connect`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import Q, connect
from repro.eval import format_experiment, run_all
from repro.sensors.workloads import (
    MedicalWorkload,
    StructuralWorkload,
    SupplyChainWorkload,
    TrafficWorkload,
    VolcanoWorkload,
    WeatherWorkload,
)

__all__ = ["main", "build_parser"]

_WORKLOADS = {
    "traffic": TrafficWorkload,
    "weather": WeatherWorkload,
    "medical": MedicalWorkload,
    "volcano": VolcanoWorkload,
    "structural": StructuralWorkload,
    "supply-chain": SupplyChainWorkload,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provenance-Aware Sensor Data Storage (PASS) reproduction tools",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    experiments = subcommands.add_parser(
        "experiments", help="run evaluation experiments (E1-E14) and print their tables"
    )
    experiments.add_argument(
        "ids", nargs="*", default=None, help="experiment ids, e.g. E1 E12 (default: all)"
    )
    experiments.add_argument(
        "--output", default=None, help="also write the report to this file"
    )

    workload = subcommands.add_parser(
        "workload", help="generate a synthetic workload and summarise it"
    )
    workload.add_argument("domain", choices=sorted(_WORKLOADS), help="which domain to simulate")
    workload.add_argument("--hours", type=float, default=1.0, help="simulated duration")
    workload.add_argument("--seed", type=int, default=0, help="workload seed")
    workload.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the publish target (default: memory://)",
    )

    query = subcommands.add_parser(
        "query", help="run an attribute query against a freshly generated workload"
    )
    query.add_argument("domain", choices=sorted(_WORKLOADS))
    query.add_argument("predicate", help="attribute query of the form name=value")
    query.add_argument("--hours", type=float, default=1.0)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--limit", type=int, default=10, help="maximum records to print")
    query.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the query target (default: memory://)",
    )
    return parser


def _build_client(domain: str, hours: float, seed: int, url: str = "memory://"):
    """Generate a workload and publish it (batched) into a connect() target."""
    workload = _WORKLOADS[domain](seed=seed)
    raw, derived = workload.all_sets(hours=hours)
    client = connect(url)
    client.publish_many(raw + derived)
    client.refresh()
    return workload, client, raw, derived


def _build_store(domain: str, hours: float, seed: int):
    """Deprecated: kept for embedders; use :func:`_build_client` / connect()."""
    workload, client, raw, derived = _build_client(domain, hours, seed, "memory://")
    return workload, client.store, raw, derived


def _cmd_experiments(args, out) -> int:
    ids = [i.upper() for i in args.ids] if args.ids else None
    blocks = []
    for result in run_all(ids):
        block = format_experiment(result)
        blocks.append(block)
        print(block, file=out)
        print(file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(blocks) + "\n")
    return 0


def _cmd_workload(args, out) -> int:
    workload, client, raw, derived = _build_client(args.domain, args.hours, args.seed, args.store)
    facts = workload.describe()
    stats = client.stats()
    print(f"domain:            {facts['domain']}", file=out)
    print(f"networks:          {', '.join(facts['networks'])}", file=out)
    print(f"sensors:           {facts['sensors']}", file=out)
    print(f"simulated hours:   {args.hours}", file=out)
    print(f"store:             {args.store} (target: {stats['target']})", file=out)
    print(f"raw tuple sets:    {len(raw)}", file=out)
    print(f"derived tuple sets:{len(derived)}", file=out)
    print(f"readings:          {sum(len(ts) for ts in raw)}", file=out)
    store = getattr(client, "store", None)
    if store is not None:
        print(f"store size:        {len(store)} records", file=out)
        print(
            f"derivation depth:  {max(store.graph.ancestry_depth_distribution() or {0: 0})}",
            file=out,
        )
        violations = store.verify_invariants()
        print(f"invariants:        {'ok' if not violations else violations}", file=out)
    else:
        print(f"published:         {stats.get('published', len(raw) + len(derived))}", file=out)
    return 0


def _cmd_query(args, out) -> int:
    if "=" not in args.predicate:
        print("error: predicate must look like name=value", file=sys.stderr)
        return 2
    name, _, raw_value = args.predicate.partition("=")
    value: object = raw_value
    for caster in (int, float):
        try:
            value = caster(raw_value)
            break
        except ValueError:
            continue
    _, client, *_ = _build_client(args.domain, args.hours, args.seed, args.store)
    answer = client.query(Q.attr(name) == value, limit=args.limit)
    print(f"{answer.total} data sets match {name}={value!r}", file=out)
    for pname in answer:
        record = client.describe_record(pname)
        if record is None:
            print(f"  {pname.short}", file=out)
            continue
        summary = ", ".join(
            f"{key}={record.get(key)}"
            for key in ("domain", "network", "stage", "window_start")
            if record.get(key) is not None
        )
        print(f"  {pname.short}  {summary}", file=out)
    if answer.has_more:
        print(f"  ... and {answer.total - len(answer)} more", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(args, out)
    if args.command == "workload":
        return _cmd_workload(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
