"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover what a user wants from a terminal:

* ``experiments`` -- run one or more of the E1-E14 experiments and print
  their regenerated tables (optionally writing them to a file),
* ``workload`` -- generate a synthetic workload, publish it into a
  ``connect()`` target (``--store memory://`` by default) and print a
  summary (sanity-checking a deployment's shape before writing code
  against it),
* ``query`` -- run a simple ``name=value`` attribute query through the
  PassClient façade against a freshly generated workload,
* ``explain`` -- run a query the same way and print the planner's
  EXPLAIN: the access path chosen, estimated vs. actual rows, rows
  scanned and plan-cache status.  Beyond ``name=value``, the predicate
  grammar accepts ``name<=v``/``name>=v``/``name<v``/``name>v`` ranges
  and ``name~substring``; ``--window START,END`` and
  ``--near LAT,LON,KM`` AND in the temporal and spatial fast paths,
* ``watch`` -- register the same predicate grammar as a *standing*
  query (``repro.stream``) and tail its matches live while the
  generated workload streams into the target; ``--every SECONDS``
  switches to window aggregation (``--aggregate``, ``--value-attr``,
  ``--group-by``, ``--slide``),
* ``lineage`` -- inspect provenance lineage through the shared
  reachability index (``repro.lineage``): ``ancestors`` pages through a
  data set's closure, ``path`` prints one derivation path back to a raw
  source, and ``stats`` reports the graph shape (depth histogram,
  fan-in) plus the closure strategy's index statistics,
* ``simulate`` -- publish a generated workload through ``--clients N``
  concurrent closed-loop clients over the discrete-event kernel
  (``repro.sim``) against an architecture model, optionally applying a
  ``--schedule churn.json`` of timed partition/heal/churn events, and
  print latency percentiles plus per-site utilization,
* ``serve`` -- run the provenance service daemon (``repro.server``) in
  the foreground; remote clients then reach the same façade through
  ``connect("pass://host:port")``.  ``--log-level`` controls the
  structured access log, ``--slow-query-ms`` arms the slow-query log,
  ``--metrics-port`` serves plain-HTTP OpenMetrics/health endpoints,
  ``--alert-rules FILE`` loads alert rules and ``--sample-interval``
  tunes (or, at 0, disables) the time-series sampler,
* ``top`` -- live daemon introspection: poll a running daemon's
  ``metrics`` op and render per-tenant op rates, latency percentiles,
  active subscriptions and the slow-query ring; ``--json`` emits one
  JSON line per refresh and the watch survives a daemon restart
  (``--reconnect-attempts``),
* ``healthcheck`` -- probe a target's ``health`` checks and exit
  0 / 1 / 2 for ok / degraded / failing (3 when unreachable),
* ``alerts`` -- show a daemon's alert rules, what is firing, and the
  recent firing/resolved transitions,
* ``trace`` -- run a traced workload + query (``repro.obs``) and export
  the span tree as Chrome trace-event JSON (load it in
  ``chrome://tracing`` or Perfetto); with a ``pass://`` store the tree
  stitches across the wire into the daemon.

The CLI is a thin veneer over the library; everything it does is
available programmatically, and the storage/architecture target is a
``--store`` URL (``memory://``, ``sqlite:///pass.db``,
``centralized://``, ``dht://?sites=32``, ...) exactly as accepted by
:func:`repro.api.connect`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import Q, connect
from repro.eval import format_experiment, run_all
from repro.sensors.workloads import (
    MedicalWorkload,
    StructuralWorkload,
    SupplyChainWorkload,
    TrafficWorkload,
    VolcanoWorkload,
    WeatherWorkload,
)

__all__ = ["main", "build_parser"]

_WORKLOADS = {
    "traffic": TrafficWorkload,
    "weather": WeatherWorkload,
    "medical": MedicalWorkload,
    "volcano": VolcanoWorkload,
    "structural": StructuralWorkload,
    "supply-chain": SupplyChainWorkload,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provenance-Aware Sensor Data Storage (PASS) reproduction tools",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    experiments = subcommands.add_parser(
        "experiments", help="run evaluation experiments (E1-E14) and print their tables"
    )
    experiments.add_argument(
        "ids", nargs="*", default=None, help="experiment ids, e.g. E1 E12 (default: all)"
    )
    experiments.add_argument(
        "--output", default=None, help="also write the report to this file"
    )

    workload = subcommands.add_parser(
        "workload", help="generate a synthetic workload and summarise it"
    )
    workload.add_argument("domain", choices=sorted(_WORKLOADS), help="which domain to simulate")
    workload.add_argument("--hours", type=float, default=1.0, help="simulated duration")
    workload.add_argument("--seed", type=int, default=0, help="workload seed")
    workload.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the publish target (default: memory://)",
    )

    query = subcommands.add_parser(
        "query", help="run an attribute query against a freshly generated workload"
    )
    query.add_argument("domain", choices=sorted(_WORKLOADS))
    query.add_argument("predicate", help="attribute query of the form name=value")
    query.add_argument("--hours", type=float, default=1.0)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--limit", type=int, default=10, help="maximum records to print")
    query.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the query target (default: memory://)",
    )

    explain = subcommands.add_parser(
        "explain", help="run a query and print the planner's EXPLAIN output"
    )
    explain.add_argument("domain", choices=sorted(_WORKLOADS))
    explain.add_argument(
        "predicates",
        nargs="*",
        help="predicates, e.g. city=london stage=raw sequence>=10 name~cam",
    )
    explain.add_argument(
        "--window",
        default=None,
        metavar="START,END",
        help="AND a time-window overlap (seconds), e.g. --window 0,1800",
    )
    explain.add_argument(
        "--near",
        default=None,
        metavar="LAT,LON,KM",
        help="AND a geographic radius, e.g. --near 51.5,-0.12,5",
    )
    explain.add_argument("--hours", type=float, default=1.0)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the target (default: memory://)",
    )

    watch = subcommands.add_parser(
        "watch", help="subscribe to a standing query and tail its matches live"
    )
    watch.add_argument("domain", choices=sorted(_WORKLOADS))
    watch.add_argument(
        "predicates",
        nargs="*",
        help="standing predicates, e.g. city=london stage=raw sequence>=10",
    )
    watch.add_argument(
        "--window",
        default=None,
        metavar="START,END",
        help="AND a time-window overlap (seconds), e.g. --window 0,1800",
    )
    watch.add_argument(
        "--near",
        default=None,
        metavar="LAT,LON,KM",
        help="AND a geographic radius, e.g. --near 51.5,-0.12,5",
    )
    watch.add_argument(
        "--every",
        type=float,
        default=None,
        metavar="SECONDS",
        help="aggregate matches over event-time windows of this size",
    )
    watch.add_argument(
        "--slide",
        type=float,
        default=None,
        metavar="SECONDS",
        help="window slide (default: tumbling, slide == size)",
    )
    watch.add_argument(
        "--aggregate",
        default="count",
        choices=("count", "sum", "mean", "min", "max"),
        help="window aggregate (default: count)",
    )
    watch.add_argument(
        "--value-attr",
        default=None,
        help="record attribute the aggregate reads (required except for count)",
    )
    watch.add_argument(
        "--group-by",
        default=None,
        help="record attribute partitioning each window into per-group aggregates",
    )
    watch.add_argument("--hours", type=float, default=1.0)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--limit", type=int, default=20, help="maximum events to print")
    watch.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the target (default: memory://)",
    )

    lineage = subcommands.add_parser(
        "lineage",
        help="inspect provenance lineage through the reachability index (repro.lineage)",
    )
    lineage_commands = lineage.add_subparsers(dest="lineage_command", required=True)
    for name, description in (
        ("ancestors", "list everything a data set was transitively derived from"),
        ("path", "one derivation path from a derived data set back to a raw source"),
        ("stats", "graph shape and reachability-index statistics"),
    ):
        sub = lineage_commands.add_parser(name, help=description)
        sub.add_argument("domain", choices=sorted(_WORKLOADS))
        sub.add_argument("--hours", type=float, default=1.0)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--store",
            default="memory://",
            help="connect() URL of the target (default: memory://); "
            "try memory://?closure=interval for the interval index",
        )
        if name in ("ancestors", "path"):
            sub.add_argument(
                "--focus",
                type=int,
                default=-1,
                help="index into the derived tuple sets (default: -1, the most derived)",
            )
        if name == "ancestors":
            sub.add_argument("--limit", type=int, default=20, help="page size (default: 20)")
            sub.add_argument("--offset", type=int, default=0, help="page offset (default: 0)")

    serve = subcommands.add_parser(
        "serve",
        help="run the provenance service daemon (repro.server) in the foreground",
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=7100, help="listen port (default: 7100; 0 = ephemeral)"
    )
    serve.add_argument(
        "--store",
        default="memory://",
        help="connect() URL each tenant's store is opened with (default: memory://)",
    )
    serve.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="TOKEN=TENANT",
        help="require auth: map TOKEN to TENANT (repeatable); omit for an open daemon",
    )
    serve.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="access-log verbosity on the repro.server logger (default: info)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log the Explain tree of any query slower than this many ms",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve OpenMetrics text on this plain HTTP port (0 = ephemeral)",
    )
    serve.add_argument(
        "--alert-rules",
        default=None,
        metavar="FILE",
        help="JSON file of alert rules evaluated on the sampler tick",
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="time-series sampling interval (default: 1.0; 0 disables the sampler)",
    )

    top = subcommands.add_parser(
        "top",
        help="live daemon introspection: per-tenant op rates, latency percentiles",
    )
    top.add_argument("url", help="daemon URL, e.g. pass://127.0.0.1:7100")
    top.add_argument("--token", default=None, help="auth token for a tokened daemon")
    top.add_argument("--tenant", default=None, help="tenant name (open daemons only)")
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes (default: 2)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N refreshes (default: run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit (== --iterations 1)"
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit each snapshot as one JSON line instead of the screen layout",
    )
    top.add_argument(
        "--reconnect-attempts",
        type=int,
        default=5,
        metavar="N",
        help="retries (with backoff) if the daemon restarts mid-watch (default: 5)",
    )

    healthcheck = subcommands.add_parser(
        "healthcheck",
        help="probe a daemon's health op; exit 0 ok / 1 degraded / 2 failing",
    )
    healthcheck.add_argument("url", help="daemon URL, e.g. pass://127.0.0.1:7100")
    healthcheck.add_argument("--token", default=None, help="auth token for a tokened daemon")
    healthcheck.add_argument("--tenant", default=None, help="tenant name (open daemons only)")
    healthcheck.add_argument("--json", action="store_true", help="print the full report as JSON")

    alerts = subcommands.add_parser(
        "alerts",
        help="show a daemon's alert rules, firing alerts, and recent transitions",
    )
    alerts.add_argument("url", help="daemon URL, e.g. pass://127.0.0.1:7100")
    alerts.add_argument("--token", default=None, help="auth token for a tokened daemon")
    alerts.add_argument("--tenant", default=None, help="tenant name (open daemons only)")
    alerts.add_argument("--json", action="store_true", help="print the full snapshot as JSON")

    tracecmd = subcommands.add_parser(
        "trace",
        help="run a traced workload + query and export Chrome trace-event JSON",
    )
    tracecmd.add_argument("domain", choices=sorted(_WORKLOADS))
    tracecmd.add_argument(
        "predicates",
        nargs="*",
        help="predicates, e.g. city=london stage=raw sequence>=10 name~cam",
    )
    tracecmd.add_argument(
        "--window",
        default=None,
        metavar="START,END",
        help="AND a time-window overlap (seconds), e.g. --window 0,1800",
    )
    tracecmd.add_argument(
        "--near",
        default=None,
        metavar="LAT,LON,KM",
        help="AND a geographic radius, e.g. --near 51.5,-0.12,5",
    )
    tracecmd.add_argument("--hours", type=float, default=1.0)
    tracecmd.add_argument("--seed", type=int, default=0)
    tracecmd.add_argument(
        "--store",
        default="memory://",
        help="connect() URL of the target (default: memory://); "
        "a pass:// URL stitches the daemon's spans into the same tree",
    )
    tracecmd.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the trace JSON here (default: print it)",
    )

    simulate = subcommands.add_parser(
        "simulate",
        help="publish a workload through N concurrent simulated clients (repro.sim)",
    )
    simulate.add_argument("domain", choices=sorted(_WORKLOADS), help="which domain to simulate")
    simulate.add_argument(
        "--store",
        default="centralized://",
        help="connect() URL of an architecture model (local stores have no network)",
    )
    simulate.add_argument(
        "--clients", type=int, default=8, help="concurrent closed-loop clients (default: 8)"
    )
    simulate.add_argument(
        "--ops", type=int, default=None, help="cap on total tuple sets published"
    )
    simulate.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="JSON file of timed partition/heal/churn events",
    )
    simulate.add_argument(
        "--service-ms",
        type=float,
        default=0.05,
        help="per-message service time at each site server (default: 0.05)",
    )
    simulate.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="propagation latency jitter fraction in [0, 1) (default: 0)",
    )
    simulate.add_argument(
        "--think-ms", type=float, default=0.0, help="client pause between operations"
    )
    simulate.add_argument("--hours", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=0)
    return parser


def _build_client(domain: str, hours: float, seed: int, url: str = "memory://"):
    """Generate a workload and publish it (batched) into a connect() target."""
    workload = _WORKLOADS[domain](seed=seed)
    raw, derived = workload.all_sets(hours=hours)
    client = connect(url)
    client.publish_many(raw + derived)
    client.refresh()
    return workload, client, raw, derived


def _build_store(domain: str, hours: float, seed: int):
    """Deprecated: kept for embedders; use :func:`_build_client` / connect()."""
    workload, client, raw, derived = _build_client(domain, hours, seed, "memory://")
    return workload, client.store, raw, derived


def _cmd_experiments(args, out) -> int:
    ids = [i.upper() for i in args.ids] if args.ids else None
    blocks = []
    for result in run_all(ids):
        block = format_experiment(result)
        blocks.append(block)
        print(block, file=out)
        print(file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(blocks) + "\n")
    return 0


def _cmd_workload(args, out) -> int:
    workload, client, raw, derived = _build_client(args.domain, args.hours, args.seed, args.store)
    facts = workload.describe()
    stats = client.stats()
    print(f"domain:            {facts['domain']}", file=out)
    print(f"networks:          {', '.join(facts['networks'])}", file=out)
    print(f"sensors:           {facts['sensors']}", file=out)
    print(f"simulated hours:   {args.hours}", file=out)
    print(f"store:             {args.store} (target: {stats['target']})", file=out)
    print(f"raw tuple sets:    {len(raw)}", file=out)
    print(f"derived tuple sets:{len(derived)}", file=out)
    print(f"readings:          {sum(len(ts) for ts in raw)}", file=out)
    store = getattr(client, "store", None)
    if store is not None:
        print(f"store size:        {len(store)} records", file=out)
        print(
            f"derivation depth:  {max(store.graph.ancestry_depth_distribution() or {0: 0})}",
            file=out,
        )
        violations = store.verify_invariants()
        print(f"invariants:        {'ok' if not violations else violations}", file=out)
    else:
        print(f"published:         {stats.get('published', len(raw) + len(derived))}", file=out)
    return 0


def _coerce_scalar(raw_value: str):
    """CLI values arrive as text; prefer int, then float, then string."""
    for caster in (int, float):
        try:
            return caster(raw_value)
        except ValueError:
            continue
    return raw_value


_CLI_OPERATORS = (
    (">=", lambda name, value: Q.attr(name) >= value),
    ("<=", lambda name, value: Q.attr(name) <= value),
    (">", lambda name, value: Q.attr(name) > value),
    ("<", lambda name, value: Q.attr(name) < value),
    ("=", lambda name, value: Q.attr(name) == value),
    ("~", lambda name, value: Q.attr(name).contains(str(value))),
)


def _parse_cli_predicate(text: str):
    """One ``name<op>value`` term, or None for malformed input.

    The *leftmost* operator occurrence splits name from value (longest
    operator winning a tie), so values containing operator characters
    (``note=x>y``) parse as the user wrote them.
    """
    best = None
    for op, build in _CLI_OPERATORS:
        position = text.find(op)
        if position <= 0:
            continue  # no hit, or an empty attribute name
        if best is None or position < best[0] or (position == best[0] and len(op) > len(best[1])):
            best = (position, op, build)
    if best is None:
        return None
    position, op, build = best
    name = text[:position]
    raw_value = text[position + len(op):]
    return build(name, _coerce_scalar(raw_value))


def _build_explain_predicate(args):
    """AND together the term predicates and the --window/--near options."""
    from repro.core.attributes import GeoPoint
    from repro.errors import ConfigurationError, QueryError

    parts = []
    for text in args.predicates:
        predicate = _parse_cli_predicate(text)
        if predicate is None:
            return None, f"malformed predicate {text!r} (expected name=value or name<=value ...)"
        parts.append(predicate)
    if args.window is not None:
        try:
            start_text, _, end_text = args.window.partition(",")
            parts.append(Q.between(float(start_text), float(end_text)))
        except (ValueError, QueryError) as error:
            return None, f"bad --window {args.window!r} (expected START,END seconds): {error}"
    if args.near is not None:
        try:
            lat_text, lon_text, radius_text = args.near.split(",")
            radius = float(radius_text)
            if radius < 0:
                raise ConfigurationError("radius must be non-negative")
            parts.append(Q.near(GeoPoint(float(lat_text), float(lon_text)), radius))
        except (ValueError, ConfigurationError) as error:
            return None, f"bad --near {args.near!r} (expected LAT,LON,KM): {error}"
    if not parts:
        return Q.everything(), None
    if len(parts) == 1:
        return parts[0], None
    return Q.all(*parts), None


def _cmd_explain(args, out) -> int:
    predicate, error = _build_explain_predicate(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _, client, *_ = _build_client(args.domain, args.hours, args.seed, args.store)
    explain = client.explain(predicate)
    print(explain.format(), file=out)
    return 0


def _summarise_record(record) -> str:
    return ", ".join(
        f"{key}={record.get(key)}"
        for key in ("domain", "network", "city", "stage", "window_start")
        if record.get(key) is not None
    )


def _cmd_watch(args, out) -> int:
    """Subscribe first, then stream the generated workload in: matches print live."""
    from repro.stream import MatchEvent, WindowEvent, WindowSpec
    from repro.errors import ConfigurationError

    predicate, error = _build_explain_predicate(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    window = None
    if args.every is not None:
        try:
            window = WindowSpec(
                size_seconds=args.every,
                slide_seconds=args.slide,
                aggregate=args.aggregate,
                value_attr=args.value_attr,
                group_by=args.group_by,
            )
        except ConfigurationError as exc:
            print(f"error: bad window aggregation: {exc}", file=sys.stderr)
            return 2
    elif (
        args.slide is not None
        or args.value_attr is not None
        or args.group_by is not None
        or args.aggregate != "count"
    ):
        print(
            "error: --slide/--value-attr/--group-by/--aggregate need --every SECONDS",
            file=sys.stderr,
        )
        return 2

    workload = _WORKLOADS[args.domain](seed=args.seed)
    raw, derived = workload.all_sets(hours=args.hours)
    client = connect(args.store)
    shown = 0

    def on_event(event) -> None:
        nonlocal shown
        if shown >= args.limit:
            return
        shown += 1
        if isinstance(event, WindowEvent):
            group = "" if event.group is None else f" {args.group_by}={event.group}"
            value = "-" if event.value is None else f"{event.value:g}"
            print(
                f"window [{event.window_start:g}, {event.window_end:g})"
                f"{group}  {event.aggregate}={value} over {event.count} match(es)",
                file=out,
            )
        elif isinstance(event, MatchEvent):
            print(f"match {event.pname.short}  {_summarise_record(event.record)}", file=out)

    subscription = client.subscribe(predicate, callback=on_event, window=window)
    client.publish_many(raw + derived)
    client.refresh()
    if window is not None:
        client.flush_windows()  # trailing partial windows still report

    facts = subscription.stats()
    print(
        f"-- watched {len(raw) + len(derived)} published tuple set(s): "
        f"{facts['matched']} event(s) matched, {facts['delivered']} delivered"
        + (f" ({shown} shown)" if facts["delivered"] > shown else ""),
        file=out,
    )
    stats = client.stats()
    notify = stats.get("traffic", {}).get("by_kind", {}).get("notify")
    if notify is not None:
        print(
            f"-- dissemination: {notify['messages']} notify message(s), "
            f"{notify['bytes']} bytes over the simulated network",
            file=out,
        )
    return 0


def _format_summary(summary) -> str:
    return (
        f"mean {summary['mean']:g}  p50 {summary['p50']:g}  "
        f"p95 {summary['p95']:g}  p99 {summary['p99']:g}  max {summary['max']:g}"
    )


def _cmd_simulate(args, out) -> int:
    """Drive a concurrent-client discrete-event run and print its report."""
    from repro.errors import ConfigurationError
    from repro.sim import Schedule, SimConfig

    schedule = None
    if args.schedule is not None:
        try:
            schedule = Schedule.load(args.schedule)
        except (OSError, ConfigurationError) as error:
            print(f"error: cannot load schedule {args.schedule!r}: {error}", file=sys.stderr)
            return 2
    try:
        config = SimConfig(
            seed=args.seed,
            service_ms_per_message=args.service_ms,
            jitter=args.jitter,
            journal=True,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    workload = _WORKLOADS[args.domain](seed=args.seed)
    raw, derived = workload.all_sets(hours=args.hours)
    tuple_sets = raw + derived
    if args.ops is not None:
        tuple_sets = tuple_sets[: args.ops]

    client = connect(args.store)
    if not hasattr(client, "simulate"):
        print(
            f"error: {args.store!r} is a local store; "
            "simulate needs an architecture model (e.g. centralized://, dht://?sites=32)",
            file=sys.stderr,
        )
        return 2
    try:
        report = client.simulate(
            tuple_sets,
            clients=args.clients,
            config=config,
            schedule=schedule,
            think_ms=args.think_ms,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"target:             {args.store} ({client.target})", file=out)
    print(f"clients:            {report.clients} concurrent, closed loop", file=out)
    print(
        f"operations:         {len(report.records) - report.failed()} ok, "
        f"{report.failed()} failed",
        file=out,
    )
    print(f"virtual time:       {report.virtual_ms:g} ms", file=out)
    print(
        f"kernel events:      {report.events} "
        f"({report.events_per_second():,.0f} events/s wall)",
        file=out,
    )
    print(f"latency (all):      {_format_summary(report.summary())}", file=out)
    for kind, summary in report.by_kind().items():
        print(f"  {kind:<17} {_format_summary(summary)}", file=out)
    busiest = sorted(
        report.sites.items(), key=lambda item: -item[1]["utilization"]
    )[:5]
    if busiest:
        print("site utilization (top 5):", file=out)
        for site, facts in busiest:
            print(
                f"  {site:<17} {facts['utilization'] * 100:5.1f}%  "
                f"served {facts['served']}  mean wait {facts['mean_wait_ms']:g} ms",
                file=out,
            )
    if report.schedule_applied:
        print(
            f"schedule:           {len(report.schedule_applied)} action(s): "
            + "; ".join(report.schedule_applied),
            file=out,
        )
    if report.notifications_lost:
        print(f"notifications lost: {report.notifications_lost}", file=out)
    print(f"journal:            sha256 {report.journal_digest}", file=out)
    return 0


def _cmd_lineage(args, out) -> int:
    """Lineage inspection: ancestors / path / stats over a generated workload."""
    _, client, raw, derived = _build_client(args.domain, args.hours, args.seed, args.store)
    if args.lineage_command == "stats":
        stats = client.stats()
        planner = stats.get("planner") or {}
        graph = (planner.get("statistics") or {}).get("graph")
        if graph is None:
            print(f"target: {args.store} ({stats['target']})", file=out)
            print("no per-store graph statistics on this target (model facts below)", file=out)
            for key in ("name", "supports_lineage", "published", "queries_run", "sites"):
                if key in stats:
                    print(f"  {key}: {stats[key]}", file=out)
            return 0
        closure = stats.get("closure", {})
        print(f"target:            {args.store} ({stats['target']})", file=out)
        print(f"records:           {stats['records']}", file=out)
        print(f"graph nodes/edges: {graph['nodes']} / {graph['edges']}", file=out)
        print(f"derivation depth:  max {graph['max_depth']}  mean {graph['mean_depth']}", file=out)
        print(f"fan-in:            max {graph['max_fan_in']}  mean {graph['mean_fan_in']}", file=out)
        print(f"expected reach:    {graph['expected_reach']} (planner estimate)", file=out)
        print(f"closure strategy:  {closure.get('strategy', '?')}", file=out)
        for key in ("chains", "label_entries", "rebuilds", "incremental_merges", "dirty_edges"):
            if key in closure:
                print(f"  {key}: {closure[key]}", file=out)
        busiest = sorted(graph["depth_histogram"].items())[-5:]
        print(
            "depth histogram:   " + "  ".join(f"{d}:{count}" for d, count in busiest)
            + ("  (deepest 5 buckets)" if len(graph["depth_histogram"]) > 5 else ""),
            file=out,
        )
        return 0

    if not derived:
        print("error: this workload produced no derived tuple sets", file=sys.stderr)
        return 2
    try:
        focus = derived[args.focus]
    except IndexError:
        print(
            f"error: --focus {args.focus} out of range ({len(derived)} derived sets)",
            file=sys.stderr,
        )
        return 2

    if args.lineage_command == "ancestors":
        answer = client.ancestors(focus, limit=args.limit, offset=args.offset)
        print(
            f"{answer.total} ancestor(s) of {focus.pname.short} "
            f"(showing {len(answer)} from offset {args.offset})",
            file=out,
        )
        for pname in answer:
            record = client.describe_record(pname)
            suffix = f"  {_summarise_record(record)}" if record is not None else ""
            print(f"  {pname.short}{suffix}", file=out)
        return 0

    # path: needs the local store's graph (models return sets, not paths)
    store = getattr(client, "store", None)
    if store is None:
        print(
            "error: 'lineage path' needs a local target (memory:// or sqlite://); "
            "architecture models answer closure sets, not paths",
            file=sys.stderr,
        )
        return 2
    sources = sorted(store.raw_sources(focus.pname), key=lambda p: p.digest)
    if not sources:
        print(f"{focus.pname.short} is raw data; it has no derivation path", file=out)
        return 0
    path = store.derivation_path(focus.pname, sources[0])
    if path is None:
        print("error: no derivation path found", file=sys.stderr)
        return 2
    print(f"derivation path ({len(path)} hop(s), most derived first):", file=out)
    for pname in path:
        record = client.describe_record(pname)
        suffix = f"  {_summarise_record(record)}" if record is not None else ""
        print(f"  {pname.short}{suffix}", file=out)
    return 0


def _cmd_query(args, out) -> int:
    if "=" not in args.predicate:
        print("error: predicate must look like name=value", file=sys.stderr)
        return 2
    name, _, raw_value = args.predicate.partition("=")
    value = _coerce_scalar(raw_value)
    _, client, *_ = _build_client(args.domain, args.hours, args.seed, args.store)
    answer = client.query(Q.attr(name) == value, limit=args.limit)
    print(f"{answer.total} data sets match {name}={value!r}", file=out)
    for pname in answer:
        record = client.describe_record(pname)
        if record is None:
            print(f"  {pname.short}", file=out)
            continue
        summary = ", ".join(
            f"{key}={record.get(key)}"
            for key in ("domain", "network", "stage", "window_start")
            if record.get(key) is not None
        )
        print(f"  {pname.short}  {summary}", file=out)
    if answer.has_more:
        print(f"  ... and {answer.total - len(answer)} more", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    """Run the repro.server daemon in the foreground until interrupted."""
    import logging

    from repro.errors import PassError
    from repro.server import PassDaemon

    tokens = None
    if args.token:
        tokens = {}
        for entry in args.token:
            token, separator, tenant = entry.partition("=")
            if not separator or not token or not tenant:
                print(f"error: bad --token {entry!r} (expected TOKEN=TENANT)", file=sys.stderr)
                return 2
            tokens[token] = tenant
    # The access log goes through stdlib logging (stderr), never print,
    # so piping the banner stays clean and levels filter server noise.
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s %(message)s",
    )
    sample_interval = args.sample_interval if args.sample_interval > 0 else None
    try:
        daemon = PassDaemon(
            host=args.host,
            port=args.port,
            backend_url=args.store,
            tokens=tokens,
            slow_query_ms=args.slow_query_ms,
            sample_interval_s=sample_interval,
            alert_rules=args.alert_rules,
            metrics_port=args.metrics_port,
        )
    except (OSError, ValueError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    address = daemon.start()
    auth = f"{len(tokens)} token(s)" if tokens else "open (no auth)"
    # One banner line on stdout: scripts (and bench_obs.py) readline it
    # for the bound address.  Metrics-endpoint facts go to the logger.
    if daemon.metrics_address is not None:
        logging.getLogger("repro.server").info(
            "metrics endpoint at http://%s:%d/metrics",
            daemon.metrics_address.host,
            daemon.metrics_address.port,
        )
    print(f"serving {args.store} at {address.url}  [{auth}]", file=out)
    out.flush()
    try:
        daemon.wait()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        daemon.stop()
    return 0


def _format_top_snapshot(snapshot: dict, previous: Optional[dict], interval: float) -> str:
    """Render one ``metrics`` snapshot as the ``repro top`` screen."""
    lines = [
        f"daemon up {snapshot.get('uptime_s', 0.0):.1f}s   "
        f"tenants: {len(snapshot.get('tenants', {}))}"
    ]
    previous_tenants = (previous or {}).get("tenants", {})
    for tenant, facts in sorted(snapshot.get("tenants", {}).items()):
        lines.append(
            f"tenant {tenant}: {facts.get('active_subscriptions', 0)} "
            "active subscription(s)"
        )
        ops = facts.get("ops", {})
        if not ops:
            lines.append("  (no operations yet)")
            continue
        lines.append(
            f"  {'op':<22}{'count':>8}{'err':>6}{'rate/s':>9}"
            f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}"
        )
        before = previous_tenants.get(tenant, {}).get("ops", {})
        for op, stats in ops.items():
            if op in before and interval > 0:
                # Delta rate over the poll interval: what "now" looks like.
                rate = (stats["count"] - before[op]["count"]) / interval
            else:
                rate = stats.get("rate_per_s", 0.0)

            def _ms(value) -> str:
                return "-" if value is None else f"{value:.2f}"

            lines.append(
                f"  {op:<22}{stats['count']:>8}{stats['errors']:>6}{rate:>9.2f}"
                f"{_ms(stats.get('p50_ms')):>9}{_ms(stats.get('p95_ms')):>9}"
                f"{_ms(stats.get('p99_ms')):>9}"
            )
    slow = snapshot.get("slow_queries", [])
    if slow:
        lines.append(f"slow queries ({len(slow)}, newest last):")
        for entry in slow[-5:]:
            # The misestimate ratio is the "why": a big value means the
            # planner priced the query from a stale/wrong estimate.
            ratio = entry.get("misestimate")
            suffix = "" if ratio is None else f"  misestimate {ratio:.2f}x"
            lines.append(
                f"  [{entry['tenant']}] {entry['duration_ms']:.3f} ms{suffix}"
            )
    return "\n".join(lines)


def _introspection_url(args) -> str:
    """Fold ``--token``/``--tenant`` into a daemon URL's query string."""
    url = args.url
    extras = [
        f"{key}={value}"
        for key, value in (("token", args.token), ("tenant", args.tenant))
        if value is not None
    ]
    if extras:
        url = url + ("&" if "?" in url else "?") + "&".join(extras)
    return url


def _cmd_top(args, out) -> int:
    """Poll a daemon's ``metrics`` op and render it, ``top``-style."""
    import json
    import time as _time

    from repro.errors import NetworkError, PassError

    url = _introspection_url(args)

    def _connect():
        client = connect(url)
        if not hasattr(client, "daemon_metrics"):
            client.close()
            raise PassError(f"{args.url!r} is not a pass:// daemon URL")
        return client

    try:
        client = _connect()
    except (NetworkError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    iterations = 1 if args.once else args.iterations
    previous = None
    shown = 0
    retries_left = max(0, args.reconnect_attempts)
    try:
        while True:
            try:
                snapshot = client.daemon_metrics()
            except NetworkError as error:
                # The daemon restarted (or dropped us) mid-watch: keep
                # the screen alive and re-dial with capped backoff.
                if retries_left <= 0:
                    print(f"error: daemon went away: {error}", file=sys.stderr)
                    return 1
                attempt = args.reconnect_attempts - retries_left
                retries_left -= 1
                delay = min(10.0, max(0.1, args.interval) * (2**attempt))
                print(
                    f"connection lost ({error}); retrying in {delay:.1f}s",
                    file=sys.stderr,
                )
                _time.sleep(delay)
                client.close()
                try:
                    client = _connect()
                except (NetworkError, PassError):
                    continue
                previous = None  # rates across a restart are meaningless
                continue
            retries_left = max(0, args.reconnect_attempts)
            if args.json:
                print(json.dumps(snapshot, sort_keys=True), file=out)
            else:
                if shown:
                    print(file=out)
                print(_format_top_snapshot(snapshot, previous, args.interval), file=out)
            out.flush()
            shown += 1
            previous = snapshot
            if iterations is not None and shown >= iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_healthcheck(args, out) -> int:
    """Probe a daemon's ``health`` op; map its status to an exit code."""
    import json

    from repro.errors import NetworkError, PassError

    try:
        client = connect(_introspection_url(args))
    except (NetworkError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    try:
        report = client.health()
    except (NetworkError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        client.close()
    if args.json:
        print(json.dumps(report, sort_keys=True), file=out)
    else:
        print(f"status: {report['status']}", file=out)
        for name, check in sorted(report.get("checks", {}).items()):
            marker = "ok" if check.get("ok") else ("FAIL" if check.get("critical") else "warn")
            print(f"  [{marker:>4}] {name}: {check.get('detail', '')}", file=out)
    return {"ok": 0, "degraded": 1, "failing": 2}.get(report.get("status"), 3)


def _cmd_alerts(args, out) -> int:
    """Show a daemon's alert rules, firing alerts and transitions."""
    import json

    from repro.errors import NetworkError, PassError

    try:
        client = connect(_introspection_url(args))
    except (NetworkError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if not hasattr(client, "alerts"):
            print(f"error: {args.url!r} is not a pass:// daemon URL", file=sys.stderr)
            return 2
        snapshot = client.alerts()
    except (NetworkError, PassError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if args.json:
        print(json.dumps(snapshot, sort_keys=True), file=out)
        return 0
    if not snapshot.get("enabled"):
        print(f"alerts disabled: {snapshot.get('reason', 'unknown')}", file=out)
        return 0
    rules = snapshot.get("rules", [])
    firing = snapshot.get("firing", [])
    print(f"{len(rules)} rule(s), {len(firing)} firing", file=out)
    for rule in rules:
        status = rule.get("status", "ok")
        print(f"  [{status:>7}] {rule['name']}: {rule.get('condition', '')}", file=out)
    transitions = snapshot.get("transitions", [])
    if transitions:
        print(f"recent transitions ({len(transitions)}, newest last):", file=out)
        for entry in transitions[-10:]:
            print(
                f"  t={entry['t']:.1f} {entry['rule']}: "
                f"{entry['from']} -> {entry['to']} (value={entry['value']})",
                file=out,
            )
    return 0


def _cmd_trace(args, out) -> int:
    """Run a traced workload + query; export Chrome trace-event JSON."""
    import json

    from repro.obs import trace as tracing

    predicate, error = _build_explain_predicate(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    tracing.enable()
    try:
        with tracing.span("cli.trace", attrs={"domain": args.domain, "store": args.store}):
            _, client, *_ = _build_client(args.domain, args.hours, args.seed, args.store)
            answer = client.query(predicate)
        collected = tracing.spans()
        payload = tracing.chrome_trace(collected)
    finally:
        tracing.disable()
    text = json.dumps(payload, indent=2)
    traces = {span.trace_id for span in collected}
    summary = (
        f"-- {len(collected)} span(s) in {len(traces)} trace(s); "
        f"query matched {answer.total} record(s)"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"{summary}; wrote {args.output}", file=out)
    else:
        print(text, file=out)
        print(summary, file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(args, out)
    if args.command == "workload":
        return _cmd_workload(args, out)
    if args.command == "query":
        return _cmd_query(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "watch":
        return _cmd_watch(args, out)
    if args.command == "lineage":
        return _cmd_lineage(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "top":
        return _cmd_top(args, out)
    if args.command == "healthcheck":
        return _cmd_healthcheck(args, out)
    if args.command == "alerts":
        return _cmd_alerts(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "simulate":
        return _cmd_simulate(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
