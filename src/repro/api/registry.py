"""URL-style connection registry for the :class:`~repro.api.client.PassClient` façade.

The paper's point is that the *same* provenance operations should be
comparable across a local PASS and every Section IV distributed
architecture.  The registry makes the target a configuration detail:

    connect("memory://")                     # local in-memory PASS
    connect("sqlite:///pass.db")             # local durable PASS
    connect("centralized://?cities=london,boston")
    connect("dht://?sites=32")               # 32-node Chord-like ring

Each scheme is registered by the module that implements the target
(:mod:`repro.core.pass_store` for the local stores, each model module in
:mod:`repro.distributed` for its architecture), so adding a backend or a
model automatically extends ``connect()``.

Parsing is strict: unknown schemes, malformed parameter values, unused
parameters and paths a scheme does not accept all raise
:class:`~repro.errors.ConfigurationError` rather than being silently
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ConfigurationError

__all__ = [
    "ConnectionSpec",
    "connect",
    "known_schemes",
    "parse_url",
    "register_scheme",
]

#: scheme name -> factory(spec) -> PassClient
_REGISTRY: Dict[str, Callable] = {}


@dataclass
class ConnectionSpec:
    """A parsed connection URL: scheme, path and query parameters.

    Factories read parameters through the typed accessors below; every
    accessor marks its parameter as consumed so :func:`connect` can
    reject parameters no factory understood (a misspelled ``?sties=32``
    should fail loudly, not silently fall back to a default).
    """

    scheme: str
    path: str = ""
    params: Dict[str, str] = field(default_factory=dict)
    url: str = ""
    _consumed: Set[str] = field(default_factory=set, repr=False)
    _path_used: bool = field(default=False, repr=False)

    # -- typed parameter accessors -------------------------------------
    def text(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """A string parameter, or ``default`` when absent."""
        self._consumed.add(name)
        return self.params.get(name, default)

    def integer(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """An integer parameter; a non-integer value is a configuration error."""
        raw = self.text(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigurationError(
                f"parameter {name!r} of {self.url!r} must be an integer, got {raw!r}"
            ) from None

    def number(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """A float parameter; a non-numeric value is a configuration error."""
        raw = self.text(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ConfigurationError(
                f"parameter {name!r} of {self.url!r} must be a number, got {raw!r}"
            ) from None

    def listing(self, name: str, default: Optional[List[str]] = None) -> Optional[List[str]]:
        """A comma-separated list parameter (``?cities=london,boston``)."""
        raw = self.text(name)
        if raw is None:
            return default
        items = [item.strip() for item in raw.split(",") if item.strip()]
        if not items:
            raise ConfigurationError(f"parameter {name!r} of {self.url!r} is an empty list")
        return items

    def database_path(self) -> str:
        """The path component interpreted as a database file.

        ``sqlite:///pass.db`` is the relative file ``pass.db``,
        ``sqlite:////var/pass.db`` is absolute, and an empty path means a
        private in-memory database (the SQLAlchemy convention).
        """
        self._path_used = True
        raw = self.path
        if raw.startswith("/"):
            raw = raw[1:]
        return raw or ":memory:"

    def endpoint(self, default_port: Optional[int] = None) -> tuple:
        """The path component interpreted as a ``host:port`` endpoint.

        ``pass://127.0.0.1:7100`` parses to ``("127.0.0.1", 7100)``; a
        missing port falls back to ``default_port`` (or is a
        configuration error when no default exists).
        """
        self._path_used = True
        raw = self.path.rstrip("/")
        host, _, port_text = raw.partition(":")
        if not host:
            raise ConfigurationError(
                f"URL {self.url!r} needs a host, e.g. '{self.scheme}://127.0.0.1:7100'"
            )
        if not port_text:
            if default_port is None:
                raise ConfigurationError(
                    f"URL {self.url!r} needs a port, e.g. '{self.scheme}://{host}:7100'"
                )
            return host, default_port
        try:
            return host, int(port_text)
        except ValueError:
            raise ConfigurationError(
                f"port of {self.url!r} must be an integer, got {port_text!r}"
            ) from None

    # -- strictness bookkeeping ----------------------------------------
    def unconsumed(self) -> List[str]:
        """Parameters no accessor has read (i.e. the factory ignored them)."""
        return sorted(set(self.params) - self._consumed)

    def path_was_used(self) -> bool:
        """True when the factory interpreted the path component."""
        return self._path_used


def parse_url(url: str) -> ConnectionSpec:
    """Split a connection URL into a :class:`ConnectionSpec`."""
    parts = urlsplit(url)
    if not parts.scheme:
        raise ConfigurationError(
            f"connection URL {url!r} has no scheme; expected e.g. 'memory://' or 'dht://?sites=32'"
        )
    pairs = parse_qsl(parts.query, keep_blank_values=True)
    params: Dict[str, str] = {}
    for name, value in pairs:
        if name in params:
            raise ConfigurationError(f"duplicate parameter {name!r} in {url!r}")
        params[name] = value
    return ConnectionSpec(
        scheme=parts.scheme,
        path=unquote(parts.netloc + parts.path),
        params=params,
        url=url,
    )


def register_scheme(scheme: str, *aliases: str) -> Callable:
    """Class/function decorator registering a connect factory for ``scheme``.

    The factory receives a :class:`ConnectionSpec` and returns a
    :class:`~repro.api.client.PassClient`.
    """

    def decorator(factory: Callable) -> Callable:
        for name in (scheme, *aliases):
            _REGISTRY[name] = factory
        return factory

    return decorator


def known_schemes() -> List[str]:
    """Every scheme ``connect`` currently understands."""
    _load_builtin_schemes()
    return sorted(_REGISTRY)


def _load_builtin_schemes() -> None:
    """Import the modules that register the shipped schemes.

    Registration rides on module import (each target registers itself),
    so connect() only has to make sure those modules are loaded.
    """
    import repro.core.pass_store  # noqa: F401  registers memory:// and sqlite://
    import repro.distributed  # noqa: F401  registers the Section IV architectures
    import repro.server.remote  # noqa: F401  registers pass:// (live daemon)


def connect(url: str):
    """Open a :class:`~repro.api.client.PassClient` onto the target named by ``url``.

    This is the one constructor of the unified API: the same client
    protocol (``publish``, ``publish_many``, ``query``, ``ancestors``,
    ``descendants``, ``locate``, ``stats``) comes back whatever the
    target -- a local in-memory or SQLite-backed PASS, or any of the
    paper's architecture models over a simulated topology.
    """
    spec = parse_url(url)
    _load_builtin_schemes()
    try:
        factory = _REGISTRY[spec.scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown connection scheme {spec.scheme!r}; known schemes: {sorted(_REGISTRY)}"
        ) from None
    client = factory(spec)
    try:
        leftover = spec.unconsumed()
        if leftover:
            raise ConfigurationError(
                f"unknown parameter(s) {leftover} for scheme {spec.scheme!r} in {url!r}"
            )
        if spec.path and not spec.path_was_used():
            raise ConfigurationError(
                f"scheme {spec.scheme!r} takes no path, got {spec.path!r} in {url!r} "
                "(did you mean '?' before the parameters?)"
            )
    except ConfigurationError:
        # Don't leak the freshly opened target (e.g. a live SQLite
        # connection) when the URL fails the strictness checks.
        client.close()
        raise
    return client
