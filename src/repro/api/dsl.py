"""A fluent query-builder DSL that lowers to the :mod:`repro.core.query` algebra.

The predicate classes are the execution model; spelling them out is
verbose for the common cases.  ``Q`` builds them from ordinary Python
expressions::

    from repro.api import Q

    Q.attr("patient") == "p1"                  # AttributeEquals
    Q.attr("heart_rate") > 120                 # AttributeRange (open low bound)
    Q.attr("city").one_of("london", "boston")  # AttributeIn
    (Q.attr("domain") == "traffic") & Q.derived_from(pname)

Everything the DSL produces *is* a :class:`~repro.core.query.Predicate`,
so the existing combinators (``&``, ``|``, ``~``) and every execution
path (local store, architecture models) work unchanged -- the DSL is
sugar, not a second query engine.

``Q.find(...)`` starts a :class:`QueryBuilder` for the execution options
(:class:`~repro.core.query.Query` fields: limit, ordering, removed-data
visibility).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.attributes import AttributeValue, GeoPoint
from repro.core.provenance import PName
from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Predicate,
    Query,
    TimeWindowOverlaps,
)
from repro.errors import QueryError

__all__ = ["Q", "Attr", "QueryBuilder", "as_query", "coerce_pname"]


def coerce_pname(value) -> PName:
    """Accept a PName, or anything carrying one (TupleSet, ProvenanceRecord)."""
    if isinstance(value, PName):
        return value
    pname = getattr(value, "pname", None)
    if isinstance(pname, PName):
        return pname
    if callable(pname):
        produced = pname()
        if isinstance(produced, PName):
            return produced
    raise QueryError(f"expected a PName (or an object carrying one), got {value!r}")


class Attr:
    """One attribute name, waiting for a comparison to become a predicate.

    Comparison operators return :class:`~repro.core.query.Predicate`
    instances, so an ``Attr`` deliberately is not hashable or usable in
    boolean tests itself.
    """

    __slots__ = ("name",)
    __hash__ = None  # type: ignore[assignment]

    def __init__(self, name: str) -> None:
        if not name:
            raise QueryError("attribute name must be non-empty")
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Q.attr({self.name!r})"

    # -- comparisons -> predicates --------------------------------------
    def __eq__(self, value) -> Predicate:  # type: ignore[override]
        return AttributeEquals(self.name, value)

    def __ne__(self, value) -> Predicate:  # type: ignore[override]
        return Not(AttributeEquals(self.name, value))

    def __lt__(self, value) -> Predicate:
        return AttributeRange(self.name, high=value, include_high=False)

    def __le__(self, value) -> Predicate:
        return AttributeRange(self.name, high=value)

    def __gt__(self, value) -> Predicate:
        return AttributeRange(self.name, low=value, include_low=False)

    def __ge__(self, value) -> Predicate:
        return AttributeRange(self.name, low=value)

    # -- named forms -----------------------------------------------------
    def between(
        self,
        low: Optional[AttributeValue] = None,
        high: Optional[AttributeValue] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Predicate:
        """``low <= attr <= high`` (either bound may be None)."""
        return AttributeRange(self.name, low, high, include_low, include_high)

    def contains(self, needle: str) -> Predicate:
        """Case-insensitive substring match on string attributes."""
        return AttributeContains(self.name, needle)

    def one_of(self, *values: AttributeValue) -> Predicate:
        """The attribute equals one of ``values``."""
        if not values:
            raise QueryError("one_of() needs at least one value")
        return AttributeIn(self.name, tuple(values))

    def exists(self) -> Predicate:
        """The record carries this attribute at all."""
        return AttributeExists(self.name)

    def near(self, centre: GeoPoint, radius_km: float) -> Predicate:
        """The attribute is a GeoPoint within ``radius_km`` of ``centre``."""
        return NearLocation(self.name, centre, radius_km)


class Q:
    """Entry points of the query DSL (never instantiated)."""

    def __init__(self) -> None:
        raise TypeError("Q is a namespace; use its classmethods")

    # -- attribute predicates -------------------------------------------
    @staticmethod
    def attr(name: str) -> Attr:
        """An attribute, ready for comparison: ``Q.attr('city') == 'london'``."""
        return Attr(name)

    # -- temporal / spatial fast paths ----------------------------------
    @staticmethod
    def between(start, end) -> Predicate:
        """Tuple sets whose time window overlaps ``[start, end]``.

        Accepts :class:`~repro.core.attributes.Timestamp` bounds (or
        plain seconds, which are coerced).  Served by the store's
        temporal index through the planner -- this is the indexed fast
        path for the paper's time-window query class.
        """
        from repro.core.attributes import Timestamp

        if not isinstance(start, Timestamp):
            start = Timestamp(float(start))
        if not isinstance(end, Timestamp):
            end = Timestamp(float(end))
        return TimeWindowOverlaps(start, end)

    @staticmethod
    def near(centre: GeoPoint, radius_km: float, attribute: str = "location") -> Predicate:
        """Tuple sets whose ``attribute`` lies within ``radius_km`` of ``centre``.

        With the default attribute (``location``, the one ingest feeds
        the spatial index) the planner serves this from the spatial grid
        index -- the indexed fast path for geographic-radius queries.
        """
        return NearLocation(attribute, centre, radius_km)

    # -- lineage predicates ---------------------------------------------
    @staticmethod
    def derived_from(ancestor, include_self: bool = False) -> Predicate:
        """Transitively derived from ``ancestor`` (the forward taint query)."""
        return DerivedFrom(coerce_pname(ancestor), include_self=include_self)

    @staticmethod
    def ancestor_of(descendant, include_self: bool = False) -> Predicate:
        """A transitive ancestor of ``descendant`` (the backward query)."""
        return AncestorOf(coerce_pname(descendant), include_self=include_self)

    # -- agents, annotations, rawness -----------------------------------
    @staticmethod
    def agent(name: str, kind: Optional[str] = None, version: Optional[str] = None) -> Predicate:
        """Some agent of the record matches by name (and kind/version)."""
        return AgentIs(name, kind=kind, version=version)

    @staticmethod
    def annotated(key: str, value: Optional[AttributeValue] = None) -> Predicate:
        """Some annotation has ``key`` (and ``value``, when given)."""
        return AnnotationMatches(key, value)

    @staticmethod
    def raw(raw: bool = True) -> Predicate:
        """A raw capture (no ancestors); ``Q.raw(False)`` for derived data."""
        return IsRaw(raw)

    # -- combinators -----------------------------------------------------
    @staticmethod
    def all(*parts: Predicate) -> Predicate:
        """Conjunction of several predicates."""
        return And(tuple(parts))

    @staticmethod
    def any(*parts: Predicate) -> Predicate:
        """Disjunction of several predicates."""
        return Or(tuple(parts))

    @staticmethod
    def none(part: Predicate) -> Predicate:
        """Negation (same as ``~part``)."""
        return Not(part)

    @staticmethod
    def everything() -> Predicate:
        """The trivial predicate matching every record."""
        return TRUE

    # -- execution options ----------------------------------------------
    @staticmethod
    def find(predicate: Optional[Predicate] = None) -> "QueryBuilder":
        """Start a builder for a full :class:`~repro.core.query.Query`."""
        return QueryBuilder(predicate if predicate is not None else TRUE)


class QueryBuilder:
    """Fluent construction of a :class:`~repro.core.query.Query` descriptor."""

    def __init__(self, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise QueryError(f"QueryBuilder needs a Predicate, got {predicate!r}")
        self._predicate = predicate
        self._limit: Optional[int] = None
        self._order_by: Optional[str] = None
        self._include_removed = True

    def where(self, predicate: Predicate) -> "QueryBuilder":
        """AND another predicate onto the builder."""
        self._predicate = self._predicate & predicate
        return self

    def limit(self, count: int) -> "QueryBuilder":
        """Return at most ``count`` records."""
        self._limit = count
        return self

    def order_by(self, attribute: str) -> "QueryBuilder":
        """Sort results by an attribute (records lacking it sort last)."""
        self._order_by = attribute
        return self

    def exclude_removed(self) -> "QueryBuilder":
        """Skip data sets whose readings were removed (P4 keeps their records)."""
        self._include_removed = False
        return self

    def include_removed(self) -> "QueryBuilder":
        """Include removed data sets (the default)."""
        self._include_removed = True
        return self

    def build(self) -> Query:
        """The finished query descriptor."""
        return Query(
            predicate=self._predicate,
            limit=self._limit,
            include_removed=self._include_removed,
            order_by=self._order_by,
        )


def as_query(queryish) -> Query:
    """Lower anything query-shaped to a :class:`~repro.core.query.Query`.

    Accepts ``None`` (match everything), a :class:`Predicate` (from the
    core algebra or the ``Q`` DSL), a :class:`QueryBuilder`, or a
    finished :class:`Query`.
    """
    if queryish is None:
        return Query()
    if isinstance(queryish, Query):
        return queryish
    if isinstance(queryish, QueryBuilder):
        return queryish.build()
    if isinstance(queryish, Predicate):
        return Query(predicate=queryish)
    if isinstance(queryish, Attr):
        raise QueryError(
            f"{queryish!r} is an attribute, not a predicate; compare it to a value first"
        )
    raise QueryError(f"cannot interpret {queryish!r} as a query")
