"""repro.api -- the unified PassClient façade.

One API over every provenance target this library implements: the local
PASS stores (in-memory or SQLite-backed) and all six Section IV
architecture models plus the locale-aware design.  Targets are opened
from URLs::

    from repro.api import connect, Q

    with connect("sqlite:///pass.db") as client:
        client.publish_many(tuple_sets)
        london = client.query(Q.attr("city") == "london", limit=10)
        lineage = client.ancestors(london.first())

See :mod:`repro.api.registry` for the URL grammar,
:mod:`repro.api.dsl` for the query DSL and :mod:`repro.api.client` for
the client protocol.

This module keeps its imports light on purpose: the registry, DSL and
result types load with :mod:`repro.core`, while the client classes (and
their dependency on :mod:`repro.distributed`) load lazily on first use,
so the scheme-registration shims in the store/model modules can import
``repro.api.registry`` without cycles.
"""

from repro.api.dsl import Q, QueryBuilder, as_query
from repro.api.registry import (
    ConnectionSpec,
    connect,
    known_schemes,
    parse_url,
    register_scheme,
)
from repro.api.results import Cost, Result

__all__ = [
    "ConnectionSpec",
    "Cost",
    "LocalClient",
    "ModelClient",
    "PassClient",
    "Q",
    "QueryBuilder",
    "Result",
    "as_query",
    "connect",
    "known_schemes",
    "parse_url",
    "register_scheme",
    "wrap",
]

_LAZY_CLIENT_NAMES = {"PassClient", "LocalClient", "ModelClient", "wrap"}


def __getattr__(name: str):
    if name in _LAZY_CLIENT_NAMES:
        from repro.api import client as _client

        return getattr(_client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
