"""The uniform result type of the :class:`~repro.api.client.PassClient` façade.

Before the façade existed, callers had to deal with two shapes: the
local :class:`~repro.core.pass_store.PassStore` returned bare ``PName``
lists while the architecture models returned
:class:`~repro.distributed.base.OperationResult` objects carrying cost.
:class:`Result` unifies them -- records, cost, notes and pagination in
one envelope, whatever the target answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set

from repro.core.provenance import PName

__all__ = ["Cost", "Result"]


@dataclass
class Cost:
    """What answering an operation cost.

    Local stores answer at zero simulated network cost; the architecture
    models charge the latency, messages and bytes of the simulated
    traffic plus the sites that had to participate.
    """

    latency_ms: float = 0.0
    messages: int = 0
    bytes: int = 0
    #: records materialized and evaluated to answer (planner-honest)
    rows_scanned: int = 0
    sites: List[str] = field(default_factory=list)

    def add(self, other: "Cost") -> "Cost":
        """Fold another cost into this one (batched operations)."""
        self.latency_ms += other.latency_ms
        self.messages += other.messages
        self.bytes += other.bytes
        self.rows_scanned += other.rows_scanned
        for site in other.sites:
            if site not in self.sites:
                self.sites.append(site)
        return self


@dataclass
class Result:
    """Records plus cost plus pagination: the façade's one answer shape.

    ``total`` is the number of matches *before* pagination; ``records``
    is the page actually returned (``offset`` into the full match list).
    For non-query operations (publish, lineage, locate) the page is the
    whole answer and ``total == len(records)``.
    """

    records: List[PName] = field(default_factory=list)
    cost: Cost = field(default_factory=Cost)
    notes: List[str] = field(default_factory=list)
    total: Optional[int] = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.total is None:
            self.total = len(self.records)

    # -- sequence-ish access --------------------------------------------
    def __iter__(self) -> Iterator[PName]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def first(self) -> Optional[PName]:
        """The first record of the page, or ``None`` when empty."""
        return self.records[0] if self.records else None

    def pname_set(self) -> Set[PName]:
        """The page as a set (order-insensitive comparisons in tests)."""
        return set(self.records)

    @property
    def has_more(self) -> bool:
        """True when pagination cut the answer short of ``total``."""
        return self.offset + len(self.records) < (self.total or 0)

    # -- construction / combination -------------------------------------
    @classmethod
    def from_operation(cls, operation, total: Optional[int] = None, offset: int = 0) -> "Result":
        """Wrap an architecture model's ``OperationResult``.

        Duck-typed on purpose: anything with ``pnames`` / ``latency_ms``
        / ``messages`` / ``bytes`` / ``sites_contacted`` / ``notes``
        converts, keeping this module free of a dependency on
        :mod:`repro.distributed`.
        """
        return cls(
            records=list(operation.pnames),
            cost=Cost(
                latency_ms=operation.latency_ms,
                messages=operation.messages,
                bytes=operation.bytes,
                rows_scanned=getattr(operation, "rows_scanned", 0),
                sites=list(operation.sites_contacted),
            ),
            notes=list(operation.notes),
            total=total,
            offset=offset,
        )

    def merge(self, other: "Result") -> "Result":
        """Fold another result into this one (used by batched publishes)."""
        self.records.extend(other.records)
        self.cost.add(other.cost)
        self.notes.extend(other.notes)
        self.total = (self.total or 0) + (other.total or 0)
        return self
