"""The :class:`PassClient` façade: one protocol over every provenance target.

Section IV/V of the paper argues the same provenance operations --
publish, attribute query, lineage closure, locate -- should be
comparable across a purely local PASS and every distributed
architecture.  Historically this codebase exposed two disjoint APIs for
that (``PassStore.ingest``/``query``/... and
``ArchitectureModel.publish``/``query``/...); the façade collapses them:

* :class:`LocalClient` speaks the protocol against a
  :class:`~repro.core.pass_store.PassStore`,
* :class:`ModelClient` speaks it against any
  :class:`~repro.distributed.base.ArchitectureModel` over its simulated
  topology,

and both return the uniform :class:`~repro.api.results.Result`
(records + cost + pagination).  Clients are constructed from URLs via
:func:`repro.api.connect` or wrapped around existing objects with
:func:`wrap`.

``publish_many`` is the batched hot path: the local store amortises
backend writes (one SQLite transaction per batch) and the centralized
model ships the whole batch in a single simulated round trip.
"""

from __future__ import annotations

import functools
import time
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.dsl import as_query, coerce_pname
from repro.api.results import Cost, Result
from repro.core.attributes import GeoPoint
from repro.core.pass_store import PassStore
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.tupleset import TupleSet
from repro.distributed.base import ArchitectureModel, OperationResult
from repro.errors import ConfigurationError, PassError
from repro.net.topology import Topology
from repro.obs import MetricsRegistry, trace
from repro.obs import health as obs_health
from repro.query.explain import Explain
from repro.sim.workload import SimReport, simulate_publish_workload
from repro.stream.engine import StreamEngine
from repro.stream.subscription import Subscription
from repro.stream.windows import WindowSpec

__all__ = ["PassClient", "LocalClient", "ModelClient", "wrap"]


def _paginate(pnames: Sequence[PName], limit: Optional[int], offset: int) -> Tuple[List[PName], int]:
    """Slice a full answer into a page; returns ``(page, total)``."""
    total = len(pnames)
    if offset:
        pnames = pnames[offset:]
    if limit is not None:
        pnames = pnames[:limit]
    return list(pnames), total


#: the façade ops every concrete client's overrides are observed on
_OBSERVED_OPS = (
    "publish",
    "publish_many",
    "query",
    "explain",
    "ancestors",
    "descendants",
    "locate",
)


def _observe_op(op: str, fn):
    """Wrap one protocol method with tracing + registry accounting.

    Every call opens a ``client.<op>`` span (a no-op attribute check
    while tracing is off) and records one counter bump plus one latency
    histogram observation into the client's
    :class:`~repro.obs.metrics.MetricsRegistry` -- the same registry
    :meth:`PassClient.stats` serves, so per-op rates and percentiles are
    visible on every target without bespoke bookkeeping.

    Clients whose transport already spans the same boundary (the remote
    client's ``rpc.<op>``) set ``_client_op_spans = False`` to skip the
    redundant façade span -- metrics recording is unaffected.
    """
    span_name = "client." + op

    @functools.wraps(fn)
    def observed(self, *args, **kwargs):
        registry = getattr(self, "metrics", None)
        started = time.perf_counter()
        failed = False
        if self._client_op_spans:
            span = trace.span(span_name, attrs={"target": self.target})
        else:
            span = trace.noop_span()
        with span:
            try:
                return fn(self, *args, **kwargs)
            except BaseException:
                failed = True
                raise
            finally:
                if registry is not None:
                    registry.record_op(
                        op, (time.perf_counter() - started) * 1000.0, failed=failed
                    )

    observed._observed = True
    return observed


def _lift_query_limit(queryish, limit: Optional[int]):
    """Move a Query's own ``limit`` into client-side pagination.

    ``Result.total`` promises the match count *before* pagination, so the
    target must evaluate the unlimited query (order_by still sorts before
    any slicing, preserving top-N semantics); the query's limit and the
    explicit ``limit=`` parameter combine as the stricter of the two.
    Returns ``(query, effective_limit)``.
    """
    query = as_query(queryish)
    if query.limit is None:
        return query, limit
    effective = query.limit if limit is None else min(query.limit, limit)
    return replace(query, limit=None), effective


class PassClient(ABC):
    """One API over local stores and all the architecture models.

    Every operation returns a :class:`~repro.api.results.Result`; query
    inputs may be a :class:`~repro.core.query.Predicate` (hand-built or
    from the :class:`~repro.api.dsl.Q` DSL), a
    :class:`~repro.api.dsl.QueryBuilder`, a full
    :class:`~repro.core.query.Query`, or ``None`` for "everything".
    Lineage arguments accept a ``PName`` or anything carrying one
    (a ``TupleSet``, a ``ProvenanceRecord``).
    """

    #: short machine-readable name of the connected target
    target = "abstract"

    #: the per-client metrics registry; concrete clients build one in
    #: ``__init__`` and serve :meth:`stats` from it (repro.obs)
    metrics: Optional[MetricsRegistry] = None

    #: whether the façade wrapper opens a ``client.<op>`` span; clients
    #: whose transport spans the same boundary set this False
    _client_op_spans = True

    def __init_subclass__(cls, **kwargs) -> None:
        """Observe every protocol override: span + op counter + latency.

        Wrapping happens at class-definition time, so concrete clients
        (including third-party subclasses) get uniform telemetry without
        touching their method bodies.
        """
        super().__init_subclass__(**kwargs)
        for op in _OBSERVED_OPS:
            fn = cls.__dict__.get(op)
            if fn is not None and not getattr(fn, "_observed", False):
                setattr(cls, op, _observe_op(op, fn))

    # -- the protocol ----------------------------------------------------
    @abstractmethod
    def publish(self, tuple_set: TupleSet, origin: Optional[str] = None) -> Result:
        """Store/announce one freshly produced tuple set."""

    def publish_many(self, tuple_sets: Sequence[TupleSet], origin: Optional[str] = None) -> Result:
        """Publish a batch; targets with a bulk path make this cheaper per tuple set."""
        combined = Result()
        for tuple_set in tuple_sets:
            combined.merge(self.publish(tuple_set, origin))
        return combined

    @abstractmethod
    def query(
        self,
        query=None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
        origin: Optional[str] = None,
    ) -> Result:
        """Run an attribute/lineage query; ``limit``/``offset`` paginate the answer."""

    @abstractmethod
    def ancestors(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        """Everything ``pname`` was transitively derived from.

        The answer is deterministically ordered (by PName digest) and
        paginated exactly like :meth:`query`: ``Result.total`` reports
        the full closure size, ``records`` the requested page.
        """

    @abstractmethod
    def descendants(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        """Everything transitively derived from ``pname`` (the taint set).

        Ordered and paginated like :meth:`ancestors`.
        """

    @abstractmethod
    def locate(self, pname, origin: Optional[str] = None) -> Result:
        """The site(s) holding the data for ``pname`` (in ``result.cost.sites``)."""

    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Counters and facts about the connected target."""

    @abstractmethod
    def explain(self, query=None, *, origin: Optional[str] = None) -> Explain:
        """Execute a query and report how the planner served it.

        The query genuinely runs, so the :class:`~repro.query.explain.Explain`
        carries estimated *and* actual row counts.  Distributed targets
        return an aggregate root with one child per participating site.
        """

    # -- live subscriptions (repro.stream) -------------------------------
    def subscribe(
        self,
        query=None,
        *,
        callback=None,
        window: Optional[WindowSpec] = None,
        origin: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        """Register a standing query matched incrementally on the ingest path.

        Every tuple set published *through this client* after
        registration is matched against the (normalized) predicate; hits
        are delivered to ``callback`` or onto the subscription's bounded
        pull queue (``maxsize``/``overflow``).  ``window`` turns the
        subscription into a window aggregation
        (:class:`~repro.stream.windows.WindowSpec`).  On distributed
        targets ``origin`` names the consuming site and each delivery is
        charged as one simulated ``notify`` message to it.
        """
        engine = self._stream_engine(create=True)
        return engine.subscribe(
            query,
            callback=callback,
            window=window,
            site=self._subscriber_site(origin),
            maxsize=maxsize,
            overflow=overflow,
            name=name,
        )

    def subscribe_descendants(
        self,
        pname,
        *,
        callback=None,
        origin: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        """Fire whenever a new (transitive) descendant of ``pname`` is published.

        The lineage trigger is fed incrementally from publish-time
        ancestry edges -- no transitive-closure query runs per ingest.
        Registration itself runs one closure query against the target
        (when it supports lineage) so descent through *pre-existing*
        intermediates is caught too.
        """
        engine = self._stream_engine(create=True)
        site = self._subscriber_site(origin)
        # An engine matching through a shared reachability index answers
        # "is this a descendant of the watch?" directly; only the
        # label-inheritance fallback needs the closure-seed backfill.
        known = (
            self._lineage_backfill(pname, site) if engine.needs_lineage_backfill else []
        )
        return engine.subscribe_descendants(
            pname,
            callback=callback,
            site=site,
            maxsize=maxsize,
            overflow=overflow,
            name=name,
            known_descendants=known,
        )

    def unsubscribe(self, subscription) -> bool:
        """Cancel a subscription (by object or id); True when it existed."""
        engine = self._stream_engine(create=False)
        if engine is None:
            return False
        return engine.unsubscribe(subscription)

    def subscriptions(self) -> List[Subscription]:
        """Every active subscription registered through this client."""
        engine = self._stream_engine(create=False)
        if engine is None:
            return []
        return engine.subscriptions()

    def flush_windows(self) -> int:
        """Force-close every open window aggregation; returns events emitted.

        A consumer-side operation (end of stream / shutdown): the
        trailing partial windows are delivered like any other window
        event, but -- unlike ingest-driven emissions on distributed
        targets -- no ``notify`` traffic is charged, because nothing
        crossed the simulated network.
        """
        engine = self._stream_engine(create=False)
        if engine is None:
            return 0
        return len(engine.flush_windows())

    def _stream_engine(self, create: bool) -> Optional[StreamEngine]:
        """The target's stream engine, wired into its ingest path on first use."""
        raise NotImplementedError  # pragma: no cover - both clients implement

    def _subscriber_site(self, origin: Optional[str]) -> Optional[str]:
        """Which site a subscription's deliveries are addressed to."""
        return origin

    def _lineage_backfill(self, pname, site: Optional[str]) -> List[PName]:
        """The target's *current* descendants of ``pname`` (watch-label seed)."""
        return []

    def _stream_stats(self) -> Dict[str, object]:
        """The ``stream`` block of :meth:`stats`.

        The shape is identical whether or not anything ever subscribed
        (a never-subscribed client reports a zeroed engine), so
        dashboards can key on the counters unconditionally.
        """
        engine = self._stream_engine(create=False)
        if engine is None:
            engine = StreamEngine()  # unused: just the zeroed stats shape
        return engine.stats()

    # -- health ----------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """This target's health report (``repro.obs.health`` shape).

        Checks are built once per client and re-evaluated on every call
        (the trace-ring check is stateful: it compares drop counters
        between probes).  Local stores add storage / closure-freshness /
        subscription-queue checks; the ``pass://`` client asks the
        daemon over the wire instead.
        """
        if self._health_check_list is None:
            self._health_check_list = self._build_health_checks()
        return obs_health.evaluate(self._health_check_list)

    #: lazily built by :meth:`health` (None until first asked)
    _health_check_list = None

    def _build_health_checks(self) -> list:
        return [obs_health.trace_ring_check()]

    # -- capabilities and lifecycle --------------------------------------
    @property
    def supports_lineage(self) -> bool:
        """Whether the target can answer transitive-closure queries at all."""
        return True

    def describe_record(self, pname) -> Optional[ProvenanceRecord]:
        """The provenance record for ``pname``, where the target can serve it.

        Local stores always can; the simulated architecture models treat
        record retrieval as a data-plane concern and return ``None``.
        """
        return None

    def refresh(self) -> None:
        """Flush any propagation the target delays (soft-state refresh); no-op elsewhere."""

    def rebuild_lineage_index(self, strategy: Optional[str] = None) -> Dict[str, object]:
        """Force-rebuild the target's closure index; returns its stats.

        Local stores recompute and checkpoint synchronously; the remote
        client submits the daemon's async build job and polls it to
        completion.  ``strategy`` switches the closure strategy
        (``"labelled"`` / ``"interval"`` / ...) before rebuilding -- the
        same plumbing the adaptive engine's auto-switch uses.  Targets
        without a rebuildable index raise
        :class:`~repro.errors.IndexError_`.
        """
        from repro.errors import IndexError_

        raise IndexError_(f"target {self.target!r} has no rebuildable closure index")

    def close(self) -> None:
        """Release underlying resources; idempotent -- further use may raise."""

    def __enter__(self) -> "PassClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalClient(PassClient):
    """The façade over a local :class:`~repro.core.pass_store.PassStore`.

    The wrapped store stays reachable as :attr:`store` -- the escape
    hatch for store-only capabilities (``remove_data``, abstraction
    rules, invariant checks) the cross-target protocol does not carry.
    """

    target = "local"

    def __init__(self, store: PassStore, owns_store: bool = True) -> None:
        self.store = store
        # connect() clients own their backend and close it with the client;
        # wrap() adapts a caller-owned store and must leave it usable.
        self.owns_store = owns_store
        self._stream: Optional[StreamEngine] = None
        self._closed = False
        # One registry serves the whole stats() schema: each pre-existing
        # snapshot (store counters, backend, planner cache + statistics,
        # closure index, stream engine, sim) registers as a provider, and
        # the façade's op wrapper records rates/latency into the same
        # registry under "obs".
        self.metrics = MetricsRegistry()
        self.metrics.register_provider("site", lambda: self.store.site)
        self.metrics.register_provider("records", lambda: len(self.store))
        self.metrics.register_provider("store", self.store.stats.snapshot)
        self.metrics.register_provider(
            "backend", lambda: self.store.backend.stats.snapshot()
        )
        self.metrics.register_provider("storage", self.store.storage_snapshot)
        self.metrics.register_provider(
            "planner",
            lambda: {
                "cache": self.store.planner.cache_snapshot(),
                "statistics": self.store.statistics.snapshot(),
                "feedback": self.store.feedback.snapshot(),
            },
        )
        self.metrics.register_provider("closure", lambda: self.store.closure.index_stats())
        self.metrics.register_provider("stream", self._stream_stats)
        self.metrics.register_provider(
            "sim",
            lambda: SimReport.disabled_snapshot("local store: no simulated network"),
        )

    def _local_cost(self) -> Cost:
        return Cost(sites=[self.store.site])

    def _stream_engine(self, create: bool) -> Optional[StreamEngine]:
        if self._stream is None and create:
            # The store's post-commit hook feeds the engine, so standing
            # queries see every ingest -- including ones made directly on
            # client.store or by another wrapper of the same store.  When
            # the closure answers reachability from materialized labels
            # (labelled/interval), the store is the lineage oracle and
            # descendant watches ride the shared index; graph-walking
            # strategies (naive/memoized) would turn every ingest into a
            # BFS per watch, so they keep the engine's O(edges) label
            # inheritance instead.
            oracle = self.store.is_ancestor if self.store.closure.fast_reachability else None
            self._stream = StreamEngine(lineage_oracle=oracle)
            self.store.add_ingest_hook(self._stream.on_ingest)
        return self._stream

    def _subscriber_site(self, origin: Optional[str]) -> Optional[str]:
        return origin if origin is not None else self.store.site

    def _lineage_backfill(self, pname, site: Optional[str]) -> List[PName]:
        pname = coerce_pname(pname)
        if pname not in self.store.graph:
            return []  # watching a not-yet-published pname is fine
        return sorted(self.store.descendants(pname), key=lambda p: p.digest)

    def publish(self, tuple_set: TupleSet, origin: Optional[str] = None) -> Result:
        pname = self.store.ingest(tuple_set)
        return Result(records=[pname], cost=self._local_cost())

    def publish_many(self, tuple_sets: Sequence[TupleSet], origin: Optional[str] = None) -> Result:
        pnames = self.store.ingest_many(tuple_sets)
        return Result(records=pnames, cost=self._local_cost())

    def query(
        self,
        query=None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
        origin: Optional[str] = None,
    ) -> Result:
        lowered, limit = _lift_query_limit(query, limit)
        pairs, explain = self.store.query_explain(lowered)
        page, total = _paginate([pname for pname, _ in pairs], limit, offset)
        cost = self._local_cost()
        cost.rows_scanned = explain.rows_scanned
        return Result(records=page, cost=cost, total=total, offset=offset)

    def explain(self, query=None, *, origin: Optional[str] = None) -> Explain:
        lowered, _ = _lift_query_limit(query, None)
        return self.store.explain(lowered)

    def ancestors(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        found = self.store.ancestors(coerce_pname(pname))
        return self._lineage_page(found, limit, offset)

    def descendants(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        found = self.store.descendants(coerce_pname(pname))
        return self._lineage_page(found, limit, offset)

    def _lineage_page(self, found, limit: Optional[int], offset: int) -> Result:
        ordered = sorted(found, key=lambda p: p.digest)
        page, total = _paginate(ordered, limit, offset)
        return Result(records=page, cost=self._local_cost(), total=total, offset=offset)

    def locate(self, pname, origin: Optional[str] = None) -> Result:
        pname = coerce_pname(pname)
        if pname not in self.store:
            return Result(notes=["unknown pname"])
        result = Result(records=[pname], cost=self._local_cost())
        if self.store.is_removed(pname):
            result.notes.append("data removed; provenance retained")
        return result

    def stats(self) -> Dict[str, object]:
        # Served entirely from the registry (providers keep the
        # documented per-block schema; "obs" carries the op telemetry).
        return {"target": self.target, **self.metrics.collect()}

    def describe_record(self, pname) -> Optional[ProvenanceRecord]:
        pname = coerce_pname(pname)
        if pname not in self.store:
            return None
        return self.store.get_record(pname)

    def _build_health_checks(self) -> list:
        return [
            obs_health.storage_check(self.store),
            obs_health.closure_check(self.store),
            obs_health.subscription_check(self.subscriptions),
            obs_health.trace_ring_check(),
        ]

    def rebuild_lineage_index(self, strategy: Optional[str] = None) -> Dict[str, object]:
        return self.store.rebuild_closure_index(strategy=strategy)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._stream is not None:
            self.store.remove_ingest_hook(self._stream.on_ingest)
            for subscription in self._stream.subscriptions():
                self._stream.unsubscribe(subscription)
            self._stream = None
        if self.owns_store:
            try:
                # Strategies with persistable labelling (repro.lineage)
                # checkpoint into the backend so the next open skips the
                # rebuild; everything else is a no-op.
                self.store.persist_closure_index()
            except PassError:
                pass  # a crashed/closed backend must not block close()
            self.store.backend.close()


class ModelClient(PassClient):
    """The façade over a Section IV architecture model.

    Operations need an origin site (who is publishing / asking); when
    none is given, publishes originate from the storage site nearest the
    tuple set's recorded location and queries from a fixed default
    origin (configurable via the ``origin`` URL parameter).
    """

    def __init__(self, model: ArchitectureModel, origin: Optional[str] = None) -> None:
        self.model = model
        self.topology: Topology = model.topology
        storage = [site.name for site in self.topology.sites(kind="storage")]
        self._storage_sites = storage or list(self.topology.site_names)
        if origin is not None and origin not in self.topology:
            raise ConfigurationError(
                f"origin site {origin!r} is not in the topology ({self.topology.site_names})"
            )
        self.default_origin = origin if origin is not None else self._storage_sites[0]
        self.target = model.name
        self._stream: Optional[StreamEngine] = None
        self._closed = False
        # The traffic snapshot carries per-kind counters (``by_kind``,
        # including the ``notify`` dissemination kind), so subscription
        # cost is readable from stats() without reaching into the
        # simulator; stream/sim/obs complete the uniform schema.
        self.metrics = MetricsRegistry()
        self.metrics.register_provider("traffic", self.model.traffic_snapshot)
        self.metrics.register_provider("stream", self._stream_stats)
        self.metrics.register_provider("sim", self._sim_snapshot)

    def _stream_engine(self, create: bool) -> Optional[StreamEngine]:
        if self._stream is None and create:
            self._stream = StreamEngine()
            # The model matches on its publish path and charges one
            # simulated "notify" message per delivery (kind "notify" in
            # the traffic stats), making dissemination cost comparable
            # across the Section IV architectures.
            self.model.attach_stream_engine(self._stream)
        return self._stream

    def _subscriber_site(self, origin: Optional[str]) -> Optional[str]:
        site = origin if origin is not None else self.default_origin
        if site not in self.topology:
            raise ConfigurationError(
                f"subscriber site {site!r} is not in the topology ({self.topology.site_names})"
            )
        return site

    def _lineage_backfill(self, pname, site: Optional[str]) -> List[PName]:
        if not self.model.supports_lineage:
            return []  # post-registration descent still fires via seen edges
        try:
            # A real closure query issued from the subscriber's own site,
            # charged as such in the traffic stats: registering a late
            # lineage watch is not free on a model.
            origin = site if site is not None else self.default_origin
            return list(self.model.descendants(coerce_pname(pname), origin).pnames)
        except PassError:
            return []  # unknown/unpublished watch target: nothing to seed

    # -- origin selection -----------------------------------------------
    def _origin_for(self, tuple_set: TupleSet) -> str:
        location = tuple_set.provenance.get("location")
        if isinstance(location, GeoPoint):
            try:
                return self.topology.nearest_site(location, kind="storage").name
            except Exception:
                pass
        return self.default_origin

    # -- the protocol ----------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin: Optional[str] = None) -> Result:
        site = origin if origin is not None else self._origin_for(tuple_set)
        return Result.from_operation(self.model.publish(tuple_set, site))

    def publish_many(self, tuple_sets: Sequence[TupleSet], origin: Optional[str] = None) -> Result:
        # Group by origin site (preserving first-appearance order) so each
        # site's batch travels as one bulk publish where the model has one.
        groups: List[Tuple[str, List[TupleSet]]] = []
        index: Dict[str, int] = {}
        for tuple_set in tuple_sets:
            site = origin if origin is not None else self._origin_for(tuple_set)
            if site not in index:
                index[site] = len(groups)
                groups.append((site, []))
            groups[index[site]][1].append(tuple_set)
        combined = Result()
        for site, batch in groups:
            combined.merge(Result.from_operation(self.model.publish_batch(batch, site)))
        return combined

    def query(
        self,
        query=None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
        origin: Optional[str] = None,
    ) -> Result:
        lowered, limit = _lift_query_limit(query, limit)
        operation = self.model.query(lowered, origin or self.default_origin)
        page, total = _paginate(operation.pnames, limit, offset)
        result = Result.from_operation(operation, total=total, offset=offset)
        result.records = page
        return result

    def ancestors(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        operation = self.model.ancestors(coerce_pname(pname), origin or self.default_origin)
        return self._lineage_page(operation, limit, offset)

    def descendants(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        operation = self.model.descendants(coerce_pname(pname), origin or self.default_origin)
        return self._lineage_page(operation, limit, offset)

    def _lineage_page(self, operation, limit: Optional[int], offset: int) -> Result:
        ordered = sorted(operation.pnames, key=lambda p: p.digest)
        page, total = _paginate(ordered, limit, offset)
        result = Result.from_operation(operation, total=total, offset=offset)
        result.records = page
        return result

    def locate(self, pname, origin: Optional[str] = None) -> Result:
        return Result.from_operation(
            self.model.locate(coerce_pname(pname), origin or self.default_origin)
        )

    def explain(self, query=None, *, origin: Optional[str] = None) -> Explain:
        lowered, _ = _lift_query_limit(query, None)
        started = time.perf_counter()
        operation = self.model.query(lowered, origin or self.default_origin)
        duration_ms = (time.perf_counter() - started) * 1000.0
        children = self.model.query_explains()
        return Explain(
            site=self.target,
            path=f"scatter/gather over {len(children)} site plan(s)",
            path_kind="distributed",
            estimated_rows=sum(child.estimated_rows for child in children),
            actual_rows=len(operation.pnames),
            rows_scanned=operation.rows_scanned,
            duration_ms=duration_ms,
            cache_hit=bool(children) and all(child.cache_hit for child in children),
            used_index=any(child.used_index for child in children),
            notes=list(operation.notes),
            children=children,
        )

    def _sim_snapshot(self) -> Dict[str, object]:
        report = getattr(self.model.network, "last_sim_report", None)
        return report.snapshot() if report is not None else SimReport.disabled_snapshot()

    def stats(self) -> Dict[str, object]:
        facts: Dict[str, object] = {"target": self.target}
        facts.update(self.model.describe())
        facts.update(self.metrics.collect())
        return facts

    def simulate(
        self,
        tuple_sets: Sequence[TupleSet],
        *,
        clients: int = 1,
        config=None,
        schedule=None,
        think_ms: float = 0.0,
        sample_interval_ms: Optional[float] = None,
        alert_rules=None,
    ) -> SimReport:
        """Publish ``tuple_sets`` through N concurrent simulated clients.

        Runs the discrete-event kernel over this client's model: client
        ``i`` publishes every ``clients``-th tuple set, closed-loop,
        from a pinned origin site; message hops queue at shared site
        servers and timed :class:`~repro.sim.schedule.Schedule` events
        partition/heal sites mid-run.  The returned
        :class:`~repro.sim.workload.SimReport` (latency percentiles,
        per-site utilization) also becomes ``stats()["sim"]``.

        ``sample_interval_ms`` turns on virtual-clock time-series
        sampling (``report.timeseries``, daemon-identical schema);
        ``alert_rules`` evaluates alert rules on those series as the
        simulation runs (``report.alerts``).
        """
        return simulate_publish_workload(
            self.model,
            tuple_sets,
            clients=clients,
            config=config,
            schedule=schedule,
            think_ms=think_ms,
            sample_interval_ms=sample_interval_ms,
            alert_rules=alert_rules,
        )

    @property
    def supports_lineage(self) -> bool:
        return self.model.supports_lineage

    def refresh(self) -> None:
        force = getattr(self.model, "force_refresh", None)
        if callable(force):
            force()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._stream is not None:
            self.model.detach_stream_engine(self._stream)
            for subscription in self._stream.subscriptions():
                self._stream.unsubscribe(subscription)
            self._stream = None


def wrap(target, origin: Optional[str] = None) -> PassClient:
    """Adapt an existing store, model or client to the façade protocol.

    This is how code that already holds a constructed object (the
    evaluation harness, an example with a custom topology) joins the
    unified API without going through a URL.
    """
    if isinstance(target, PassClient):
        return target
    if isinstance(target, PassStore):
        return LocalClient(target, owns_store=False)
    if isinstance(target, ArchitectureModel):
        return ModelClient(target, origin=origin)
    raise ConfigurationError(
        f"cannot wrap {type(target).__name__}; expected PassStore, ArchitectureModel or PassClient"
    )
