"""Topology construction for URL-connected architecture models.

``connect("dht://?sites=32")`` has to put 32 sites *somewhere*; this
module turns the topology parameters of a connection URL into a
:class:`~repro.net.topology.Topology`:

* ``cities=london,boston`` -- one storage site per named city (the
  city centres the sensor workloads use), mirroring the evaluation
  harness's standard scenario;
* ``sites=32`` -- a synthetic worldwide spread of numbered storage
  sites, for scale sweeps no city list covers;
* neither -- the standard four-city scenario (london, boston, seattle,
  tokyo).

Every topology also carries a ``warehouse`` site mid-North-America so
the centralized model always has its warehouse and the other models pay
realistic wide-area latencies to it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.attributes import GeoPoint
from repro.errors import ConfigurationError
from repro.net.topology import Site, Topology
from repro.sensors.workloads import CITY_CENTRES

__all__ = ["DEFAULT_CITIES", "synthetic_sites", "topology_from_spec"]

DEFAULT_CITIES: Sequence[str] = ("london", "boston", "seattle", "tokyo")

_WAREHOUSE_LOCATION = GeoPoint(41.0, -87.0)


def synthetic_sites(count: int) -> List[Site]:
    """``count`` deterministic storage sites spread over the globe.

    Latitudes sweep the habitable band and longitudes advance by an
    irrational fraction of the circle, so any prefix of the sequence is
    reasonably spread out -- good enough for latency realism without a
    geography database.
    """
    if count < 1:
        raise ConfigurationError("a topology needs at least one site")
    sites = []
    for k in range(count):
        latitude = -55.0 + 110.0 * (k / max(count - 1, 1))
        longitude = -180.0 + 360.0 * ((k * 0.618033988749895) % 1.0)
        sites.append(Site(f"site-{k:02d}", GeoPoint(latitude, longitude), kind="storage"))
    return sites


def topology_from_spec(spec) -> Topology:
    """Build the topology a connection URL describes.

    Consumes the ``sites`` and ``cities`` parameters of a
    :class:`~repro.api.registry.ConnectionSpec`; giving both is a
    configuration error.
    """
    site_count: Optional[int] = spec.integer("sites")
    cities: Optional[List[str]] = spec.listing("cities")
    if site_count is not None and cities is not None:
        raise ConfigurationError(
            f"give either 'sites' or 'cities' in {spec.url!r}, not both"
        )

    topology = Topology()
    if site_count is not None:
        for site in synthetic_sites(site_count):
            topology.add_site(site)
    else:
        for city in cities if cities is not None else DEFAULT_CITIES:
            try:
                centre = CITY_CENTRES[city]
            except KeyError:
                raise ConfigurationError(
                    f"unknown city {city!r} in {spec.url!r}; known: {sorted(CITY_CENTRES)}"
                ) from None
            topology.add_site(Site(f"{city}-site", centre, kind="storage"))
    topology.add_site(Site("warehouse", _WAREHOUSE_LOCATION, kind="warehouse"))
    return topology
