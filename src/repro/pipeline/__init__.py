"""Derivation pipelines, taint analysis and the versioning substrate."""

from repro.pipeline.derivation import Pipeline, PipelineResult, TaintAnalysis
from repro.pipeline.operators import (
    AggregateOperator,
    CalibrationOperator,
    DerivationOperator,
    FilterOperator,
    MergeOperator,
    RollupOperator,
)
from repro.pipeline.versioning import Commit, LineOrigin, VersionedRepository

__all__ = [
    "DerivationOperator",
    "FilterOperator",
    "AggregateOperator",
    "MergeOperator",
    "CalibrationOperator",
    "RollupOperator",
    "Pipeline",
    "PipelineResult",
    "TaintAnalysis",
    "Commit",
    "LineOrigin",
    "VersionedRepository",
]
