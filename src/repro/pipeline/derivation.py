"""Derivation pipelines and taint analysis over them.

While :mod:`repro.pipeline.operators` defines individual derivation
steps, this module composes them:

* :class:`Pipeline` chains operators and, optionally, ingests every
  intermediate product into a :class:`~repro.core.pass_store.PassStore`,
  producing the multi-generation lineage the paper's recursive queries
  need ("there may have been several steps involved with multiple
  intermediate data sets, each with its own provenance").
* :class:`TaintAnalysis` answers the Section III-B scenario: "if a
  problem is found with the original data or with an analysis tool, all
  downstream data is tainted and must be locatable" -- given a suspect
  data set *or* a suspect agent, find every affected descendant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.pass_store import PassStore
from repro.core.provenance import PName
from repro.core.query import AgentIs
from repro.core.tupleset import TupleSet
from repro.errors import ConfigurationError
from repro.pipeline.operators import DerivationOperator

__all__ = ["Pipeline", "PipelineResult", "TaintAnalysis"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produced, stage by stage."""

    stages: List[str] = field(default_factory=list)
    outputs_by_stage: Dict[str, List[TupleSet]] = field(default_factory=dict)

    def final_outputs(self) -> List[TupleSet]:
        """The tuple sets produced by the last stage."""
        if not self.stages:
            return []
        return self.outputs_by_stage[self.stages[-1]]

    def all_outputs(self) -> List[TupleSet]:
        """Every derived tuple set, across all stages, in stage order."""
        outputs: List[TupleSet] = []
        for stage in self.stages:
            outputs.extend(self.outputs_by_stage[stage])
        return outputs

    def count(self) -> int:
        """Total number of derived tuple sets."""
        return sum(len(outputs) for outputs in self.outputs_by_stage.values())


class Pipeline:
    """A chain of derivation operators applied stage after stage.

    Parameters
    ----------
    operators:
        Stages in order.  Each stage is applied to every output of the
        previous stage individually; pass ``fan_in=True`` for a stage
        that should instead consume all previous outputs at once (e.g. a
        final merge).
    store:
        Optional PASS store; when given, every input and every derived
        tuple set is ingested as the pipeline runs.
    """

    def __init__(
        self,
        operators: Sequence[DerivationOperator],
        store: Optional[PassStore] = None,
        fan_in_stages: Optional[Set[str]] = None,
    ) -> None:
        if not operators:
            raise ConfigurationError("a pipeline needs at least one operator")
        self._operators = list(operators)
        self._store = store
        self._fan_in = set(fan_in_stages or ())

    def run(self, inputs: Sequence[TupleSet]) -> PipelineResult:
        """Run every stage over ``inputs`` and return all derived products."""
        if not inputs:
            raise ConfigurationError("a pipeline run needs at least one input tuple set")
        if self._store is not None:
            for tuple_set in inputs:
                self._store.ingest(tuple_set)

        result = PipelineResult()
        current: List[TupleSet] = list(inputs)
        for operator in self._operators:
            if operator.name in self._fan_in:
                produced = [operator.apply_many(current)]
            else:
                produced = [operator.apply(tuple_set) for tuple_set in current]
            if self._store is not None:
                for tuple_set in produced:
                    self._store.ingest(tuple_set)
            result.stages.append(operator.name)
            result.outputs_by_stage[operator.name] = produced
            current = produced
        return result


class TaintAnalysis:
    """Finds data affected by a bad input or a bad tool."""

    def __init__(self, store: PassStore) -> None:
        self._store = store

    def tainted_by_data(self, suspect: PName, include_suspect: bool = True) -> Set[PName]:
        """Every data set derived (transitively) from ``suspect``."""
        tainted = set(self._store.descendants(suspect))
        if include_suspect:
            tainted.add(suspect)
        return tainted

    def tainted_by_agent(
        self,
        agent_name: str,
        kind: Optional[str] = None,
        version: Optional[str] = None,
    ) -> Set[PName]:
        """Every data set produced by the agent, plus everything derived from those.

        This is the "optimizer bug in gcc 3.3.3 invalidates results"
        scenario: the direct outputs of the tool and their entire
        descendant closure are affected.
        """
        produced = self._store.query(AgentIs(agent_name, kind=kind, version=version))
        tainted: Set[PName] = set(produced)
        for pname in produced:
            tainted |= self._store.descendants(pname)
        return tainted

    def untainted(self, universe: Sequence[PName], tainted: Set[PName]) -> List[PName]:
        """The complement: data sets in ``universe`` that are not tainted."""
        tainted_digests = {pname.digest for pname in tainted}
        return [pname for pname in universe if pname.digest not in tainted_digests]

    def taint_report(self, suspect: PName) -> Dict[str, object]:
        """A small report used by examples: counts and the raw sources involved."""
        tainted = self.tainted_by_data(suspect)
        return {
            "suspect": suspect.short,
            "tainted_count": len(tainted),
            "store_size": len(self._store),
            "fraction": len(tainted) / max(1, len(self._store)),
        }
