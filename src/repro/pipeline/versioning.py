"""A CVS-like document versioning model expressed as provenance.

Section III-A of the paper uses document versioning systems as "a
familiar framework for working with provenance metadata" and lists the
queries they support:

* show me the file as it is now, or as it was yesterday,
* show me all changes to this file since last week,
* show me when each line in this file was inserted,
* find the person who removed this error code,
* get me all files tagged "Release 1.1".

:class:`VersionedRepository` implements a small line-oriented versioning
system *on top of* provenance records: every commit of a file becomes a
provenance record (attributes: file, revision, author, commit time, tag
list; ancestor: the previous revision), and the line-level blame /
change queries are answered from the stored revisions.  Experiment E4
runs the full query list above against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.attributes import Timestamp
from repro.core.pass_store import PassStore
from repro.core.provenance import Agent, PName, ProvenanceRecord
from repro.core.query import And, AttributeEquals
from repro.core.tupleset import TupleSet
from repro.errors import ConfigurationError, UnknownEntityError

__all__ = ["Commit", "LineOrigin", "VersionedRepository"]


@dataclass(frozen=True)
class Commit:
    """One committed revision of one file."""

    path: str
    revision: int
    author: str
    timestamp: Timestamp
    lines: Tuple[str, ...]
    message: str = ""
    tags: Tuple[str, ...] = ()
    pname: Optional[PName] = None


@dataclass(frozen=True)
class LineOrigin:
    """Which revision and author introduced a given line ("blame")."""

    line: str
    revision: int
    author: str
    timestamp: Timestamp


class VersionedRepository:
    """A provenance-backed, line-oriented versioning system.

    Parameters
    ----------
    store:
        The PASS store revisions are recorded in; supplying a shared
        store lets versioning provenance live alongside sensor
        provenance, which is rather the point.
    name:
        Repository name, recorded in every revision's attributes.
    """

    def __init__(self, store: Optional[PassStore] = None, name: str = "repository") -> None:
        self.store = store if store is not None else PassStore()
        self.name = name
        self._history: Dict[str, List[Commit]] = {}

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------
    def commit(
        self,
        path: str,
        lines: Sequence[str],
        author: str,
        timestamp: Timestamp,
        message: str = "",
        tags: Sequence[str] = (),
    ) -> Commit:
        """Record a new revision of ``path`` and return it."""
        if not path or not author:
            raise ConfigurationError("path and author must be non-empty")
        history = self._history.setdefault(path, [])
        revision = len(history) + 1
        previous = history[-1] if history else None

        attributes = {
            "repository": self.name,
            "file": path,
            "revision": revision,
            "author": author,
            "commit_time": timestamp,
            "message": message,
            "domain": "versioning",
        }
        if tags:
            attributes["tags"] = tuple(tags)
        agent = Agent("person", author)
        if previous is not None and previous.pname is not None:
            record = ProvenanceRecord(
                attributes, ancestors=(previous.pname,), agents=(agent,)
            )
        else:
            record = ProvenanceRecord(attributes, agents=(agent,))
        self.store.ingest(TupleSet([], record))

        commit = Commit(
            path=path,
            revision=revision,
            author=author,
            timestamp=timestamp,
            lines=tuple(lines),
            message=message,
            tags=tuple(tags),
            pname=record.pname(),
        )
        history.append(commit)
        return commit

    # ------------------------------------------------------------------
    # The Section III-A query list
    # ------------------------------------------------------------------
    def files(self) -> List[str]:
        """Every path with at least one revision."""
        return sorted(self._history)

    def head(self, path: str) -> Commit:
        """Show me the file as it is now."""
        return self._require(path)[-1]

    def as_of(self, path: str, when: Timestamp) -> Commit:
        """Show me the file as it was at ``when`` (e.g. yesterday)."""
        history = self._require(path)
        chosen = None
        for commit in history:
            if commit.timestamp.seconds <= when.seconds:
                chosen = commit
        if chosen is None:
            raise UnknownEntityError(f"{path!r} did not exist at {when}")
        return chosen

    def changes_since(self, path: str, since: Timestamp) -> List[Commit]:
        """Show me all changes to this file since ``since``."""
        return [
            commit for commit in self._require(path) if commit.timestamp.seconds > since.seconds
        ]

    def blame(self, path: str) -> List[LineOrigin]:
        """Show me when each line in this file was inserted.

        A line is attributed to the earliest revision in which it appears
        and remains present in every later revision up to head.
        """
        history = self._require(path)
        head = history[-1]
        origins: List[LineOrigin] = []
        for line in head.lines:
            introduced = head
            for commit in reversed(history):
                if line in commit.lines:
                    introduced = commit
                else:
                    break
            origins.append(
                LineOrigin(
                    line=line,
                    revision=introduced.revision,
                    author=introduced.author,
                    timestamp=introduced.timestamp,
                )
            )
        return origins

    def who_removed(self, path: str, line: str) -> Optional[Commit]:
        """Find the person who removed this (error-code) line.

        Returns the first commit in which a previously-present line is
        absent, or ``None`` when the line was never removed.
        """
        history = self._require(path)
        seen = False
        for commit in history:
            present = line in commit.lines
            if present:
                seen = True
            elif seen:
                return commit
        return None

    def tagged(self, tag: str) -> List[Commit]:
        """Get me all files tagged ``tag`` (e.g. "Release 1.1")."""
        matches = []
        for history in self._history.values():
            for commit in history:
                if tag in commit.tags:
                    matches.append(commit)
        return sorted(matches, key=lambda commit: (commit.path, commit.revision))

    # ------------------------------------------------------------------
    # Provenance-level views (cross-checks for experiment E4)
    # ------------------------------------------------------------------
    def revisions_by_author(self, author: str) -> List[PName]:
        """All revision records authored by ``author``, via the PASS store."""
        return self.store.query(
            And((AttributeEquals("repository", self.name), AttributeEquals("author", author)))
        )

    def revision_lineage(self, path: str) -> Set[PName]:
        """The ancestor closure of the head revision: the file's full history."""
        head = self.head(path)
        if head.pname is None:  # pragma: no cover - defensive
            return set()
        lineage = set(self.store.ancestors(head.pname))
        lineage.add(head.pname)
        return lineage

    def _require(self, path: str) -> List[Commit]:
        history = self._history.get(path)
        if not history:
            raise UnknownEntityError(f"unknown file {path!r}")
        return history
