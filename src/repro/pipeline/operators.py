"""Derivation operators: programs that turn tuple sets into derived tuple sets.

Section III-B: "many data sets are derived from others as analysis steps
are performed.  The provenance of a derived data set is the provenance
of the original data plus the provenance of the tools used to do the
derivation."  The operators here are those tools.  Every operator:

* is described by an :class:`~repro.core.provenance.Agent` (name +
  version + parameters), so the deriving program is part of provenance,
* produces tuple sets whose provenance lists every input PName as an
  ancestor, so the lineage DAG records exactly what happened,
* stamps the derived set's attributes with the operator's ``stage``
  label and parameters, so attribute queries can find "tuple sets
  handled by a particular postprocessing program".

Operators provided: filtering, per-window aggregation, multi-set
merging/amalgamation, calibration (value correction), and temporal
roll-up across windows.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.attributes import AttributeValue, Timestamp
from repro.core.provenance import Agent, ProvenanceRecord, merge_provenance
from repro.core.tupleset import SensorReading, TupleSet
from repro.errors import ConfigurationError

__all__ = [
    "DerivationOperator",
    "FilterOperator",
    "AggregateOperator",
    "MergeOperator",
    "CalibrationOperator",
    "RollupOperator",
]


class DerivationOperator:
    """Base class: a named, versioned program that derives tuple sets.

    Parameters
    ----------
    name / version:
        Identify the program in provenance.
    parameters:
        The program's configuration; recorded both in the agent metadata
        and (prefixed with ``param_``) in the derived set's attributes.
    """

    #: attribute value written into ``stage`` on every derived set
    stage = "derived"

    #: context attributes copied from the first input onto every derived set
    DEFAULT_CARRY = ("domain", "network", "location", "window_start", "window_end")

    def __init__(
        self,
        name: str,
        version: str = "1.0",
        parameters: Optional[Mapping[str, AttributeValue]] = None,
        carry_attributes: Optional[Sequence[str]] = None,
    ) -> None:
        if not name:
            raise ConfigurationError("operator name must be non-empty")
        self.name = name
        self.version = version
        self.parameters = dict(parameters or {})
        self.agent = Agent("program", name, version, metadata=self.parameters)
        self.applications = 0
        extra = tuple(carry_attributes or ())
        self.carry_attributes = tuple(dict.fromkeys(self.DEFAULT_CARRY + extra))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, tuple_set: TupleSet) -> TupleSet:
        """Derive a new tuple set from a single input."""
        readings = self._transform(tuple_set.readings)
        attributes = self._derived_attributes([tuple_set])
        record = tuple_set.provenance.derive(attributes, agent=self.agent)
        self.applications += 1
        return TupleSet(readings, record)

    def apply_many(self, tuple_sets: Sequence[TupleSet]) -> TupleSet:
        """Derive a single new tuple set from several inputs (fan-in)."""
        if not tuple_sets:
            raise ConfigurationError("apply_many needs at least one input tuple set")
        readings: List[SensorReading] = []
        for tuple_set in tuple_sets:
            readings.extend(tuple_set.readings)
        transformed = self._transform(readings)
        attributes = self._derived_attributes(tuple_sets)
        record = merge_provenance(
            attributes, [tuple_set.provenance for tuple_set in tuple_sets], agent=self.agent
        )
        self.applications += 1
        return TupleSet(transformed, record)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _transform(self, readings: Sequence[SensorReading]) -> List[SensorReading]:
        """Turn input readings into output readings (identity by default)."""
        return list(readings)

    def _derived_attributes(self, inputs: Sequence[TupleSet]) -> Dict[str, AttributeValue]:
        """Attributes of the derived set; subclasses extend the base set."""
        first = inputs[0].provenance
        attributes: Dict[str, AttributeValue] = {}
        # Carry forward the descriptive context of the first input so the
        # derived data remains findable by domain/network/location (and any
        # extra keys the caller asked to preserve, e.g. patient or city).
        for key in self.carry_attributes:
            value = first.get(key)
            if value is not None:
                attributes[key] = value
        attributes["stage"] = self.stage
        attributes["operator"] = self.name
        attributes["operator_version"] = self.version
        attributes["input_count"] = len(inputs)
        for key, value in self.parameters.items():
            attributes[f"param_{key}"] = value
        return attributes


class FilterOperator(DerivationOperator):
    """Keeps only readings matching a predicate (e.g. plausible speeds)."""

    stage = "filtered"

    def __init__(
        self,
        name: str,
        predicate: Callable[[SensorReading], bool],
        version: str = "1.0",
        parameters: Optional[Mapping[str, AttributeValue]] = None,
        carry_attributes: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name, version, parameters, carry_attributes)
        self._predicate = predicate

    def _transform(self, readings: Sequence[SensorReading]) -> List[SensorReading]:
        return [reading for reading in readings if self._predicate(reading)]


class AggregateOperator(DerivationOperator):
    """Collapses readings into per-quantity summary statistics.

    The derived set carries one reading per input sensor-quantity pair is
    overkill for the paper's use cases; instead it emits a single summary
    reading whose values are ``<quantity>_mean`` / ``_min`` / ``_max`` /
    ``_count`` across all inputs, which is what "aggregated over time to
    estimate the effects of changing Zone size" style analyses consume.
    """

    stage = "aggregated"

    def __init__(
        self,
        name: str = "aggregator",
        version: str = "1.0",
        quantities: Optional[Sequence[str]] = None,
        parameters: Optional[Mapping[str, AttributeValue]] = None,
        carry_attributes: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name, version, parameters, carry_attributes)
        self._quantities = list(quantities) if quantities is not None else None

    def _transform(self, readings: Sequence[SensorReading]) -> List[SensorReading]:
        if not readings:
            return []
        samples: Dict[str, List[float]] = {}
        for reading in readings:
            for key, value in reading.values.items():
                if self._quantities is not None and key not in self._quantities:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                samples.setdefault(key, []).append(float(value))
        if not samples:
            return []
        summary: Dict[str, AttributeValue] = {}
        for key, values in samples.items():
            summary[f"{key}_mean"] = statistics.fmean(values)
            summary[f"{key}_min"] = min(values)
            summary[f"{key}_max"] = max(values)
            summary[f"{key}_count"] = len(values)
        last = max(readings, key=lambda reading: reading.timestamp.seconds)
        return [
            SensorReading(
                sensor_id=f"{self.name}:summary",
                timestamp=last.timestamp,
                values=summary,
                location=last.location,
            )
        ]


class MergeOperator(DerivationOperator):
    """Amalgamates tuple sets from different networks into one set.

    The paper's example: "car sightings amalgamated from different sensor
    networks of different types (cameras, magnetometers, etc.)".  The
    merge keeps all readings and records every input as an ancestor.
    """

    stage = "merged"

    def _derived_attributes(self, inputs: Sequence[TupleSet]) -> Dict[str, AttributeValue]:
        attributes = super()._derived_attributes(inputs)
        networks = sorted(
            {
                str(tuple_set.provenance.get("network"))
                for tuple_set in inputs
                if tuple_set.provenance.get("network") is not None
            }
        )
        if networks:
            attributes["source_networks"] = tuple(networks)
        return attributes


class CalibrationOperator(DerivationOperator):
    """Applies a per-quantity correction (gain and offset) to readings.

    Calibration is the classic "problem found with an analysis tool"
    scenario: when a calibration constant turns out to be wrong, the
    descendant closure of its outputs is precisely the taint set.
    """

    stage = "calibrated"

    def __init__(
        self,
        name: str,
        quantity: str,
        gain: float = 1.0,
        offset: float = 0.0,
        version: str = "1.0",
        carry_attributes: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(
            name,
            version,
            parameters={"quantity": quantity, "gain": gain, "offset": offset},
            carry_attributes=carry_attributes,
        )
        self._quantity = quantity
        self._gain = gain
        self._offset = offset

    def _transform(self, readings: Sequence[SensorReading]) -> List[SensorReading]:
        corrected = []
        for reading in readings:
            values = dict(reading.values)
            raw = values.get(self._quantity)
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                values[self._quantity] = float(raw) * self._gain + self._offset
            corrected.append(
                SensorReading(
                    sensor_id=reading.sensor_id,
                    timestamp=reading.timestamp,
                    values=values,
                    location=reading.location,
                )
            )
        return corrected


class RollupOperator(DerivationOperator):
    """Rolls several consecutive windows up into one coarser window.

    Used to build the "hourly from five-minute" style hierarchies whose
    depth the closure experiments sweep.
    """

    stage = "rollup"

    def _derived_attributes(self, inputs: Sequence[TupleSet]) -> Dict[str, AttributeValue]:
        attributes = super()._derived_attributes(inputs)
        starts = [
            tuple_set.provenance.get("window_start")
            for tuple_set in inputs
            if isinstance(tuple_set.provenance.get("window_start"), Timestamp)
        ]
        ends = [
            tuple_set.provenance.get("window_end")
            for tuple_set in inputs
            if isinstance(tuple_set.provenance.get("window_end"), Timestamp)
        ]
        if starts and ends:
            attributes["window_start"] = Timestamp(min(start.seconds for start in starts))
            attributes["window_end"] = Timestamp(max(end.seconds for end in ends))
        return attributes
