"""The ``pass://`` client: the façade protocol over a live daemon.

:class:`RemoteClient` speaks :mod:`repro.server.protocol` over a
blocking TCP socket.  A background reader thread demultiplexes the
inbound frame stream: response frames wake the caller waiting on that
request id, push frames are routed to the local
:class:`~repro.stream.subscription.Subscription` mirror they belong to
(callback or pull queue, exactly as in-process).  Because the daemon
funnels every outbound frame through one ordered queue per connection,
a window event always arrives *before* the ``flush_windows`` response
that caused it -- so the in-process consumption idioms (``flush`` then
``drain``) work unchanged across the socket.

Wire errors come back as stable codes and are re-raised as the same
:mod:`repro.errors` type the server caught; a vanished daemon surfaces
as :class:`~repro.errors.NetworkError` on every outstanding and
subsequent call.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Dict, List, Optional

from repro.api.client import PassClient
from repro.api.dsl import as_query, coerce_pname
from repro.api.registry import register_scheme
from repro.api.results import Result
from repro.core.provenance import ProvenanceRecord
from repro.errors import (
    NetworkError,
    ProtocolError,
    error_from_code,
)
from repro.obs import MetricsRegistry, trace
from repro.query.explain import Explain
from repro.server import protocol
from repro.stream.subscription import Subscription
from repro.stream.windows import WindowSpec

__all__ = ["RemoteClient"]


class _Pending:
    """One in-flight request: the event its caller blocks on."""

    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[dict] = None


class RemoteClient(PassClient):
    """A :class:`PassClient` talking to a :class:`~repro.server.daemon.PassDaemon`."""

    #: ``rpc.<op>`` already spans every call at this same boundary; a
    #: second ``client.<op>`` wrapper span would only restate it (op
    #: metrics still record under the ``client.<op>`` names)
    _client_op_spans = False

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.metrics = MetricsRegistry()
        self._closed = False
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, _Pending] = {}
        self._subs: Dict[str, Subscription] = {}
        self._dead: Optional[NetworkError] = None
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise NetworkError(f"cannot reach daemon at {host}:{port}: {error}") from None
        self._sock.settimeout(None)
        self._reader_file = self._sock.makefile("rb")
        self._reader = threading.Thread(
            target=self._read_loop, name="pass-client-reader", daemon=True
        )
        self._reader.start()
        hello = self._call("hello", token=token, tenant=tenant)
        if hello.get("wire_version") != protocol.WIRE_VERSION:
            self.close()
            raise ProtocolError(
                f"daemon speaks wire version {hello.get('wire_version')}, "
                f"this client speaks {protocol.WIRE_VERSION}"
            )
        self.target = hello["target"]
        self.tenant = hello["tenant"]
        self._supports_lineage: Optional[bool] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _call(self, op: str, **args):
        """Send one request and block for its (typed) answer.

        An ``rpc.<op>`` span covers send-to-response; when a trace is
        active its context rides the request envelope (a top-level
        ``trace`` key next to ``id``/``op``/``args``), so the daemon's
        handler span -- and everything beneath it -- stitches onto this
        caller's trace tree.
        """
        if self._closed:
            raise NetworkError("client is closed")
        if self._dead is not None:
            raise self._dead
        with trace.span(f"rpc.{op}", attrs={"host": self.host, "port": self.port}):
            request_id = next(self._ids)
            pending = _Pending()
            arguments = {name: value for name, value in args.items() if value is not None}
            envelope = {"id": request_id, "op": op, "args": arguments}
            context = trace.current_wire()
            if context is not None:
                envelope["trace"] = context
            frame = protocol.encode_frame(envelope)
            with self._state_lock:
                self._pending[request_id] = pending
            try:
                with self._send_lock:
                    self._sock.sendall(frame)
            except OSError as error:
                with self._state_lock:
                    self._pending.pop(request_id, None)
                raise NetworkError(f"daemon connection lost: {error}") from None
            if not pending.event.wait(self.timeout):
                with self._state_lock:
                    self._pending.pop(request_id, None)
                raise NetworkError(f"daemon did not answer {op!r} within {self.timeout}s")
            payload = pending.payload
            if isinstance(payload, NetworkError):
                raise payload
            if not payload.get("ok"):
                envelope = payload.get("error") or {}
                raise error_from_code(
                    envelope.get("code", "error"), envelope.get("message", "remote error")
                )
            return payload.get("result")

    def _read_loop(self) -> None:
        reason = "daemon closed the connection"
        try:
            while True:
                frame = protocol.read_frame(self._reader_file)
                if frame is None:
                    break
                if "push" in frame:
                    self._handle_push(frame)
                else:
                    self._handle_response(frame)
        except (OSError, ValueError, ProtocolError) as error:
            if not self._closed:
                reason = f"daemon connection failed: {error}"
        finally:
            failure = NetworkError(reason)
            with self._state_lock:
                self._dead = failure
                pending, self._pending = self._pending, {}
            for waiter in pending.values():
                waiter.payload = failure
                waiter.event.set()

    def _handle_response(self, frame: dict) -> None:
        with self._state_lock:
            pending = self._pending.pop(frame.get("id"), None)
        if pending is not None:
            pending.payload = frame
            pending.event.set()

    def _handle_push(self, frame: dict) -> None:
        if frame.get("push") != "event":
            return  # "goodbye": the following EOF fails the pending calls
        event = protocol.event_from_wire(frame.get("event"))
        with self._state_lock:
            subscription = self._subs.get(event.subscription_id)
        if subscription is not None and subscription.active:
            # Matching happened server-side; mirror the counter so local
            # sub.stats() reads like the in-process engine's.
            subscription.matched += 1
            subscription.deliver(event)

    # ------------------------------------------------------------------
    # The façade protocol
    # ------------------------------------------------------------------
    def publish(self, tuple_set, origin: Optional[str] = None) -> Result:
        return protocol.result_from_wire(
            self._call(
                "publish", tuple_set=protocol.tuple_set_to_wire(tuple_set), origin=origin
            )
        )

    def publish_many(self, tuple_sets, origin: Optional[str] = None) -> Result:
        return protocol.result_from_wire(
            self._call(
                "publish_many",
                tuple_sets=[protocol.tuple_set_to_wire(ts) for ts in tuple_sets],
                origin=origin,
            )
        )

    def _query_wire(self, queryish) -> Optional[dict]:
        return None if queryish is None else protocol.query_to_wire(as_query(queryish))

    def query(
        self,
        query=None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
        origin: Optional[str] = None,
    ) -> Result:
        return protocol.result_from_wire(
            self._call(
                "query",
                query=self._query_wire(query),
                limit=limit,
                offset=offset or None,
                origin=origin,
            )
        )

    def explain(self, query=None, *, origin: Optional[str] = None) -> Explain:
        return protocol.explain_from_wire(
            self._call("explain", query=self._query_wire(query), origin=origin)
        )

    def ancestors(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        return protocol.result_from_wire(
            self._call(
                "ancestors",
                pname=coerce_pname(pname).digest,
                origin=origin,
                limit=limit,
                offset=offset or None,
            )
        )

    def descendants(
        self,
        pname,
        origin: Optional[str] = None,
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Result:
        return protocol.result_from_wire(
            self._call(
                "descendants",
                pname=coerce_pname(pname).digest,
                origin=origin,
                limit=limit,
                offset=offset or None,
            )
        )

    def locate(self, pname, origin: Optional[str] = None) -> Result:
        return protocol.result_from_wire(
            self._call("locate", pname=coerce_pname(pname).digest, origin=origin)
        )

    def stats(self) -> Dict[str, object]:
        served = dict(self._call("stats"))
        served["tenant"] = self.tenant
        # Socket-side view: op counters/latencies observed by *this*
        # client, distinct from the daemon-side numbers in the rest.
        served["client"] = self.metrics.collect()["obs"]
        return served

    def daemon_metrics(self) -> Dict[str, object]:
        """The daemon's live introspection snapshot (the ``metrics`` op).

        Per-tenant op rates, latency percentiles, and active
        subscription counts; tenant-scoped when the daemon requires
        tokens, whole-daemon when it is open.  ``repro top`` renders it.
        """
        return self._call("metrics")

    def metrics_export(self) -> Dict[str, object]:
        """The daemon's OpenMetrics text exposition (``metrics_export``).

        ``{"content_type": ..., "text": ...}`` -- the same document the
        daemon's ``--metrics-port`` HTTP endpoint serves, tenant-scoped
        on a token-authed daemon.
        """
        return self._call("metrics_export")

    def health(self) -> Dict[str, object]:
        """The daemon's health report (the ``health`` wire op)."""
        return self._call("health")

    def alerts(self) -> Dict[str, object]:
        """The daemon's alert state (rules, firing set, transitions)."""
        return self._call("alerts")

    def timeseries(self) -> Dict[str, object]:
        """The daemon's retained time-series history (``timeseries`` op)."""
        return self._call("timeseries")

    def describe_record(self, pname) -> Optional[ProvenanceRecord]:
        payload = self._call("describe_record", pname=coerce_pname(pname).digest)
        return None if payload is None else protocol.record_from_wire(payload)

    def refresh(self) -> None:
        self._call("refresh")

    @property
    def supports_lineage(self) -> bool:
        if self._supports_lineage is None:
            self._supports_lineage = bool(self._call("supports_lineage"))
        return self._supports_lineage

    # ------------------------------------------------------------------
    # Subscriptions (local mirrors fed by the push stream)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query=None,
        *,
        callback=None,
        window: Optional[WindowSpec] = None,
        origin: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        described = self._call(
            "subscribe",
            query=self._query_wire(query),
            window=protocol.window_to_wire(window),
            origin=origin,
            name=name,
        )
        return self._mirror_subscription(
            described,
            query=None if query is None else as_query(query),
            window=window,
            callback=callback,
            maxsize=maxsize,
            overflow=overflow,
            name=name,
        )

    def subscribe_descendants(
        self,
        pname,
        *,
        callback=None,
        origin: Optional[str] = None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        watched = coerce_pname(pname)
        described = self._call(
            "subscribe_descendants",
            pname=watched.digest,
            origin=origin,
            name=name,
        )
        return self._mirror_subscription(
            described,
            watched=watched,
            callback=callback,
            maxsize=maxsize,
            overflow=overflow,
            name=name,
        )

    def _mirror_subscription(
        self,
        described: dict,
        query=None,
        watched=None,
        window=None,
        callback=None,
        maxsize: int = 256,
        overflow: str = "drop-oldest",
        name: Optional[str] = None,
    ) -> Subscription:
        subscription = Subscription(
            subscription_id=described["id"],
            kind=described["kind"],
            query=query,
            watched=watched,
            window=window,
            site=described.get("site"),
            callback=callback,
            maxsize=maxsize,
            overflow=overflow,
            name=name,
        )
        with self._state_lock:
            self._subs[subscription.id] = subscription
        return subscription

    def unsubscribe(self, subscription) -> bool:
        subscription_id = (
            subscription.id if isinstance(subscription, Subscription) else subscription
        )
        existed = bool(self._call("unsubscribe", sub=subscription_id))
        with self._state_lock:
            local = self._subs.pop(subscription_id, None)
        if local is not None:
            local.active = False
            if local.queue is not None:
                local.queue.close()
        return existed

    def subscriptions(self) -> List[Subscription]:
        with self._state_lock:
            return list(self._subs.values())

    def flush_windows(self) -> int:
        # The daemon enqueues the trailing window events on this
        # connection's push stream before the response frame, so they are
        # already in the local queues when this returns.
        return int(self._call("flush_windows"))

    # ------------------------------------------------------------------
    # Async index build
    # ------------------------------------------------------------------
    def submit_rebuild(self, strategy: Optional[str] = None) -> str:
        """Kick off the daemon's closure-index rebuild; returns its task id.

        ``strategy`` asks the daemon to switch the tenant store's closure
        strategy before rebuilding (the adaptive engine's switch verb,
        available remotely through the same job plumbing).
        """
        if strategy is None:
            return self._call("rebuild_index")["task_id"]
        return self._call("rebuild_index", strategy=strategy)["task_id"]

    def job_status(self, task_id: str) -> Dict[str, object]:
        """One poll of an async job: status plus stats/error when finished."""
        return self._call("task_status", task_id=task_id)

    def rebuild_lineage_index(
        self, strategy: Optional[str] = None, poll_interval: float = 0.02
    ) -> Dict[str, object]:
        task_id = self.submit_rebuild(strategy=strategy)
        deadline = time.monotonic() + self.timeout
        while True:
            job = self.job_status(task_id)
            if job["status"] == "completed":
                return job.get("stats", {})
            if job["status"] == "failed":
                envelope = job.get("error") or {}
                raise error_from_code(
                    envelope.get("code", "error"),
                    envelope.get("message", "rebuild failed"),
                )
            if time.monotonic() > deadline:
                raise NetworkError(f"rebuild task {task_id} did not finish in time")
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._state_lock:
            subs = list(self._subs.values())
            self._subs.clear()
        for subscription in subs:
            subscription.active = False
            if subscription.queue is not None:
                subscription.queue.close()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5)


@register_scheme("pass")
def _connect_remote(spec) -> RemoteClient:
    """``pass://host:port[?token=...&tenant=...&timeout=...]``"""
    host, port = spec.endpoint()
    return RemoteClient(
        host,
        port,
        token=spec.text("token"),
        tenant=spec.text("tenant"),
        timeout=spec.number("timeout", 30.0),
    )
