"""The provenance service daemon.

:class:`PassDaemon` is an asyncio socket server exposing the complete
:class:`~repro.api.client.PassClient` surface over the
:mod:`repro.server.protocol` framing.  Design points:

* **One loop, one thread.**  All operation handling runs on the event
  loop thread, so the (thread-unsafe) stores never see concurrent
  access; concurrency between clients is interleaving at frame
  boundaries, exactly like a single-threaded network server over an
  embedded store.
* **One outbound queue per connection.**  Responses *and* subscription
  pushes funnel through a single per-connection queue drained by a
  writer task, so a client that calls ``flush_windows`` sees the window
  events pushed *before* the flush response -- the same happens-before
  order an in-process consumer observes.
* **Tenants are separate stores.**  Each tenant name maps to its own
  ``connect(backend_url)`` client (and hence its own store, planner,
  closure index and subscription registry); no query, lineage walk or
  standing query can cross the namespace.
* **Async jobs.**  ``rebuild_index`` returns a ``task_id`` immediately
  and runs the closure rebuild as a loop task; ``task_status`` polls it
  (pending → running → completed/failed), mirroring service APIs whose
  index builds outlive an HTTP request.
* **Introspection.**  Every request is access-logged through the
  ``repro.server`` :mod:`logging` logger (op, tenant, duration, error
  code); per-tenant op counters and latency histograms are served live
  by the ``metrics`` wire op (rendered by ``repro top``); queries
  slower than ``slow_query_ms`` get their :class:`Explain` tree written
  to the slow-query log.  When the requester carries a trace context in
  its frame, the daemon's ``daemon.<op>`` span -- and everything the
  handler does beneath it -- stitches onto the caller's trace tree.
* **Monitoring.**  A background sampler (default: every second) scrapes
  the op telemetry into a bounded :class:`TimeSeriesStore`; the
  ``metrics_export`` op renders it as OpenMetrics text (also served on
  a plain ``--metrics-port`` HTTP endpoint alongside ``/health``), the
  ``health`` op runs storage/closure/subscription/trace-ring checks,
  and ``--alert-rules`` evaluates threshold and SLO burn-rate rules on
  every tick (``alerts`` op, ``repro alerts``).

The daemon can run embedded (``start()``/``stop()`` around a background
thread -- what the tests and benches do) or in the foreground
(``serve_forever()`` -- what ``repro serve`` does).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.registry import connect
from repro.errors import (
    AuthError,
    ConfigurationError,
    PassError,
    ProtocolError,
    UnknownEntityError,
)
from repro.obs import Counter, Histogram, trace
from repro.obs.alerts import AlertEngine, load_rules
from repro.obs.export import OPENMETRICS_CONTENT_TYPE, openmetrics
from repro.obs.health import (
    closure_check,
    evaluate as evaluate_health,
    storage_check,
    subscription_check,
    trace_ring_check,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.server import protocol
from repro.server.protocol import (
    WIRE_VERSION,
    encode_frame,
    error_to_wire,
    event_to_wire,
)

__all__ = ["DaemonAddress", "PassDaemon"]

_LOGGER = logging.getLogger("repro.server")


@dataclass(frozen=True)
class DaemonAddress:
    """Where a running daemon listens."""

    host: str
    port: int

    @property
    def url(self) -> str:
        """The ``connect()`` URL of this daemon."""
        return f"pass://{self.host}:{self.port}"


class _Tenant:
    """One tenant namespace: its own client/store plus its job table."""

    def __init__(self, name: str, client) -> None:
        self.name = name
        self.client = client
        self.jobs: Dict[str, dict] = {}


class _Connection:
    """Per-connection state: auth, outbound queue, owned subscriptions."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.outbound: asyncio.Queue = asyncio.Queue()
        self.tenant: Optional[_Tenant] = None
        self.subscriptions: Dict[str, object] = {}
        self.writer_task: Optional[asyncio.Task] = None
        self.closing = False

    def send(self, payload: dict) -> None:
        if not self.closing:
            self.outbound.put_nowait(payload)

    def push_event(self, event) -> None:
        self.send({"push": "event", "event": event_to_wire(event)})


class _Telemetry:
    """Daemon introspection state: per-tenant op stats + slow-query ring.

    All mutation happens on the loop thread (the dispatch path), so the
    dict juggling needs no lock; the instruments themselves are the
    :mod:`repro.obs` ones, giving the same streaming percentiles as
    client-side metrics.
    """

    def __init__(self) -> None:
        self.started = time.monotonic()
        #: tenant -> op -> (calls, errors, latency histogram)
        self._ops: Dict[str, Dict[str, tuple]] = {}
        self._slow: deque = deque(maxlen=64)

    def record(
        self, tenant: str, op: str, duration_ms: float, error_code: Optional[str]
    ) -> None:
        ops = self._ops.setdefault(tenant, {})
        entry = ops.get(op)
        if entry is None:
            entry = ops[op] = (
                Counter(f"daemon.{op}"),
                Counter(f"daemon.{op}.errors"),
                Histogram(f"daemon.{op}.ms"),
            )
        calls, errors, latency = entry
        calls.inc()
        if error_code is not None:
            errors.inc()
        latency.observe(duration_ms)

    def record_slow(
        self,
        tenant: str,
        duration_ms: float,
        explain: str,
        misestimate: Optional[float] = None,
    ) -> None:
        self._slow.append(
            {
                "tenant": tenant,
                "duration_ms": round(duration_ms, 3),
                "explain": explain,
                # How far off the planner's estimate was (>= 1.0, either
                # direction); None when the explain was unavailable.
                "misestimate": misestimate,
            }
        )

    def snapshot(self, tenants=None, subscriptions=None) -> dict:
        """The ``metrics`` op answer; restricted to ``tenants`` when given."""
        uptime = max(time.monotonic() - self.started, 1e-9)
        subscriptions = subscriptions or {}
        names = set(self._ops) | set(subscriptions)
        visible: Dict[str, dict] = {}
        for name in sorted(names):
            if tenants is not None and name not in tenants:
                continue
            blocks: Dict[str, dict] = {}
            for op, (calls, errors, latency) in sorted(self._ops.get(name, {}).items()):
                timing = latency.snapshot()
                blocks[op] = {
                    "count": calls.value,
                    "errors": errors.value,
                    "rate_per_s": calls.value / uptime,
                    "mean_ms": timing["mean"],
                    "p50_ms": timing["p50"],
                    "p95_ms": timing["p95"],
                    "p99_ms": timing["p99"],
                }
            visible[name] = {
                "ops": blocks,
                "active_subscriptions": subscriptions.get(name, 0),
            }
        slow = [
            dict(entry)
            for entry in self._slow
            if tenants is None or entry["tenant"] in tenants
        ]
        return {"uptime_s": uptime, "tenants": visible, "slow_queries": slow}


class PassDaemon:
    """Serve one or many provenance stores to remote :mod:`pass://` clients.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` picks an ephemeral port (reported by
        the :class:`DaemonAddress` that :meth:`start` returns).
    backend_url:
        The ``connect()`` URL each tenant's store is opened with.
        ``memory://`` gives every tenant a private in-memory store;
        ``sqlite:///pass.db`` gives the default tenant that file and
        every other tenant a ``pass.db.<tenant>`` sibling.
    tokens:
        Optional auth table mapping token -> tenant name.  When given,
        every connection's first frame must present a known token and is
        bound to that token's tenant.  When ``None``, connections are
        unauthenticated and may name any tenant (default ``"default"``).
    slow_query_ms:
        When set, any ``query`` op slower than this many milliseconds
        has its :class:`Explain` tree re-derived and written to the
        slow-query log (``repro.server`` logger, WARNING) and kept in
        the ring served by the ``metrics`` op.  ``None`` disables it.
    sample_interval_s:
        Wall-clock period of the background sampler that scrapes the
        daemon's telemetry instruments (per-tenant per-op call/error
        counters and latency histograms, subscription counts, connection
        count, trace-ring drops) into the in-process
        :class:`~repro.obs.timeseries.TimeSeriesStore`.  Defaults to 1s
        -- cheap enough that the traced ``pass://`` overhead gate holds
        with it on.  ``None`` disables history (and alerting).
    timeseries_retention:
        Slots each series retains (default 600 = 10 min at 1s).
    alert_rules:
        Alert rules (a JSON file path, a parsed list, or
        :class:`~repro.obs.alerts.AlertRule` objects) evaluated against
        the time-series on every sampler tick; transitions are logged
        and served by the ``alerts`` wire op.
    metrics_port:
        When set, also listen on this plain TCP port with a minimal
        HTTP responder: ``GET /metrics`` answers the OpenMetrics text
        exposition, ``GET /health`` the health report as JSON (503 when
        failing) -- external scrapers need no client library.  Port 0
        picks an ephemeral port (see :attr:`metrics_address`).  The
        endpoint is an operator surface: it is not token-authed and
        shows every tenant's series.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend_url: str = "memory://",
        tokens: Optional[Dict[str, str]] = None,
        slow_query_ms: Optional[float] = None,
        sample_interval_s: Optional[float] = 1.0,
        timeseries_retention: int = 600,
        alert_rules=None,
        metrics_port: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.backend_url = backend_url
        self.tokens = dict(tokens) if tokens else None
        self.slow_query_ms = slow_query_ms
        if sample_interval_s is not None and sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be positive")
        self.sample_interval_s = sample_interval_s
        self.metrics_port = metrics_port
        self.metrics_address: Optional[DaemonAddress] = None
        self.timeseries: Optional[TimeSeriesStore] = (
            TimeSeriesStore(interval_s=sample_interval_s, retention=timeseries_retention)
            if sample_interval_s is not None
            else None
        )
        rules = load_rules(alert_rules) if alert_rules else []
        if rules and self.timeseries is None:
            raise ConfigurationError("alert rules need the sampler (sample_interval_s)")
        self.alert_engine: Optional[AlertEngine] = (
            AlertEngine(self.timeseries, rules) if rules else None
        )
        self.telemetry = _Telemetry()
        self.address: Optional[DaemonAddress] = None
        self._tenants: Dict[str, _Tenant] = {}
        self._connections: set = set()
        self._job_ids = itertools.count(1)
        self._trace_check = trace_ring_check()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._sampler_task: Optional[asyncio.Task] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> DaemonAddress:
        """Serve from a background thread; returns once accepting connections."""
        if self._thread is not None:
            raise PassError("daemon already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="pass-daemon", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            error = self._startup_error
            self._startup_error = None
            raise PassError(f"daemon failed to start: {error}") from error
        return self.address

    def stop(self) -> None:
        """Graceful shutdown: goodbye pushes, closed stores; idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop = self._loop
        if loop is not None and self._shutdown is not None:
            try:
                loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        thread.join()

    def serve_forever(self) -> None:
        """Run the daemon in the calling thread until interrupted."""
        asyncio.run(self._main())

    def wait(self) -> None:
        """Block until the daemon stops (``repro serve``'s foreground wait)."""
        thread = self._thread
        if thread is not None:
            thread.join()

    def __enter__(self) -> "PassDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # startup failures reach start()
            self._startup_error = error
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = DaemonAddress(host=bound[0], port=bound[1])
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            metrics_bound = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = DaemonAddress(
                host=metrics_bound[0], port=metrics_bound[1]
            )
        if self.timeseries is not None:
            self._sampler_task = self._loop.create_task(self._sampler())
        self._started.set()
        try:
            await self._shutdown.wait()
        except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
            pass
        finally:
            await self._close_everything()

    async def _close_everything(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        self._server.close()
        await self._server.wait_closed()
        for connection in list(self._connections):
            self._drop_subscriptions(connection)
            connection.send({"push": "goodbye", "reason": "daemon shutting down"})
            connection.closing = True
            connection.outbound.put_nowait(None)
        writers = [c.writer_task for c in self._connections if c.writer_task is not None]
        if writers:
            # Let every writer flush its goodbye before the transports go.
            await asyncio.gather(*writers, return_exceptions=True)
        for connection in list(self._connections):
            connection.writer.close()
        for tenant in self._tenants.values():
            tenant.client.close()
        self._tenants.clear()

    # ------------------------------------------------------------------
    # Background sampler, health, exposition
    # ------------------------------------------------------------------
    async def _sampler(self) -> None:
        """Scrape telemetry into the time-series store every interval.

        Runs on the loop thread (an async task), so it reads the same
        single-threaded telemetry state the dispatch path writes -- no
        locks, no copies beyond the instrument snapshots themselves.
        """
        while True:
            await asyncio.sleep(self.sample_interval_s)
            try:
                self._sample_tick(time.time())
            except Exception:  # the sampler must never die mid-serve
                _LOGGER.exception("sampler tick failed")

    def _sample_tick(self, now: float) -> None:
        store = self.timeseries
        store.observe_gauge("daemon.connections", now, len(self._connections))
        store.observe_counter(
            "trace.spans_dropped", now, trace.ring_counters()["trace.spans_dropped"]
        )
        for tenant_name, count in self._subscription_counts().items():
            store.observe_gauge(f"daemon.{tenant_name}.subscriptions", now, count)
        for tenant_name, ops in self.telemetry._ops.items():
            for op, (calls, errors, latency) in ops.items():
                prefix = f"daemon.{tenant_name}.{op}"
                store.observe_counter(prefix + ".calls", now, calls.value)
                store.observe_counter(prefix + ".errors", now, errors.value)
                store.observe_histogram(prefix + ".ms", now, latency.state())
        for tenant_name, tenant in self._tenants.items():
            tenant_store = getattr(tenant.client, "store", None)
            if tenant_store is None:
                continue
            snapshot = tenant_store.storage_snapshot()
            prefix = f"daemon.{tenant_name}.storage"
            store.observe_gauge(prefix + ".shards", now, snapshot["shards"])
            store.observe_gauge(prefix + ".records", now, snapshot["records"])
            store.observe_counter(prefix + ".group_commits", now, snapshot["group_commits"])
            store.observe_counter(prefix + ".parallel_scans", now, snapshot["parallel_scans"])
            for entry in snapshot["per_shard"]:
                store.observe_gauge(
                    f"{prefix}.shard{entry['shard']:02d}.records", now, entry["records"]
                )
            # The adaptive engine's loop, as per-tenant series: plan-cache
            # churn, drift invalidations, result-cache effectiveness,
            # scheduled refreshes and closure switches.
            cache = tenant_store.planner.cache_snapshot()
            feedback = tenant_store.feedback.snapshot()
            prefix = f"daemon.{tenant_name}.planner"
            store.observe_gauge(prefix + ".cache_entries", now, cache["entries"])
            store.observe_counter(prefix + ".cache_hits", now, cache["hits"])
            store.observe_counter(prefix + ".cache_evictions", now, cache["evictions"])
            store.observe_counter(
                prefix + ".drift_invalidations", now, cache["drift_invalidations"]
            )
            store.observe_counter(
                prefix + ".queries_observed", now, feedback["queries_observed"]
            )
            store.observe_counter(prefix + ".misestimates", now, feedback["misestimates"])
            store.observe_counter(
                prefix + ".stats_refreshes", now, feedback["stats_refreshes"]
            )
            store.observe_counter(
                prefix + ".closure_switches", now, feedback["closure_switches"]
            )
            store.observe_counter(
                prefix + ".result_cache_hits", now, feedback["result_cache"]["hits"]
            )
        if self.alert_engine is not None:
            try:
                self.alert_engine.evaluate(now)
            except Exception:  # a bad rule must not kill sampling
                _LOGGER.exception("alert evaluation failed")

    def _subscription_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for connection in self._connections:
            if connection.tenant is not None:
                counts[connection.tenant.name] = counts.get(
                    connection.tenant.name, 0
                ) + len(connection.subscriptions)
        return counts

    @staticmethod
    def _series_visible(name: str, scope: Optional[set]) -> bool:
        """Tenant scoping for series names: ``daemon.<tenant>.*`` series
        belong to that tenant; everything else (``trace.*``,
        ``daemon.connections``) is global."""
        if scope is None or not name.startswith("daemon."):
            return True
        rest = name[len("daemon."):]
        if "." not in rest:
            return True
        return rest.split(".", 1)[0] in scope

    def _export_text(self, scope: Optional[set] = None) -> str:
        store = self.timeseries if self.timeseries is not None else TimeSeriesStore()
        names = None
        if scope is not None:
            names = [n for n in store.names() if self._series_visible(n, scope)]
        extra = {
            "daemon.uptime_s": time.monotonic() - self.telemetry.started,
            "daemon.connections": len(self._connections),
        }
        return openmetrics(store, extra_gauges=extra, names=names)

    def _health_report(self, scope: Optional[set] = None) -> dict:
        checks = [self._trace_check]
        for name in sorted(self._tenants):
            if scope is not None and name not in scope:
                continue
            store = getattr(self._tenants[name].client, "store", None)
            if store is not None:
                checks.append(storage_check(store, name=f"storage:{name}"))
                checks.append(closure_check(store, name=f"closure:{name}"))

        def visible_subscriptions():
            out = []
            for connection in self._connections:
                if connection.tenant is None:
                    continue
                if scope is not None and connection.tenant.name not in scope:
                    continue
                out.extend(connection.subscriptions.values())
            return out

        checks.append(subscription_check(visible_subscriptions))
        return evaluate_health(checks)

    def _alerts_snapshot(self, scope: Optional[set] = None) -> dict:
        engine = self.alert_engine
        if engine is None:
            return {"enabled": False, "reason": "no alert rules loaded"}
        snapshot = engine.snapshot()
        if scope is not None:
            allowed = set()
            for rule in engine.rules:
                series = (
                    [rule.series] if rule.kind == "threshold" else [rule.errors, rule.total]
                )
                if all(self._series_visible(s, scope) for s in series if s):
                    allowed.add(rule.name)
            snapshot["rules"] = [r for r in snapshot["rules"] if r["name"] in allowed]
            snapshot["firing"] = [n for n in snapshot["firing"] if n in allowed]
            snapshot["transitions"] = [
                t for t in snapshot["transitions"] if t["rule"] in allowed
            ]
        snapshot["enabled"] = True
        return snapshot

    async def _handle_metrics_http(self, reader, writer) -> None:
        """A deliberately tiny HTTP/1.1 responder for external scrapers."""
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            while True:  # consume headers up to the blank line
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].split("?", 1)[0] if len(parts) >= 2 else "/"
            if path in ("/", "/metrics"):
                status = "200 OK"
                content_type = OPENMETRICS_CONTENT_TYPE
                body = self._export_text().encode("utf-8")
            elif path == "/health":
                report = self._health_report()
                status = "200 OK" if report["status"] != "failing" else "503 Service Unavailable"
                content_type = "application/json"
                body = json.dumps(report).encode("utf-8")
            else:
                status = "404 Not Found"
                content_type = "text/plain"
                body = b"not found\n"
            head = (
                f"HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # Tenants and auth
    # ------------------------------------------------------------------
    def _tenant_url(self, name: str) -> str:
        if name == "default":
            return self.backend_url
        if self.backend_url.startswith("sqlite:"):
            base, _, query = self.backend_url.partition("?")
            suffix = f"?{query}" if query else ""
            if base.endswith("/") or base.endswith(":"):
                return self.backend_url  # in-memory sqlite: private per connect
            return f"{base}.{name}{suffix}"
        return self.backend_url

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(name, connect(self._tenant_url(name)))
            self._tenants[name] = tenant
        return tenant

    def _authenticate(self, args: dict) -> _Tenant:
        token = args.get("token")
        requested = args.get("tenant")
        if self.tokens is None:
            name = requested or "default"
        else:
            if token is None:
                raise AuthError("this daemon requires a token")
            name = self.tokens.get(token)
            if name is None:
                raise AuthError("unknown token")
            if requested is not None and requested != name:
                raise AuthError(
                    f"token is not valid for tenant {requested!r}"
                )
        if not isinstance(name, str) or not name or "/" in name or "\\" in name:
            raise AuthError(f"malformed tenant name {name!r}")
        return self._tenant(name)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        connection.writer_task = asyncio.get_running_loop().create_task(
            self._drain(connection)
        )
        try:
            await self._read_loop(connection)
        finally:
            self._drop_subscriptions(connection)
            connection.closing = True
            connection.outbound.put_nowait(None)
            await connection.writer_task
            writer.close()
            self._connections.discard(connection)

    async def _drain(self, connection: _Connection) -> None:
        while True:
            payload = await connection.outbound.get()
            if payload is None:
                return
            try:
                connection.writer.write(encode_frame(payload))
                await connection.writer.drain()
            except (ConnectionError, RuntimeError):
                return  # peer went away; the read loop notices EOF

    async def _read_loop(self, connection: _Connection) -> None:
        while not self._shutdown.is_set():
            try:
                header = await connection.reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client disconnected (possibly mid-stream)
            try:
                length = protocol.frame_length(header)
                body = await connection.reader.readexactly(length)
                payload = protocol.decode_body(body)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except ProtocolError as error:
                connection.send({"id": None, "ok": False, "error": error_to_wire(error)})
                return  # cannot trust the framing any more
            if not self._dispatch(connection, payload):
                return

    def _dispatch(self, connection: _Connection, payload: dict) -> bool:
        """Handle one request frame; False closes the connection.

        The handler runs under a ``daemon.<op>`` span parented on the
        trace context the request frame carried (if any), so a traced
        remote call yields one stitched tree across the wire.  Every
        request -- success or typed failure -- lands one access-log line
        and one telemetry sample.
        """
        request_id = payload.get("id")
        op = payload.get("op")
        args = payload.get("args") or {}
        started = time.perf_counter()
        try:
            if not isinstance(op, str):
                raise ProtocolError(f"request lacks an op: {payload!r}")
            if not isinstance(args, dict):
                raise ProtocolError("request args must be an object")
            with trace.span(f"daemon.{op}", parent=payload.get("trace")):
                if op == "hello":
                    result = self._handle_hello(connection, args)
                elif connection.tenant is None:
                    raise AuthError("first frame must be a 'hello' (auth handshake)")
                else:
                    handler = self._HANDLERS.get(op)
                    if handler is None:
                        raise ProtocolError(f"unknown op {op!r}")
                    result = handler(self, connection, args)
        except Exception as error:  # typed envelope, never a traceback
            envelope = error_to_wire(error)
            # Observe before sending: once the client holds the answer,
            # the access-log line and telemetry sample already exist.
            self._observe_request(
                connection, op, args, started, envelope.get("code", "error")
            )
            connection.send({"id": request_id, "ok": False, "error": envelope})
            return not isinstance(error, (AuthError, ProtocolError))
        self._observe_request(connection, op, args, started, None)
        connection.send({"id": request_id, "ok": True, "result": result})
        return True

    def _observe_request(
        self,
        connection: _Connection,
        op,
        args: dict,
        started: float,
        error_code: Optional[str],
    ) -> None:
        """Access-log one request and fold it into the telemetry state."""
        duration_ms = (time.perf_counter() - started) * 1000.0
        opname = op if isinstance(op, str) else "?"
        tenant = connection.tenant.name if connection.tenant is not None else "-"
        self.telemetry.record(tenant, opname, duration_ms, error_code)
        _LOGGER.info(
            "op=%s tenant=%s duration_ms=%.3f status=%s",
            opname,
            tenant,
            duration_ms,
            error_code or "ok",
        )
        if (
            error_code is None
            and opname == "query"
            and self.slow_query_ms is not None
            and duration_ms >= self.slow_query_ms
            and connection.tenant is not None
        ):
            self._log_slow_query(connection, args, duration_ms)

    def _log_slow_query(
        self, connection: _Connection, args: dict, duration_ms: float
    ) -> None:
        misestimate: Optional[float] = None
        try:
            payload = args.get("query")
            explain = connection.tenant.client.explain(
                None if payload is None else protocol.query_from_wire(payload),
                origin=args.get("origin"),
            )
            tree = explain.format()
            # The estimate error is the *why* behind most slow queries:
            # report it (symmetric, >= 1.0) next to the duration so an
            # operator sees a stale plan without reading the whole tree.
            ratio = (explain.estimated_rows + 1.0) / (explain.actual_rows + 1.0)
            misestimate = round(max(ratio, 1.0 / ratio), 2)
        except Exception as error:  # never fail a request over a log line
            tree = f"(explain unavailable: {error})"
        self.telemetry.record_slow(
            connection.tenant.name, duration_ms, tree, misestimate=misestimate
        )
        _LOGGER.warning(
            "slow query: tenant=%s duration_ms=%.3f threshold_ms=%.3f misestimate=%s\n%s",
            connection.tenant.name,
            duration_ms,
            self.slow_query_ms,
            "n/a" if misestimate is None else f"{misestimate:.2f}x",
            tree,
        )

    def _drop_subscriptions(self, connection: _Connection) -> None:
        if connection.tenant is None:
            return
        for subscription in connection.subscriptions.values():
            connection.tenant.client.unsubscribe(subscription)
        connection.subscriptions.clear()

    # ------------------------------------------------------------------
    # Operation handlers (all run on the loop thread)
    # ------------------------------------------------------------------
    def _handle_hello(self, connection: _Connection, args: dict) -> dict:
        tenant = self._authenticate(args)
        connection.tenant = tenant
        return {
            "wire_version": WIRE_VERSION,
            "tenant": tenant.name,
            "target": f"remote+{tenant.client.target}",
        }

    def _handle_ping(self, connection: _Connection, args: dict) -> dict:
        return {"wire_version": WIRE_VERSION}

    def _handle_publish(self, connection: _Connection, args: dict) -> dict:
        tuple_set = protocol.tuple_set_from_wire(args.get("tuple_set"))
        result = connection.tenant.client.publish(tuple_set, origin=args.get("origin"))
        return protocol.result_to_wire(result)

    def _handle_publish_many(self, connection: _Connection, args: dict) -> dict:
        payloads = args.get("tuple_sets")
        if not isinstance(payloads, list):
            raise ProtocolError("publish_many needs a 'tuple_sets' list")
        tuple_sets = [protocol.tuple_set_from_wire(item) for item in payloads]
        result = connection.tenant.client.publish_many(
            tuple_sets, origin=args.get("origin")
        )
        return protocol.result_to_wire(result)

    def _query_argument(self, args: dict):
        payload = args.get("query")
        return None if payload is None else protocol.query_from_wire(payload)

    def _handle_query(self, connection: _Connection, args: dict) -> dict:
        result = connection.tenant.client.query(
            self._query_argument(args),
            limit=args.get("limit"),
            offset=args.get("offset", 0),
            origin=args.get("origin"),
        )
        return protocol.result_to_wire(result)

    def _handle_explain(self, connection: _Connection, args: dict) -> dict:
        explain = connection.tenant.client.explain(
            self._query_argument(args), origin=args.get("origin")
        )
        return protocol.explain_to_wire(explain)

    def _handle_ancestors(self, connection: _Connection, args: dict) -> dict:
        result = connection.tenant.client.ancestors(
            protocol.pname_from_wire(args.get("pname")),
            origin=args.get("origin"),
            limit=args.get("limit"),
            offset=args.get("offset", 0),
        )
        return protocol.result_to_wire(result)

    def _handle_descendants(self, connection: _Connection, args: dict) -> dict:
        result = connection.tenant.client.descendants(
            protocol.pname_from_wire(args.get("pname")),
            origin=args.get("origin"),
            limit=args.get("limit"),
            offset=args.get("offset", 0),
        )
        return protocol.result_to_wire(result)

    def _handle_locate(self, connection: _Connection, args: dict) -> dict:
        result = connection.tenant.client.locate(
            protocol.pname_from_wire(args.get("pname")), origin=args.get("origin")
        )
        return protocol.result_to_wire(result)

    def _handle_describe_record(self, connection: _Connection, args: dict):
        record = connection.tenant.client.describe_record(
            protocol.pname_from_wire(args.get("pname"))
        )
        return None if record is None else protocol.record_to_wire(record)

    def _handle_stats(self, connection: _Connection, args: dict) -> dict:
        stats = dict(connection.tenant.client.stats())
        # The wire client reports the daemon-composed target name, so the
        # two ends of the connection agree on what "target" means.
        stats["target"] = f"remote+{connection.tenant.client.target}"
        stats["tenant"] = connection.tenant.name
        return stats

    def _handle_metrics(self, connection: _Connection, args: dict) -> dict:
        # Open daemons show the whole house; token-authed connections
        # only see their own tenant (no cross-tenant traffic intel).
        scope = None if self.tokens is None else {connection.tenant.name}
        subscriptions: Dict[str, int] = {}
        for other in self._connections:
            if other.tenant is not None:
                subscriptions[other.tenant.name] = subscriptions.get(
                    other.tenant.name, 0
                ) + len(other.subscriptions)
        return self.telemetry.snapshot(tenants=scope, subscriptions=subscriptions)

    def _handle_metrics_export(self, connection: _Connection, args: dict) -> dict:
        scope = None if self.tokens is None else {connection.tenant.name}
        return {
            "content_type": OPENMETRICS_CONTENT_TYPE,
            "text": self._export_text(scope),
        }

    def _handle_health(self, connection: _Connection, args: dict) -> dict:
        scope = None if self.tokens is None else {connection.tenant.name}
        return self._health_report(scope)

    def _handle_alerts(self, connection: _Connection, args: dict) -> dict:
        scope = None if self.tokens is None else {connection.tenant.name}
        return self._alerts_snapshot(scope)

    def _handle_timeseries(self, connection: _Connection, args: dict) -> dict:
        if self.timeseries is None:
            return {"enabled": False, "reason": "sampler disabled"}
        scope = None if self.tokens is None else {connection.tenant.name}
        names = None
        if scope is not None:
            names = [n for n in self.timeseries.names() if self._series_visible(n, scope)]
        snapshot = self.timeseries.snapshot(names=names)
        snapshot["enabled"] = True
        return snapshot

    def _handle_refresh(self, connection: _Connection, args: dict) -> None:
        connection.tenant.client.refresh()
        return None

    def _handle_supports_lineage(self, connection: _Connection, args: dict) -> bool:
        return connection.tenant.client.supports_lineage

    # -- subscriptions ---------------------------------------------------
    def _handle_subscribe(self, connection: _Connection, args: dict) -> dict:
        subscription = connection.tenant.client.subscribe(
            self._query_argument(args),
            callback=connection.push_event,
            window=protocol.window_from_wire(args.get("window")),
            origin=args.get("origin"),
            name=args.get("name"),
        )
        connection.subscriptions[subscription.id] = subscription
        return subscription.stats()

    def _handle_subscribe_descendants(self, connection: _Connection, args: dict) -> dict:
        subscription = connection.tenant.client.subscribe_descendants(
            protocol.pname_from_wire(args.get("pname")),
            callback=connection.push_event,
            origin=args.get("origin"),
            name=args.get("name"),
        )
        connection.subscriptions[subscription.id] = subscription
        return subscription.stats()

    def _handle_unsubscribe(self, connection: _Connection, args: dict) -> bool:
        subscription_id = args.get("sub")
        subscription = connection.subscriptions.pop(subscription_id, None)
        if subscription is None:
            return False
        return connection.tenant.client.unsubscribe(subscription)

    def _handle_subscriptions(self, connection: _Connection, args: dict) -> list:
        return [sub.stats() for sub in connection.subscriptions.values()]

    def _handle_flush_windows(self, connection: _Connection, args: dict) -> int:
        # Window events land on this connection's push queue *before* the
        # response frame (same queue, enqueued during this call).
        return connection.tenant.client.flush_windows()

    # -- async index build jobs -----------------------------------------
    def _handle_rebuild_index(self, connection: _Connection, args: dict) -> dict:
        tenant = connection.tenant
        task_id = f"task-{next(self._job_ids)}"
        job = {"task_id": task_id, "status": "pending"}
        tenant.jobs[task_id] = job
        self._loop.create_task(self._run_rebuild(tenant, job, args.get("strategy")))
        return {"task_id": task_id, "status": "pending"}

    async def _run_rebuild(
        self, tenant: _Tenant, job: dict, strategy: Optional[str] = None
    ) -> None:
        job["status"] = "running"
        # Yield once so a fast poller can genuinely observe "running".
        await asyncio.sleep(0)
        try:
            job["stats"] = tenant.client.rebuild_lineage_index(strategy=strategy)
            job["status"] = "completed"
        except Exception as error:
            job["status"] = "failed"
            job["error"] = error_to_wire(error)

    def _handle_task_status(self, connection: _Connection, args: dict) -> dict:
        task_id = args.get("task_id")
        job = connection.tenant.jobs.get(task_id)
        if job is None:
            raise UnknownEntityError(f"unknown task {task_id!r}")
        return dict(job)

    _HANDLERS = {
        "ping": _handle_ping,
        "publish": _handle_publish,
        "publish_many": _handle_publish_many,
        "query": _handle_query,
        "explain": _handle_explain,
        "ancestors": _handle_ancestors,
        "descendants": _handle_descendants,
        "locate": _handle_locate,
        "describe_record": _handle_describe_record,
        "stats": _handle_stats,
        "metrics": _handle_metrics,
        "metrics_export": _handle_metrics_export,
        "health": _handle_health,
        "alerts": _handle_alerts,
        "timeseries": _handle_timeseries,
        "refresh": _handle_refresh,
        "supports_lineage": _handle_supports_lineage,
        "subscribe": _handle_subscribe,
        "subscribe_descendants": _handle_subscribe_descendants,
        "unsubscribe": _handle_unsubscribe,
        "subscriptions": _handle_subscriptions,
        "flush_windows": _handle_flush_windows,
        "rebuild_index": _handle_rebuild_index,
        "task_status": _handle_task_status,
    }
