"""repro.server -- the provenance service daemon and its wire protocol.

Everything before this package ran in one process: the façade, the
planner, the stream engine and the simulated architectures all share an
interpreter with their caller.  The paper's provenance-aware sensor
store is meant to be a *service* -- many independent clients publishing
into and querying one store concurrently -- and this package makes that
real:

* :mod:`repro.server.protocol` -- a length-prefixed JSON wire protocol
  carrying the complete :class:`~repro.api.client.PassClient` surface
  (publish/query/explain, lineage, locate, stats, subscriptions as a
  streaming push feed) with stable error codes mapped from
  :mod:`repro.errors`,
* :mod:`repro.server.daemon` -- :class:`PassDaemon`, an asyncio socket
  server with token auth, per-tenant namespaces (isolated stores and
  subscription registries) and an async build/rebuild-closure job
  endpoint (``task_id`` + status polling),
* :mod:`repro.server.remote` -- :class:`RemoteClient`, the thin client
  registered under ``pass://host:port`` in the :func:`repro.api.connect`
  URL registry, so every existing test, bench and example runs unchanged
  against a live daemon.

Start a daemon from Python::

    from repro.server import PassDaemon

    daemon = PassDaemon(backend_url="memory://")
    address = daemon.start()            # background thread + asyncio loop
    client = connect(f"pass://{address.host}:{address.port}")

or from a terminal with ``repro serve --port 7100``.
"""

from repro.server.daemon import DaemonAddress, PassDaemon
from repro.server.remote import RemoteClient

__all__ = ["DaemonAddress", "PassDaemon", "RemoteClient"]
