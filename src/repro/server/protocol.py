"""The PASS wire protocol: framing and (de)serialization.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Three frame shapes travel over a connection:

* **requests** (client -> server): ``{"id": N, "op": "...", "args": {...}}``,
* **responses** (server -> client): ``{"id": N, "ok": true, "result": ...}``
  or ``{"id": N, "ok": false, "error": {"code": ..., "message": ...}}``,
* **pushes** (server -> client, no id): ``{"push": "event", "event": {...}}``
  for subscription deliveries and ``{"push": "goodbye", ...}`` when the
  daemon shuts down with the connection still open.

Everything the :class:`~repro.api.client.PassClient` surface passes --
tuple sets, queries (the full predicate algebra), window specs, results,
explain trees, subscription events -- has a ``*_to_wire`` /
``*_from_wire`` pair here, and every :mod:`repro.errors` exception maps
to a stable code (:func:`repro.errors.error_code`) so the client
re-raises the same type the server caught.  Attribute values ride the
same tagged-JSON convention the SQLite backend persists
(:func:`repro.core.provenance.value_to_json`), so a value round-trips
identically through either path.

Monitoring ops (``metrics``, ``metrics_export``, ``health``,
``alerts``, ``timeseries``) return plain JSON objects and need no
codec here; adding ops is wire-compatible, so they ride under the same
``WIRE_VERSION``.
"""

from __future__ import annotations

import json
import struct
from typing import IO, Optional

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.provenance import (
    PName,
    ProvenanceRecord,
    value_from_json,
    value_to_json,
)
from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Predicate,
    Query,
    TimeWindowOverlaps,
)
from repro.core.tupleset import SensorReading, TupleSet
from repro.errors import ProtocolError, error_code
from repro.query.explain import Explain
from repro.stream.subscription import LineageEvent, MatchEvent, WindowEvent
from repro.stream.windows import WindowSpec

from repro.api.results import Cost, Result

__all__ = [
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "encode_frame",
    "read_frame",
    "error_to_wire",
    "predicate_to_wire",
    "predicate_from_wire",
    "query_to_wire",
    "query_from_wire",
    "window_to_wire",
    "window_from_wire",
    "tuple_set_to_wire",
    "tuple_set_from_wire",
    "record_to_wire",
    "record_from_wire",
    "result_to_wire",
    "result_from_wire",
    "explain_to_wire",
    "explain_from_wire",
    "event_to_wire",
    "event_from_wire",
]

#: bumped on any incompatible change to frames, ops or error codes
WIRE_VERSION = 1

#: refuse absurd frames instead of attempting a multi-GiB allocation
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body; anything but a JSON object is a protocol error."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable frame body: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def frame_length(header: bytes) -> int:
    """Decode the 4-byte length prefix, enforcing the frame cap."""
    if len(header) != _LENGTH.size:
        raise ProtocolError("truncated frame header")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return length


def read_frame(stream: IO[bytes]) -> Optional[dict]:
    """Read one frame from a blocking byte stream; None on clean EOF.

    EOF in the *middle* of a frame is a :class:`ProtocolError` -- the
    peer vanished mid-sentence, which a caller should not mistake for a
    graceful close.
    """
    header = _read_exact(stream, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    body = _read_exact(stream, frame_length(header), allow_eof=False)
    return decode_body(body)


def _read_exact(stream: IO[bytes], count: int, allow_eof: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def error_to_wire(error: BaseException) -> dict:
    """The stable error envelope: code (typed) + human message."""
    return {"code": error_code(error), "message": str(error)}


# ----------------------------------------------------------------------
# PNames
# ----------------------------------------------------------------------
def pname_from_wire(digest) -> PName:
    if not isinstance(digest, str):
        raise ProtocolError(f"pname must be a digest string, got {digest!r}")
    try:
        return PName(digest)
    except Exception:
        raise ProtocolError(f"malformed pname digest {digest!r}") from None


# ----------------------------------------------------------------------
# Predicates and queries
# ----------------------------------------------------------------------
def predicate_to_wire(predicate: Predicate) -> dict:
    """Serialize any predicate of the core algebra."""
    if predicate is TRUE or type(predicate).__name__ == "_AlwaysTrue":
        return {"kind": "true"}
    if isinstance(predicate, AttributeEquals):
        return {"kind": "eq", "name": predicate.name, "value": value_to_json(predicate.value)}
    if isinstance(predicate, AttributeRange):
        return {
            "kind": "range",
            "name": predicate.name,
            "low": None if predicate.low is None else value_to_json(predicate.low),
            "high": None if predicate.high is None else value_to_json(predicate.high),
            "include_low": predicate.include_low,
            "include_high": predicate.include_high,
        }
    if isinstance(predicate, AttributeContains):
        return {"kind": "contains", "name": predicate.name, "needle": predicate.needle}
    if isinstance(predicate, AttributeIn):
        return {
            "kind": "in",
            "name": predicate.name,
            "values": [value_to_json(value) for value in predicate.values],
        }
    if isinstance(predicate, AttributeExists):
        return {"kind": "exists", "name": predicate.name}
    if isinstance(predicate, NearLocation):
        return {
            "kind": "near",
            "name": predicate.name,
            "lat": predicate.centre.latitude,
            "lon": predicate.centre.longitude,
            "radius_km": predicate.radius_km,
        }
    if isinstance(predicate, TimeWindowOverlaps):
        return {
            "kind": "overlaps",
            "start": predicate.start.seconds,
            "end": predicate.end.seconds,
            "start_attr": predicate.start_attr,
            "end_attr": predicate.end_attr,
        }
    if isinstance(predicate, AgentIs):
        return {
            "kind": "agent",
            "name": predicate.name,
            "agent_kind": predicate.kind,
            "version": predicate.version,
        }
    if isinstance(predicate, AnnotationMatches):
        return {
            "kind": "annotation",
            "key": predicate.key,
            "value": None if predicate.value is None else value_to_json(predicate.value),
        }
    if isinstance(predicate, IsRaw):
        return {"kind": "is_raw", "raw": predicate.raw}
    if isinstance(predicate, And):
        return {"kind": "and", "parts": [predicate_to_wire(part) for part in predicate.parts]}
    if isinstance(predicate, Or):
        return {"kind": "or", "parts": [predicate_to_wire(part) for part in predicate.parts]}
    if isinstance(predicate, Not):
        return {"kind": "not", "part": predicate_to_wire(predicate.part)}
    if isinstance(predicate, DerivedFrom):
        return {
            "kind": "derived_from",
            "ancestor": predicate.ancestor.digest,
            "include_self": predicate.include_self,
        }
    if isinstance(predicate, AncestorOf):
        return {
            "kind": "ancestor_of",
            "descendant": predicate.descendant.digest,
            "include_self": predicate.include_self,
        }
    raise ProtocolError(f"predicate {type(predicate).__name__} has no wire form")


def predicate_from_wire(payload) -> Predicate:
    """Inverse of :func:`predicate_to_wire`."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"predicate payload must be an object, got {payload!r}")
    kind = payload.get("kind")
    try:
        if kind == "true":
            return TRUE
        if kind == "eq":
            return AttributeEquals(payload["name"], value_from_json(payload["value"]))
        if kind == "range":
            return AttributeRange(
                payload["name"],
                low=None if payload["low"] is None else value_from_json(payload["low"]),
                high=None if payload["high"] is None else value_from_json(payload["high"]),
                include_low=payload["include_low"],
                include_high=payload["include_high"],
            )
        if kind == "contains":
            return AttributeContains(payload["name"], payload["needle"])
        if kind == "in":
            return AttributeIn(
                payload["name"], tuple(value_from_json(value) for value in payload["values"])
            )
        if kind == "exists":
            return AttributeExists(payload["name"])
        if kind == "near":
            return NearLocation(
                payload["name"],
                GeoPoint(payload["lat"], payload["lon"]),
                payload["radius_km"],
            )
        if kind == "overlaps":
            return TimeWindowOverlaps(
                Timestamp(payload["start"]),
                Timestamp(payload["end"]),
                start_attr=payload["start_attr"],
                end_attr=payload["end_attr"],
            )
        if kind == "agent":
            return AgentIs(payload["name"], payload["agent_kind"], payload["version"])
        if kind == "annotation":
            value = payload["value"]
            return AnnotationMatches(
                payload["key"], None if value is None else value_from_json(value)
            )
        if kind == "is_raw":
            return IsRaw(payload["raw"])
        if kind == "and":
            return And(tuple(predicate_from_wire(part) for part in payload["parts"]))
        if kind == "or":
            return Or(tuple(predicate_from_wire(part) for part in payload["parts"]))
        if kind == "not":
            return Not(predicate_from_wire(payload["part"]))
        if kind == "derived_from":
            return DerivedFrom(pname_from_wire(payload["ancestor"]), payload["include_self"])
        if kind == "ancestor_of":
            return AncestorOf(pname_from_wire(payload["descendant"]), payload["include_self"])
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed {kind!r} predicate: {error}") from None
    raise ProtocolError(f"unknown predicate kind {kind!r}")


def query_to_wire(query: Query) -> dict:
    return {
        "predicate": predicate_to_wire(query.predicate),
        "limit": query.limit,
        "include_removed": query.include_removed,
        "order_by": query.order_by,
    }


def query_from_wire(payload) -> Query:
    if not isinstance(payload, dict):
        raise ProtocolError(f"query payload must be an object, got {payload!r}")
    try:
        return Query(
            predicate=predicate_from_wire(payload["predicate"]),
            limit=payload.get("limit"),
            include_removed=payload.get("include_removed", True),
            order_by=payload.get("order_by"),
        )
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed query: {error}") from None


# ----------------------------------------------------------------------
# Window specs
# ----------------------------------------------------------------------
def window_to_wire(window: Optional[WindowSpec]) -> Optional[dict]:
    if window is None:
        return None
    return {
        "size_seconds": window.size_seconds,
        "slide_seconds": window.slide_seconds,
        "aggregate": window.aggregate,
        "value_attr": window.value_attr,
        "group_by": window.group_by,
        "time_attr": window.time_attr,
    }


def window_from_wire(payload) -> Optional[WindowSpec]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError(f"window payload must be an object, got {payload!r}")
    try:
        return WindowSpec(
            size_seconds=payload["size_seconds"],
            slide_seconds=payload.get("slide_seconds"),
            aggregate=payload.get("aggregate", "count"),
            value_attr=payload.get("value_attr"),
            group_by=payload.get("group_by"),
            time_attr=payload.get("time_attr", "window_start"),
        )
    except ProtocolError:
        raise
    except KeyError as error:
        raise ProtocolError(f"malformed window spec: missing {error}") from None
    # ConfigurationError from WindowSpec validation propagates typed: the
    # server maps it onto its stable code for the client to re-raise.


# ----------------------------------------------------------------------
# Records and tuple sets
# ----------------------------------------------------------------------
def record_to_wire(record: ProvenanceRecord) -> dict:
    return record.to_dict()


def record_from_wire(payload) -> ProvenanceRecord:
    if not isinstance(payload, dict):
        raise ProtocolError(f"record payload must be an object, got {payload!r}")
    try:
        return ProvenanceRecord.from_dict(payload)
    except Exception as error:
        raise ProtocolError(f"malformed provenance record: {error}") from None


def tuple_set_to_wire(tuple_set: TupleSet) -> dict:
    readings = []
    for reading in tuple_set:
        item = {
            "sensor_id": reading.sensor_id,
            "timestamp": reading.timestamp.seconds,
            "values": {key: value_to_json(value) for key, value in reading.values.items()},
        }
        if reading.location is not None:
            item["location"] = [reading.location.latitude, reading.location.longitude]
        readings.append(item)
    return {"provenance": record_to_wire(tuple_set.provenance), "readings": readings}


def tuple_set_from_wire(payload) -> TupleSet:
    if not isinstance(payload, dict):
        raise ProtocolError(f"tuple set payload must be an object, got {payload!r}")
    record = record_from_wire(payload.get("provenance"))
    readings = []
    try:
        for item in payload.get("readings", []):
            location = None
            if "location" in item:
                location = GeoPoint(item["location"][0], item["location"][1])
            readings.append(
                SensorReading(
                    sensor_id=item["sensor_id"],
                    timestamp=Timestamp(item["timestamp"]),
                    values={
                        key: value_from_json(value) for key, value in item["values"].items()
                    },
                    location=location,
                )
            )
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed readings payload: {error}") from None
    return TupleSet(readings, record)


# ----------------------------------------------------------------------
# Results, cost, explain
# ----------------------------------------------------------------------
def result_to_wire(result: Result) -> dict:
    return {
        "records": [pname.digest for pname in result.records],
        "cost": {
            "latency_ms": result.cost.latency_ms,
            "messages": result.cost.messages,
            "bytes": result.cost.bytes,
            "rows_scanned": result.cost.rows_scanned,
            "sites": list(result.cost.sites),
        },
        "notes": list(result.notes),
        "total": result.total,
        "offset": result.offset,
    }


def result_from_wire(payload) -> Result:
    if not isinstance(payload, dict):
        raise ProtocolError(f"result payload must be an object, got {payload!r}")
    try:
        cost_payload = payload.get("cost", {})
        return Result(
            records=[pname_from_wire(digest) for digest in payload.get("records", [])],
            cost=Cost(
                latency_ms=cost_payload.get("latency_ms", 0.0),
                messages=cost_payload.get("messages", 0),
                bytes=cost_payload.get("bytes", 0),
                rows_scanned=cost_payload.get("rows_scanned", 0),
                sites=list(cost_payload.get("sites", [])),
            ),
            notes=list(payload.get("notes", [])),
            total=payload.get("total"),
            offset=payload.get("offset", 0),
        )
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed result payload: {error}") from None


def explain_to_wire(explain: Explain) -> dict:
    return explain.to_dict()


def explain_from_wire(payload) -> Explain:
    if not isinstance(payload, dict):
        raise ProtocolError(f"explain payload must be an object, got {payload!r}")
    try:
        return Explain.from_dict(payload)
    except Exception as error:
        raise ProtocolError(f"malformed explain payload: {error}") from None


# ----------------------------------------------------------------------
# Subscription events (the push feed)
# ----------------------------------------------------------------------
def event_to_wire(event) -> dict:
    if isinstance(event, MatchEvent):
        return {
            "type": "match",
            "sub": event.subscription_id,
            "pname": event.pname.digest,
            "record": record_to_wire(event.record),
        }
    if isinstance(event, WindowEvent):
        return {
            "type": "window",
            "sub": event.subscription_id,
            "window_start": event.window_start,
            "window_end": event.window_end,
            "group": None if event.group is None else value_to_json(event.group),
            "aggregate": event.aggregate,
            "value": event.value,
            "count": event.count,
        }
    if isinstance(event, LineageEvent):
        return {
            "type": "lineage",
            "sub": event.subscription_id,
            "watched": event.watched.digest,
            "pname": event.pname.digest,
            "record": record_to_wire(event.record),
        }
    raise ProtocolError(f"event {type(event).__name__} has no wire form")


def event_from_wire(payload):
    if not isinstance(payload, dict):
        raise ProtocolError(f"event payload must be an object, got {payload!r}")
    kind = payload.get("type")
    try:
        if kind == "match":
            return MatchEvent(
                subscription_id=payload["sub"],
                pname=pname_from_wire(payload["pname"]),
                record=record_from_wire(payload["record"]),
            )
        if kind == "window":
            group = payload["group"]
            return WindowEvent(
                subscription_id=payload["sub"],
                window_start=payload["window_start"],
                window_end=payload["window_end"],
                group=None if group is None else value_from_json(group),
                aggregate=payload["aggregate"],
                value=payload["value"],
                count=payload["count"],
            )
        if kind == "lineage":
            return LineageEvent(
                subscription_id=payload["sub"],
                watched=pname_from_wire(payload["watched"]),
                pname=pname_from_wire(payload["pname"]),
                record=record_from_wire(payload["record"]),
            )
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed {kind!r} event: {error}") from None
    raise ProtocolError(f"unknown event type {kind!r}")
