"""The hierarchical filename/URL model (Section IV-B, fourth architecture).

"Organize the material into a hierarchical namespace and then use the
hierarchy to partition the data across a distributed network of servers.
...  Hierarchical naming systems are fundamentally limited by the need
to choose a significance ordering for the attributes.  This is a bad fit
for any problem where no natural ordering exists ...  Choosing either
one as most significant will make querying on the other difficult."

The model is given a *significance ordering* -- a list of attribute
names -- and assigns each published record a path like
``/<attr1>/<attr2>/.../<pname>``.  The first path component determines
which server owns the record.  The consequences the paper predicts fall
straight out:

* a query constraining the most-significant attribute routes to exactly
  one server,
* a query constraining only a less-significant attribute cannot be
  routed and must be broadcast to every server (and, within a server,
  scanned),
* attributes outside the ordering are not represented in the namespace
  at all; queries on them are also full broadcasts,
* recursive lineage queries have no home in a pure namespace; the model
  supports them only by broadcasting level-by-level, and experiment E8
  charges that cost.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set

from repro.core.attributes import canonical_encode
from repro.core.naming import FilenameConvention
from repro.core.provenance import PName
from repro.core.query import And, AttributeEquals, Predicate, Query
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    SiteStores,
    estimate_record_bytes,
)
from repro.errors import ConfigurationError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["HierarchicalNamespace"]

_QUERY_REQUEST_BYTES = 256
_POINTER_BYTES = 96


class HierarchicalNamespace(ArchitectureModel):
    """A namespace partitioned across servers by its most significant attribute.

    Parameters
    ----------
    significance_order:
        Attribute names, most significant first.  The first attribute's
        value chooses the owning server (hashed onto the site list).
    """

    name = "hierarchical"
    supports_lineage = True
    requires_stable_hosts = True

    def __init__(
        self,
        topology: Topology,
        significance_order: Sequence[str],
        network: Optional[NetworkSimulator] = None,
    ) -> None:
        super().__init__(topology, network)
        if not significance_order:
            raise ConfigurationError("significance_order must list at least one attribute")
        self.significance_order = list(significance_order)
        self.convention = FilenameConvention(self.significance_order, separator="/")
        self._sites = topology.site_names
        self._stores = SiteStores(self._sites)
        # top-level path component -> owning server
        self._partition_of: Dict[str, str] = {}
        self._paths: Dict[str, str] = {}  # pname digest -> full path
        self._component_of: Dict[str, str] = {}  # pname digest -> top-level component
        self._data_location: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Namespace mechanics
    # ------------------------------------------------------------------
    def path_for(self, tuple_set: TupleSet) -> str:
        """The namespace path assigned to a tuple set."""
        prefix = self.convention.name(tuple_set.provenance)
        return f"/{prefix}/{tuple_set.pname.short}"

    def server_for_component(self, component: str) -> str:
        """The server owning a top-level path component (stable assignment)."""
        if component not in self._partition_of:
            digest = hashlib.sha256(component.encode("utf-8")).hexdigest()
            index = int(digest[:8], 16) % len(self._sites)
            self._partition_of[component] = self._sites[index]
        return self._partition_of[component]

    def _top_component(self, tuple_set: TupleSet) -> str:
        value = tuple_set.provenance.get(self.significance_order[0])
        return canonical_encode(value) if value is not None else "unknown"

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        component = self._top_component(tuple_set)
        server = self.server_for_component(component)
        record_bytes = estimate_record_bytes(tuple_set)
        message = self.network.send(origin_site, server, record_bytes, "namespace-publish")
        ack = self.network.send(server, origin_site, 64, "namespace-ack")
        self._stores.store(server).ingest_record(tuple_set.provenance)
        self._paths[tuple_set.pname.digest] = self.path_for(tuple_set)
        self._component_of[tuple_set.pname.digest] = component
        self._data_location[tuple_set.pname.digest] = origin_site
        self._charge(
            result, message.latency_ms + ack.latency_ms, 2, record_bytes + 64, server
        )
        result.pnames = [tuple_set.pname]
        self.published += 1
        # The namespace server owning the path component disseminates.
        self._notify_subscribers(tuple_set, origin_site, result, source=server)
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        targets = self._route(query)
        slowest = 0.0
        matches: List[PName] = []
        with self.network.parallel() as fanout:
            for server in targets:
                with fanout.branch():
                    request = self.network.send(origin_site, server, _QUERY_REQUEST_BYTES, "query")
                    local = self._planned_query(self._stores.store(server), query, result)
                    response = self.network.send(
                        server, origin_site, _POINTER_BYTES * max(1, len(local)), "query-response"
                    )
                slowest = max(slowest, request.latency_ms + response.latency_ms)
                matches.extend(local)
                result.messages += 2
                result.bytes += _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(local))
                result.add_site(server)
        result.latency_ms += slowest
        result.pnames = sorted(set(matches), key=lambda p: p.digest)
        if len(targets) == len(self._sites):
            result.notes.append("non-primary attribute: broadcast to all servers")
        self.queries_run += 1
        return result

    def _route(self, query: Query) -> List[str]:
        """Which servers must be consulted for this query.

        Only an equality constraint on the *most significant* attribute
        can be routed; anything else touches every server.
        """
        primary = self.significance_order[0]
        predicate = query.predicate
        parts: List[Predicate]
        if isinstance(predicate, And):
            parts = list(predicate.parts)
        else:
            parts = [predicate]
        for part in parts:
            if isinstance(part, AttributeEquals) and part.name == primary:
                component = canonical_encode(part.value)
                return [self.server_for_component(component)]
        return list(self._sites)

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        """Namespace servers hold no lineage index; expand by broadcasting each level."""
        result = OperationResult()
        found: Set[PName] = set()
        frontier: Set[PName] = {pname}
        rounds = 0
        while frontier:
            rounds += 1
            round_latency = self.network.broadcast(
                origin_site, self._sites, 160 * len(frontier), "namespace-closure-step"
            )
            result.messages += len(self._sites)
            result.bytes += len(self._sites) * 160 * len(frontier)
            reply_latency = 0.0
            next_frontier: Set[PName] = set()
            with self.network.parallel():
                for server in self._sites:
                    store = self._stores.store(server)
                    neighbours: List[PName] = []
                    for node in frontier:
                        if node in store.graph:
                            step = store.graph.parents(node) if up else store.graph.children(node)
                            neighbours.extend(step)
                    response = self.network.send(
                        server, origin_site, _POINTER_BYTES * max(1, len(neighbours)), "namespace-closure-reply"
                    )
                    reply_latency = max(reply_latency, response.latency_ms)
                    result.messages += 1
                    result.bytes += _POINTER_BYTES * max(1, len(neighbours))
                    for neighbour in neighbours:
                        if neighbour not in found and neighbour.digest != pname.digest:
                            next_frontier.add(neighbour)
            result.latency_ms += round_latency + reply_latency
            found |= next_frontier
            frontier = next_frontier
        result.sites_contacted = list(self._sites)
        result.pnames = sorted(found, key=lambda p: p.digest)
        result.notes.append(f"closure rounds: {rounds}")
        self.queries_run += 1
        return result

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        component = self._component_of.get(pname.digest)
        if component is None:
            result.notes.append("unknown pname")
            return result
        server = self.server_for_component(component)
        request = self.network.send(origin_site, server, 128, "locate")
        response = self.network.send(server, origin_site, _POINTER_BYTES, "locate-response")
        self._charge(
            result, request.latency_ms + response.latency_ms, 2, 128 + _POINTER_BYTES, server
        )
        site = self._data_location.get(pname.digest)
        if site is not None:
            result.add_site(site)
            result.pnames = [pname]
        return result


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("hierarchical")
def _connect_hierarchical(spec):
    """``hierarchical://?order=city,domain,window_start`` -- a partitioned namespace."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    model = HierarchicalNamespace(
        topology_from_spec(spec),
        significance_order=spec.listing("order", ["city", "domain", "window_start"]),
    )
    return ModelClient(model, origin=spec.text("origin"))
