"""The federated-database model (Section IV-B, second architecture).

"A second model, the federated database, uses multiple autonomous
database systems, each with its own specific interface, transactions,
concurrency, and schema.  A federated system does provide the illusion
of a unified schema, but the fact that the components are truly disjoint
systems may lead to slow access."

The model gives every site an autonomous store *with its own schema*:
each site renames a configurable subset of attribute names (traffic
sites say ``city``, weather sites say ``region``, one site may call the
time window ``period_begin`` ...).  A mediator at the querying site
translates the global query into each site's dialect, pays a translation
overhead per site, forwards the query, and merges the answers back into
the global vocabulary.

Recursive queries are possible but expensive: the mediator iterates the
same level-by-level expansion as the distributed database, except that
it does not know which site holds a record's lineage, so each step asks
*every* site ("the components are truly disjoint systems").
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import (
    And,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    NearLocation,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    SiteStores,
    estimate_record_bytes,
)
from repro.errors import UnknownEntityError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["FederatedDatabase"]

_QUERY_REQUEST_BYTES = 320  # translated queries are wordier
_POINTER_BYTES = 96


def _rename_predicate(predicate: Predicate, mapping: Mapping[str, str]) -> Predicate:
    """Rewrite attribute names in a predicate according to a site's schema."""
    if isinstance(predicate, AttributeEquals):
        return AttributeEquals(mapping.get(predicate.name, predicate.name), predicate.value)
    if isinstance(predicate, AttributeRange):
        return AttributeRange(
            mapping.get(predicate.name, predicate.name),
            predicate.low,
            predicate.high,
            predicate.include_low,
            predicate.include_high,
        )
    if isinstance(predicate, AttributeContains):
        return AttributeContains(mapping.get(predicate.name, predicate.name), predicate.needle)
    if isinstance(predicate, AttributeIn):
        return AttributeIn(mapping.get(predicate.name, predicate.name), predicate.values)
    if isinstance(predicate, AttributeExists):
        return AttributeExists(mapping.get(predicate.name, predicate.name))
    if isinstance(predicate, NearLocation):
        return NearLocation(
            mapping.get(predicate.name, predicate.name), predicate.centre, predicate.radius_km
        )
    if isinstance(predicate, And):
        return And(tuple(_rename_predicate(part, mapping) for part in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(_rename_predicate(part, mapping) for part in predicate.parts))
    if isinstance(predicate, Not):
        return Not(_rename_predicate(predicate.part, mapping))
    # Lineage and agent predicates carry no attribute names to rename.
    return predicate


def _rename_record(record: ProvenanceRecord, mapping: Mapping[str, str]) -> ProvenanceRecord:
    """Store-side schema translation applied when a record is ingested at a site."""
    if not mapping:
        return record
    renamed = {mapping.get(name, name): value for name, value in record.attributes.items()}
    return ProvenanceRecord(
        attributes=renamed,
        ancestors=record.ancestors,
        agents=record.agents,
        annotations=record.annotations,
    )


class FederatedDatabase(ArchitectureModel):
    """Autonomous per-site databases behind a mediating query translator.

    Parameters
    ----------
    site_schemas:
        Mapping of site name -> {global attribute name: local name}.
        Sites absent from the mapping use the global vocabulary as-is.
    translation_ms:
        Mediator overhead per site per query (schema translation,
        driver/connector overhead) -- the "slow access" cost.
    """

    name = "federated"
    supports_lineage = True
    requires_stable_hosts = True

    def __init__(
        self,
        topology: Topology,
        network: Optional[NetworkSimulator] = None,
        site_schemas: Optional[Mapping[str, Mapping[str, str]]] = None,
        translation_ms: float = 1.5,
    ) -> None:
        super().__init__(topology, network)
        self._sites = topology.site_names
        self._stores = SiteStores(self._sites)
        self._schemas: Dict[str, Dict[str, str]] = {
            site: dict((site_schemas or {}).get(site, {})) for site in self._sites
        }
        self.translation_ms = translation_ms
        self._data_location: Dict[str, str] = {}

    def schema_for(self, site: str) -> Dict[str, str]:
        """The attribute-renaming map a site applies to global names."""
        if site not in self._schemas:
            raise UnknownEntityError(f"unknown site {site!r}")
        return dict(self._schemas[site])

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        """Data and provenance stay at the producing site's autonomous store.

        The record is stored under its global identity (the PName must
        stay stable across the federation or lineage would fragment); the
        site's schema dialect shows up on the query path, where the
        mediator pays a translation cost per site.
        """
        result = OperationResult()
        self._stores.store(origin_site).ingest_record(tuple_set.provenance)
        self._data_location[tuple_set.pname.digest] = origin_site
        # Local write: charged as a loopback message so resource accounting
        # still sees it, plus nothing crosses the wide area.
        message = self.network.send(
            origin_site, origin_site, estimate_record_bytes(tuple_set), "local-publish"
        )
        self._charge(result, message.latency_ms, 1, message.size_bytes, origin_site)
        result.pnames = [tuple_set.pname]
        self.published += 1
        # Autonomous sites push their own notifications from where the
        # data lives (no mediator on the dissemination path).
        self._notify_subscribers(tuple_set, origin_site, result)
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        slowest = 0.0
        matches: List[PName] = []
        # The mediator translates the query into each site's dialect (a
        # per-site latency cost paid serially at the mediator) before
        # fanning out; the sites' wrappers map their local names back
        # onto the shared records, so results are the same as executing
        # the global query -- federation's penalty is slow access, not
        # wrong answers.
        for site in self._sites:
            _ = _rename_predicate(query.predicate, self._schemas[site])
        result.latency_ms += self.network.local_compute(
            self.translation_ms * len(self._sites), origin_site
        )
        # Transfer and evaluation happen in parallel across sites.
        with self.network.parallel() as fanout:
            for site in self._sites:
                with fanout.branch():
                    request = self.network.send(
                        origin_site, site, _QUERY_REQUEST_BYTES, "federated-query"
                    )
                    local = self._planned_query(self._stores.store(site), query, result)
                    response = self.network.send(
                        site, origin_site, _POINTER_BYTES * max(1, len(local)), "federated-response"
                    )
                slowest = max(slowest, request.latency_ms + response.latency_ms)
                matches.extend(local)
                result.messages += 2
                result.bytes += _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(local))
                result.add_site(site)
        result.latency_ms += slowest
        result.pnames = sorted(set(matches), key=lambda p: p.digest)
        self.queries_run += 1
        return result

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        """Level-by-level expansion, asking every autonomous site each round."""
        result = OperationResult()
        found: Set[PName] = set()
        frontier: Set[PName] = {pname}
        rounds = 0
        while frontier:
            rounds += 1
            round_latency = self.network.broadcast(
                origin_site, self._sites, 160 * len(frontier), "federated-closure-step"
            )
            result.messages += len(self._sites)
            result.bytes += len(self._sites) * 160 * len(frontier)
            next_frontier: Set[PName] = set()
            reply_latency = 0.0
            with self.network.parallel():
                for site in self._sites:
                    store = self._stores.store(site)
                    neighbours: List[PName] = []
                    for node in frontier:
                        if node in store.graph:
                            step = store.graph.parents(node) if up else store.graph.children(node)
                            neighbours.extend(step)
                    response = self.network.send(
                        site, origin_site, _POINTER_BYTES * max(1, len(neighbours)), "federated-closure-reply"
                    )
                    reply_latency = max(reply_latency, response.latency_ms)
                    result.messages += 1
                    result.bytes += _POINTER_BYTES * max(1, len(neighbours))
                    for neighbour in neighbours:
                        if neighbour not in found and neighbour.digest != pname.digest:
                            next_frontier.add(neighbour)
            result.latency_ms += round_latency + reply_latency + self.network.local_compute(
                self.translation_ms * len(self._sites), origin_site
            )
            found |= next_frontier
            frontier = next_frontier
        result.sites_contacted = list(self._sites)
        result.pnames = sorted(found, key=lambda p: p.digest)
        result.notes.append(f"closure rounds: {rounds}")
        self.queries_run += 1
        return result

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        site = self._data_location.get(pname.digest)
        if site is None:
            # The mediator has to ask everyone.
            latency = self.network.broadcast(origin_site, self._sites, 128, "locate")
            self._charge(result, latency, len(self._sites), 128 * len(self._sites))
            result.notes.append("unknown pname")
            return result
        request = self.network.send(origin_site, site, 128, "locate")
        response = self.network.send(site, origin_site, _POINTER_BYTES, "locate-response")
        self._charge(
            result, request.latency_ms + response.latency_ms, 2, 128 + _POINTER_BYTES, site
        )
        result.pnames = [pname]
        return result


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("federated")
def _connect_federated(spec):
    """``federated://?translation=1.5`` -- autonomous per-site databases behind a mediator."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    model = FederatedDatabase(
        topology_from_spec(spec),
        translation_ms=spec.number("translation", 1.5),
    )
    return ModelClient(model, origin=spec.text("origin"))
