"""The centralized warehouse model (Section IV-A).

"In a centralized system, provenance metadata is sent to some central
data warehouse, where it is examined and indexed; query processing is
then done within the warehouse.  (The warehouse would not store actual
sensor data.)  This offers speed, simplicity, and ease of use."

The model keeps the readings at the origin site and ships only the
provenance record to the warehouse, which maintains a full PASS store
(so every query class, including transitive closure, works and is fast).
Its two paper-identified weaknesses are modelled explicitly:

* **Update saturation** -- the warehouse indexes at most
  ``max_updates_per_second``; once the offered update rate exceeds that,
  publishes queue and their latency grows linearly with the backlog
  ("it may not scale to the volume of updates associated with sensor
  data").
* **Index/data decoupling** -- the warehouse's pointer back to the data
  can silently break when the origin site reorganises its storage
  ("the linkage back from the index to the data might break or end up
  pointing to the wrong thing").  :meth:`break_links` injects that
  corruption and :meth:`locate` reports dangling pointers.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.pass_store import PassStore
from repro.core.provenance import PName
from repro.core.query import Predicate, Query
from repro.core.tupleset import TupleSet
from repro.distributed.base import ArchitectureModel, OperationResult, estimate_record_bytes
from repro.errors import UnknownEntityError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["CentralizedWarehouse"]

_QUERY_REQUEST_BYTES = 256
_POINTER_BYTES = 96


class CentralizedWarehouse(ArchitectureModel):
    """All provenance metadata indexed at a single warehouse site."""

    name = "centralized"
    supports_lineage = True
    requires_stable_hosts = True

    def __init__(
        self,
        topology: Topology,
        warehouse_site: str,
        network: Optional[NetworkSimulator] = None,
        max_updates_per_second: float = 2000.0,
        indexing_ms_per_update: float = 0.05,
    ) -> None:
        super().__init__(topology, network)
        if warehouse_site not in topology:
            raise UnknownEntityError(f"warehouse site {warehouse_site!r} not in topology")
        self.warehouse_site = warehouse_site
        self.index = PassStore(site=warehouse_site)
        self.max_updates_per_second = max_updates_per_second
        self.indexing_ms_per_update = indexing_ms_per_update
        # pname digest -> site holding the readings
        self._data_location: Dict[str, str] = {}
        self._broken_links: set = set()
        # Saturation model: a virtual queue of pending index updates.
        self._pending_updates = 0.0
        self._offered_rate: Optional[float] = None

    # ------------------------------------------------------------------
    # Saturation knobs (experiment E5 drives these)
    # ------------------------------------------------------------------
    def set_offered_update_rate(self, updates_per_second: Optional[float]) -> None:
        """Tell the saturation model the current offered update rate.

        ``None`` disables queueing (publishes are charged only their
        indexing time).  When the offered rate exceeds the warehouse
        capacity, each publish sees a queueing delay that grows with the
        backlog -- the standard behaviour of an overloaded single writer.
        """
        self._offered_rate = updates_per_second
        self._pending_updates = 0.0

    def _queueing_delay_ms(self) -> float:
        if self._offered_rate is None:
            return 0.0
        overload = self._offered_rate / self.max_updates_per_second
        if overload <= 1.0:
            return 0.0
        # Each arriving update leaves (overload - 1) unserved updates behind;
        # the backlog, and hence the wait, grows linearly while overloaded.
        self._pending_updates += overload - 1.0
        return self._pending_updates * (1000.0 / self.max_updates_per_second)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        record_bytes = estimate_record_bytes(tuple_set)
        message = self.network.send(
            origin_site, self.warehouse_site, record_bytes, "publish-provenance"
        )
        self.index.ingest_record(tuple_set.provenance)
        self._data_location[tuple_set.pname.digest] = origin_site
        # Indexing is real work *at the warehouse*: under kernel replay it
        # occupies the warehouse server, which is what saturates under
        # concurrent publishers.
        indexing_ms = self.network.local_compute(
            self.indexing_ms_per_update + self._queueing_delay_ms(), self.warehouse_site
        )
        ack = self.network.send(self.warehouse_site, origin_site, 64, "publish-ack")
        self._charge(
            result,
            message.latency_ms + indexing_ms + ack.latency_ms,
            2,
            record_bytes + 64,
            self.warehouse_site,
        )
        result.pnames = [tuple_set.pname]
        self.published += 1
        # Subscribers are notified by the warehouse, which is where the
        # match happens -- dissemination cost scales with its fan-out.
        self._notify_subscribers(tuple_set, origin_site, result, source=self.warehouse_site)
        return result

    def publish_batch(self, tuple_sets, origin_site: str) -> OperationResult:
        """Ship a whole batch of provenance records in one round trip.

        The warehouse still charges indexing (and queueing, when
        saturated) per record, but the batch pays wide-area latency and
        per-message overhead once -- the bulk-update path a real central
        warehouse would expose.
        """
        result = OperationResult()
        if not tuple_sets:
            return result
        batch_bytes = sum(estimate_record_bytes(ts) for ts in tuple_sets)
        message = self.network.send(
            origin_site, self.warehouse_site, batch_bytes, "publish-provenance-batch"
        )
        indexing_ms = 0.0
        for tuple_set in tuple_sets:
            self.index.ingest_record(tuple_set.provenance)
            self._data_location[tuple_set.pname.digest] = origin_site
            indexing_ms += self.indexing_ms_per_update + self._queueing_delay_ms()
            result.pnames.append(tuple_set.pname)
        indexing_ms = self.network.local_compute(indexing_ms, self.warehouse_site)
        ack = self.network.send(self.warehouse_site, origin_site, 64, "publish-batch-ack")
        self._charge(
            result,
            message.latency_ms + indexing_ms + ack.latency_ms,
            2,
            batch_bytes + 64,
            self.warehouse_site,
        )
        self.published += len(tuple_sets)
        for tuple_set in tuple_sets:
            self._notify_subscribers(tuple_set, origin_site, result, source=self.warehouse_site)
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        request = self.network.send(
            origin_site, self.warehouse_site, _QUERY_REQUEST_BYTES, "query"
        )
        matches = self._planned_query(self.index, query, result)
        response_bytes = _POINTER_BYTES * max(1, len(matches))
        response = self.network.send(
            self.warehouse_site, origin_site, response_bytes, "query-response"
        )
        self._charge(
            result,
            request.latency_ms + response.latency_ms,
            2,
            _QUERY_REQUEST_BYTES + response_bytes,
            self.warehouse_site,
        )
        result.pnames = matches
        self.queries_run += 1
        return result

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        result = OperationResult()
        request = self.network.send(
            origin_site, self.warehouse_site, _QUERY_REQUEST_BYTES, "lineage-query"
        )
        found = self.index.ancestors(pname) if up else self.index.descendants(pname)
        response_bytes = _POINTER_BYTES * max(1, len(found))
        response = self.network.send(
            self.warehouse_site, origin_site, response_bytes, "lineage-response"
        )
        self._charge(
            result,
            request.latency_ms + response.latency_ms,
            2,
            _QUERY_REQUEST_BYTES + response_bytes,
            self.warehouse_site,
        )
        result.pnames = sorted(found, key=lambda p: p.digest)
        self.queries_run += 1
        return result

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        request = self.network.send(origin_site, self.warehouse_site, 128, "locate")
        response = self.network.send(self.warehouse_site, origin_site, _POINTER_BYTES, "locate-response")
        self._charge(
            result,
            request.latency_ms + response.latency_ms,
            2,
            128 + _POINTER_BYTES,
            self.warehouse_site,
        )
        site = self._data_location.get(pname.digest)
        if site is None:
            result.notes.append("unknown pname")
            return result
        if pname.digest in self._broken_links:
            result.notes.append("dangling link")
            return result
        result.add_site(site)
        result.pnames = [pname]
        return result

    # ------------------------------------------------------------------
    # Inconsistency injection (experiment E5)
    # ------------------------------------------------------------------
    def break_links(self, fraction: float, rng: Optional[random.Random] = None) -> int:
        """Silently break a fraction of the index->data pointers.

        Models the loose coupling between a remote index and the data it
        points at; returns how many links were broken.
        """
        rng = rng if rng is not None else random.Random(0)
        broken = 0
        for digest in sorted(self._data_location):
            if rng.random() < fraction and digest not in self._broken_links:
                self._broken_links.add(digest)
                broken += 1
        return broken

    def dangling_fraction(self) -> float:
        """Fraction of locate answers that would currently dangle."""
        if not self._data_location:
            return 0.0
        return len(self._broken_links) / len(self._data_location)


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("centralized")
def _connect_centralized(spec):
    """``centralized://?cities=london,boston&rate=2000`` -- the warehouse model."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    topology = topology_from_spec(spec)
    model = CentralizedWarehouse(
        topology,
        warehouse_site=spec.text("warehouse", "warehouse"),
        max_updates_per_second=spec.number("rate", 2000.0),
    )
    return ModelClient(model, origin=spec.text("origin"))
