"""The paper's own position: locale-aware provenance-aware storage.

Section III-D: "Storage should be near the sensors ...  Boston traffic
data belongs in Boston, not in Singapore or even Seattle", and Section V
sketches the system: local PASS installations that can be merged "into
single globally searchable data archives" with "distributed naming and
indexing schemes, and support for distributed queries".

:class:`LocaleAwarePass` models that design:

* every tuple set is stored, with its full provenance, at the storage
  site nearest to where it was produced (or at the producing site
  itself, when it is a storage site);
* each site runs a complete local :class:`~repro.core.pass_store.PassStore`
  (attribute indexes *and* closure support), so queries about local data
  -- the common case the paper argues for -- never leave the site;
* a lightweight global catalogue maps each attribute name to the sites
  that have ever published a value for it, so a distributed query is
  forwarded only to the sites that could possibly answer it rather than
  broadcast everywhere;
* lineage queries start at the site holding the focus record and follow
  cross-site references only when the lineage actually crosses sites.

This is the model experiments E10 and E12 hold up against the other
architectures: it should win on locality and resource consumption while
matching the centralized model on query capability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.attributes import GeoPoint
from repro.core.provenance import PName
from repro.core.query import Predicate, Query
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    SiteStores,
    estimate_record_bytes,
)
from repro.errors import UnknownEntityError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["LocaleAwarePass"]

_QUERY_REQUEST_BYTES = 256
_POINTER_BYTES = 96
_CATALOGUE_BYTES = 64
# A digest located this many times from the same remote origin is "hot":
# its provenance metadata gets replicated to that origin so further
# locates (and lineage walks starting there) stay on-site.  Three repeats
# keeps one-off probes -- everything the existing workloads do -- from
# triggering replication.
_HOT_KEY_THRESHOLD = 3


class LocaleAwarePass(ArchitectureModel):
    """Federated local PASS stores with locality-aware placement and routing."""

    name = "locale-aware-pass"
    supports_lineage = True
    requires_stable_hosts = True

    def __init__(self, topology: Topology, network: Optional[NetworkSimulator] = None) -> None:
        super().__init__(topology, network)
        self._sites = topology.site_names
        self._stores = SiteStores(self._sites)
        # Global catalogue: attribute name -> sites holding records with it.
        # Kept small (names only, no values) so keeping it replicated
        # everywhere is cheap; updates are piggybacked on publishes.
        self._catalogue: Dict[str, Set[str]] = {}
        self._home: Dict[str, str] = {}
        # Hot-key placement: repeated locates of the same digest from the
        # same origin are counted, and past _HOT_KEY_THRESHOLD the home
        # pushes a metadata replica to the origin (paid once), after which
        # that origin answers its own locates.
        self._locate_counts: Dict[Tuple[str, str], int] = {}
        self._replicas: Dict[str, Set[str]] = {}
        self._replica_hits = 0
        self._replicas_placed = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def placement_site(self, tuple_set: TupleSet, origin_site: str) -> str:
        """Where a tuple set belongs: the storage site nearest its origin."""
        location = tuple_set.provenance.get("location")
        if isinstance(location, GeoPoint):
            return self.topology.nearest_site(location).name
        return origin_site

    def home_of(self, pname: PName) -> str:
        """The site holding a record's readings and authoritative provenance."""
        try:
            return self._home[pname.digest]
        except KeyError:
            raise UnknownEntityError(f"unknown data set {pname}") from None

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        home = self.placement_site(tuple_set, origin_site)
        record_bytes = estimate_record_bytes(tuple_set)
        if home == origin_site:
            message = self.network.send(origin_site, home, record_bytes, "local-publish")
            self._charge(result, message.latency_ms, 1, record_bytes, home)
        else:
            message = self.network.send(origin_site, home, record_bytes, "nearby-publish")
            ack = self.network.send(home, origin_site, 64, "publish-ack")
            self._charge(
                result, message.latency_ms + ack.latency_ms, 2, record_bytes + 64, home
            )
        self._stores.store(home).ingest(tuple_set)
        self._home[tuple_set.pname.digest] = home

        # Cross-site lineage references: when this data set derives from data
        # homed elsewhere, tell the ancestor's home about the new child (a
        # metadata-only record) so forward (descendant/taint) queries starting
        # there can find it.  This is the "cross-references among files" cost
        # Section V warns about, paid once per cross-site edge.
        for ancestor in tuple_set.provenance.ancestors:
            ancestor_home = self._home.get(ancestor.digest)
            if ancestor_home is not None and ancestor_home != home:
                edge = self.network.send(
                    home, ancestor_home, record_bytes, "cross-site-edge"
                )
                self._stores.store(ancestor_home).ingest_record(tuple_set.provenance)
                self._charge(result, edge.latency_ms, 1, record_bytes, ancestor_home)

        # Catalogue maintenance: announce *new* attribute names only.
        new_names = [
            name
            for name in tuple_set.provenance.attributes
            if home not in self._catalogue.get(name, set())
        ]
        if new_names:
            others = [site for site in self._sites if site != home]
            if others:
                latency = self.network.broadcast(
                    home, others, _CATALOGUE_BYTES, "catalogue-update"
                )
                self._charge(result, latency, len(others), _CATALOGUE_BYTES * len(others))
            for name in new_names:
                self._catalogue.setdefault(name, set()).add(home)

        result.pnames = [tuple_set.pname]
        self.published += 1
        # The home (placement) site holds the committed record and pushes
        # the notifications; locale-aware placement keeps them short-haul.
        self._notify_subscribers(tuple_set, origin_site, result, source=home)
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        targets = self._route(query, origin_site)
        matches: List[PName] = []
        slowest = 0.0
        with self.network.parallel() as fanout:
            for site in targets:
                with fanout.branch():
                    request = self.network.send(origin_site, site, _QUERY_REQUEST_BYTES, "query")
                    local = self._planned_query(self._stores.store(site), query, result)
                    response = self.network.send(
                        site, origin_site, _POINTER_BYTES * max(1, len(local)), "query-response"
                    )
                slowest = max(slowest, request.latency_ms + response.latency_ms)
                matches.extend(local)
                result.messages += 2
                result.bytes += _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(local))
                result.add_site(site)
        result.latency_ms += slowest
        result.pnames = sorted(set(matches), key=lambda p: p.digest)
        self.queries_run += 1
        return result

    def _route(self, query: Query, origin_site: str) -> List[str]:
        """Sites that could answer: intersection of catalogue entries.

        A query whose attributes have never been published anywhere still
        has to ask the local site (cheap) to return an empty answer.
        """
        referenced = query.attributes_referenced()
        candidate_sets = [
            self._catalogue[name] for name in referenced if name in self._catalogue
        ]
        if not candidate_sets:
            if referenced:
                return [origin_site]
            return list(self._sites)
        targets: Set[str] = set.union(*candidate_sets)
        return sorted(targets)

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        """Start at the focus record's home; hop sites only when lineage does."""
        result = OperationResult()
        home = self._home.get(pname.digest)
        if home is None:
            result.notes.append("unknown pname")
            return result
        request = self.network.send(origin_site, home, _QUERY_REQUEST_BYTES, "lineage-query")
        self._charge(result, request.latency_ms, 1, _QUERY_REQUEST_BYTES, home)

        found: Set[PName] = set()
        visited_sites: Set[str] = set()
        frontier: Set[PName] = {pname}
        current_site = home
        while frontier:
            store = self._stores.store(current_site)
            visited_sites.add(current_site)
            next_frontier: Set[PName] = set()
            remote: Set[PName] = set()
            for node in frontier:
                if node in store.graph:
                    step = (
                        store.closure.ancestors(node) if up else store.closure.descendants(node)
                    )
                    for neighbour in step:
                        if neighbour.digest != pname.digest:
                            found.add(neighbour)
                        # A neighbour whose record is not held locally lives
                        # at another site; chase it there.
                        if neighbour not in store and neighbour.digest in self._home:
                            remote.add(neighbour)
                else:
                    remote.add(node)
            # Chase at most one remote site per round (nearest first), which
            # keeps the hop count proportional to how often lineage actually
            # crosses sites.
            remote_by_site: Dict[str, Set[PName]] = {}
            for node in remote:
                site = self._home.get(node.digest)
                if site is not None and site not in visited_sites:
                    remote_by_site.setdefault(site, set()).add(node)
            if not remote_by_site:
                break
            next_site = min(
                remote_by_site,
                key=lambda site: self.topology.latency_ms(current_site, site),
            )
            hop = self.network.send(current_site, next_site, _QUERY_REQUEST_BYTES, "lineage-hop")
            reply = self.network.send(
                next_site, origin_site, _POINTER_BYTES * max(1, len(found)), "lineage-reply"
            )
            self._charge(
                result,
                hop.latency_ms + reply.latency_ms,
                2,
                _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(found)),
                next_site,
            )
            frontier = remote_by_site[next_site]
            current_site = next_site

        response = self.network.send(
            home, origin_site, _POINTER_BYTES * max(1, len(found)), "lineage-response"
        )
        self._charge(
            result, response.latency_ms, 1, _POINTER_BYTES * max(1, len(found)), home
        )
        result.pnames = sorted(found, key=lambda p: p.digest)
        result.sites_contacted = sorted(visited_sites)
        self.queries_run += 1
        return result

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        home = self._home.get(pname.digest)
        if home is None:
            result.notes.append("unknown pname")
            return result
        if origin_site != home and origin_site in self._replicas.get(pname.digest, set()):
            # Hot-key replica: the origin holds this record's metadata, so
            # the locate never leaves the site.
            local = self.network.send(origin_site, origin_site, _POINTER_BYTES, "locate-local")
            self._charge(result, local.latency_ms, 1, _POINTER_BYTES, origin_site)
            result.add_site(origin_site)
            result.notes.append("hot-key replica: answered locally")
            result.pnames = [pname]
            self._replica_hits += 1
            return result
        request = self.network.send(origin_site, home, 128, "locate")
        response = self.network.send(home, origin_site, _POINTER_BYTES, "locate-response")
        self._charge(
            result, request.latency_ms + response.latency_ms, 2, 128 + _POINTER_BYTES, home
        )
        result.add_site(home)
        result.pnames = [pname]
        if origin_site != home:
            self._note_locate(pname, origin_site, home, result)
        return result

    def _note_locate(
        self, pname: PName, origin_site: str, home: str, result: OperationResult
    ) -> None:
        """Count a remote locate; replicate the metadata once it runs hot."""
        key = (origin_site, pname.digest)
        count = self._locate_counts.get(key, 0) + 1
        if count < _HOT_KEY_THRESHOLD:
            self._locate_counts[key] = count
            return
        self._locate_counts.pop(key, None)
        record = self._stores.store(home).get_record(pname)
        record_bytes = len(record.to_json().encode("utf-8"))
        push = self.network.send(home, origin_site, record_bytes, "hot-key-replicate")
        self._stores.store(origin_site).ingest_record(record)
        self._replicas.setdefault(pname.digest, set()).add(origin_site)
        self._charge(result, push.latency_ms, 1, record_bytes, origin_site)
        result.notes.append("hot key: metadata replicated to origin")
        self._replicas_placed += 1

    def hot_key_stats(self) -> Dict[str, object]:
        """Diagnostics for hot-key replication (kept out of ``stats()``).

        Includes the per-site result-cache hot keys sampled from each
        local store's feedback collector: the same signal that drives the
        single-store result cache feeds the placement decision here.
        """
        return {
            "threshold": _HOT_KEY_THRESHOLD,
            "tracked": len(self._locate_counts),
            "replicas_placed": self._replicas_placed,
            "replica_hits": self._replica_hits,
            "replicas": {
                digest: sorted(sites) for digest, sites in sorted(self._replicas.items())
            },
            "site_hot_keys": {
                site: store.feedback.hot_keys()
                for site, store in self._stores.items()
                if store.feedback.hot_keys()
            },
        }

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def placement_distance_km(self, pname: PName, origin_site: str) -> float:
        """Distance between the producing site and where the data was placed."""
        home = self.home_of(pname)
        return self.topology.distance_km(origin_site, home)

    def store_at(self, site: str):
        """The local PASS store at ``site`` (used by tests and examples)."""
        return self._stores.store(site)


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("locale-aware-pass", "locale")
def _connect_locale_aware(spec):
    """``locale-aware-pass://?cities=london,boston`` -- the paper's proposed design."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    model = LocaleAwarePass(topology_from_spec(spec))
    return ModelClient(model, origin=spec.text("origin"))
