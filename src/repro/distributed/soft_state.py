"""The soft-state Grid-services model (Section IV-B, third architecture).

"A third model, choosing availability over consistency, relies on
soft-state and a mostly stable network."  The paper's examples are the
Replica Location Service (RLS) -- "its metadata lookup service is
distributed, reducing update and query load, and it relies on periodic
updates to keep its soft-state from becoming stale" -- and the Storage
Resource Broker (SRB), which stores metadata as name-value pairs in
zones but whose "metadata model denies transitive closure".

The model:

* keeps data and full provenance at the producing site (data is "stored
  at the producers"), grouped into *zones*,
* maintains one soft-state index node per zone; producers push summaries
  of their new records to their zone index only every
  ``refresh_interval_seconds`` of simulated time, so the index lags
  reality -- queries between refreshes miss recent data (lost recall)
  and can return records whose data was since removed (lost precision),
* answers attribute queries from the zone indexes (cheap, parallel),
* **refuses transitive-closure queries** (:class:`UnsupportedQueryError`),
  reproducing the SRB limitation the paper calls out.

A simulated clock (:meth:`advance_time`) drives refresh; experiment E7
sweeps the refresh interval against the publish rate and reports
precision/recall.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.pass_store import PassStore
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import Predicate, Query
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    SiteStores,
    estimate_record_bytes,
)
from repro.errors import ConfigurationError, UnknownEntityError, UnsupportedQueryError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["SoftStateIndex"]

_QUERY_REQUEST_BYTES = 256
_POINTER_BYTES = 96
_SUMMARY_BYTES = 200  # a pushed index summary is smaller than the full record


class SoftStateIndex(ArchitectureModel):
    """RLS/SRB-style soft-state metadata service divided into zones.

    Parameters
    ----------
    zones:
        Mapping of zone name -> (index site, member producer sites).
        Every topology site must belong to exactly one zone.
    refresh_interval_seconds:
        Simulated time between a producer's pushes to its zone index.
    """

    name = "soft-state"
    supports_lineage = False
    requires_stable_hosts = True

    def __init__(
        self,
        topology: Topology,
        zones: Mapping[str, Tuple[str, Sequence[str]]],
        network: Optional[NetworkSimulator] = None,
        refresh_interval_seconds: float = 300.0,
    ) -> None:
        super().__init__(topology, network)
        if refresh_interval_seconds <= 0:
            raise ConfigurationError("refresh_interval_seconds must be positive")
        self.refresh_interval_seconds = refresh_interval_seconds
        self._zones: Dict[str, Tuple[str, List[str]]] = {}
        self._zone_of_site: Dict[str, str] = {}
        for zone, (index_site, members) in zones.items():
            if index_site not in topology:
                raise UnknownEntityError(f"zone index site {index_site!r} not in topology")
            member_list = list(members)
            for member in member_list:
                if member not in topology:
                    raise UnknownEntityError(f"zone member {member!r} not in topology")
                self._zone_of_site[member] = zone
            self._zones[zone] = (index_site, member_list)
        # Local authoritative stores (per producer) and per-zone index stores.
        self._stores = SiteStores(topology.site_names)
        self._zone_indexes: Dict[str, PassStore] = {
            zone: PassStore(site=index_site) for zone, (index_site, _) in self._zones.items()
        }
        # Records published but not yet pushed to the zone index.
        self._unpushed: Dict[str, List[ProvenanceRecord]] = {site: [] for site in topology.site_names}
        # Each producer refreshes on its own schedule; staggering the phases
        # (deterministically, by site name) mirrors real RLS deployments and
        # keeps refresh instants from accidentally lining up with workload
        # boundaries in experiments.
        self._last_refresh: Dict[str, float] = {
            site: -self._phase_offset(site) for site in topology.site_names
        }
        self._data_location: Dict[str, str] = {}
        self.clock_seconds = 0.0

    # ------------------------------------------------------------------
    # Zones and time
    # ------------------------------------------------------------------
    def _phase_offset(self, site: str) -> float:
        """Deterministic per-site refresh phase in [0, refresh_interval)."""
        import hashlib

        digest = hashlib.sha256(site.encode("utf-8")).hexdigest()
        fraction = int(digest[:8], 16) / 0xFFFFFFFF
        return fraction * self.refresh_interval_seconds

    def zone_of(self, site: str) -> str:
        """Which zone a producer site belongs to."""
        try:
            return self._zone_of_site[site]
        except KeyError:
            raise UnknownEntityError(f"site {site!r} belongs to no zone") from None

    def advance_time(self, seconds: float) -> int:
        """Advance the simulated clock, pushing due refreshes; returns pushes sent."""
        if seconds < 0:
            raise ConfigurationError("cannot advance time backwards")
        self.clock_seconds += seconds
        pushed = 0
        for site in sorted(self._unpushed):
            if not self._unpushed[site]:
                continue
            if self.clock_seconds - self._last_refresh[site] >= self.refresh_interval_seconds:
                pushed += self._refresh_site(site)
        return pushed

    def force_refresh(self) -> int:
        """Push every pending summary immediately (used to establish ground truth)."""
        pushed = 0
        for site in sorted(self._unpushed):
            if self._unpushed[site]:
                pushed += self._refresh_site(site)
        return pushed

    def _refresh_site(self, site: str) -> int:
        zone = self.zone_of(site)
        index_site, _ = self._zones[zone]
        pending = self._unpushed[site]
        for record in pending:
            self.network.send(site, index_site, _SUMMARY_BYTES, "soft-state-refresh")
            self._zone_indexes[zone].ingest_record(record)
        count = len(pending)
        self._unpushed[site] = []
        self._last_refresh[site] = self.clock_seconds
        return count

    def pending_count(self) -> int:
        """Records published but not yet visible in any zone index."""
        return sum(len(records) for records in self._unpushed.values())

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        record = tuple_set.provenance
        self._stores.store(origin_site).ingest_record(record)
        self._unpushed[origin_site].append(record)
        self._data_location[tuple_set.pname.digest] = origin_site
        message = self.network.send(
            origin_site, origin_site, estimate_record_bytes(tuple_set), "local-publish"
        )
        self._charge(result, message.latency_ms, 1, message.size_bytes, origin_site)
        result.pnames = [tuple_set.pname]
        self.published += 1
        # Notifications are producer-pushed immediately -- unlike the zone
        # *indexes*, which stay stale until the next soft-state refresh.
        # That split is the point: streaming dissemination is exactly what
        # the soft-state architecture is built for.
        self._notify_subscribers(tuple_set, origin_site, result)
        return result

    def remove(self, pname: PName) -> None:
        """Remove a data set at its producer.

        The zone index is *not* told until the next refresh: until then
        the index keeps advertising data that no longer exists, which is
        the precision loss experiment E7 measures.
        """
        site = self._data_location.get(pname.digest)
        if site is None:
            raise UnknownEntityError(f"unknown data set {pname}")
        self._stores.store(site).remove_data(pname)

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        if query.requires_lineage:
            # The zone indexes only know *pushed* records, so closure over
            # them could silently be wrong; refuse like ancestors() does.
            raise UnsupportedQueryError(
                "the soft-state metadata model denies transitive closure (Section IV-B)"
            )
        result = OperationResult()
        matches: List[PName] = []
        slowest = 0.0
        # Zone indexes are queried in parallel; the slowest one gates.
        with self.network.parallel() as fanout:
            for zone, (index_site, _) in sorted(self._zones.items()):
                with fanout.branch():
                    request = self.network.send(origin_site, index_site, _QUERY_REQUEST_BYTES, "query")
                    local = self._planned_query(self._zone_indexes[zone], query, result)
                    response = self.network.send(
                        index_site, origin_site, _POINTER_BYTES * max(1, len(local)), "query-response"
                    )
                slowest = max(slowest, request.latency_ms + response.latency_ms)
                matches.extend(local)
                result.messages += 2
                result.bytes += _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(local))
                result.add_site(index_site)
        result.latency_ms += slowest
        result.pnames = sorted(set(matches), key=lambda p: p.digest)
        self.queries_run += 1
        return result

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        raise UnsupportedQueryError(
            "the soft-state metadata model denies transitive closure (Section IV-B)"
        )

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        raise UnsupportedQueryError(
            "the soft-state metadata model denies transitive closure (Section IV-B)"
        )

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        zone = None
        site = self._data_location.get(pname.digest)
        if site is not None:
            zone = self.zone_of(site)
        # The consumer asks its own zone's index first, then others.
        order = sorted(self._zones, key=lambda name: 0 if name == zone else 1)
        for zone_name in order:
            index_site, _ = self._zones[zone_name]
            request = self.network.send(origin_site, index_site, 128, "locate")
            known = pname in self._zone_indexes[zone_name]
            response = self.network.send(index_site, origin_site, _POINTER_BYTES, "locate-response")
            self._charge(
                result, request.latency_ms + response.latency_ms, 2, 128 + _POINTER_BYTES, index_site
            )
            if known and site is not None:
                if self._stores.store(site).is_removed(pname):
                    result.notes.append("stale index entry: data was removed")
                result.add_site(site)
                result.pnames = [pname]
                return result
        result.notes.append("not found in any zone index (possibly not yet refreshed)")
        return result


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("soft-state")
def _connect_soft_state(spec):
    """``soft-state://?refresh=300&zones=2`` -- RLS/SRB-style zoned soft state.

    Storage sites are split round-robin-by-halves into ``zones`` zones,
    each indexed at its first member site (mirroring the evaluation
    harness's standard scenario).
    """
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec
    from repro.errors import ConfigurationError

    topology = topology_from_spec(spec)
    storage = [site.name for site in topology.sites(kind="storage")]
    zone_count = spec.integer("zones", 2)
    if zone_count < 1:
        raise ConfigurationError("zones must be at least 1")
    zone_count = min(zone_count, len(storage))
    per_zone = max(1, len(storage) // zone_count)
    zones = {}
    for index in range(zone_count):
        members = storage[index * per_zone:(index + 1) * per_zone]
        if index == zone_count - 1:
            members = storage[index * per_zone:]
        if not members:
            continue
        zones[f"zone-{index}"] = (members[0], members)
    model = SoftStateIndex(
        topology,
        zones=zones,
        refresh_interval_seconds=spec.number("refresh", 300.0),
    )
    return ModelClient(model, origin=spec.text("origin"))
