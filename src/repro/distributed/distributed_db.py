"""The distributed-database model (Section IV-B, first architecture).

"Distributed databases inherently provide unified schemas, a useful
property.  However, they have limited ability to process recursive
queries (e.g., transitive closure), and optimizing continuous,
distributed queries is still an open problem."  The paper also notes
that "both of these models provide strong consistency: full transaction
semantics.  However, this may be overkill for sensor data".

The model:

* partitions provenance records across all participating sites by a hash
  of the record's PName (a unified, system-chosen partitioning -- the
  client does not get to pick locality),
* runs every write as a transaction coordinated by the origin site:
  prepare + commit messages to the partition holding the record *and* to
  the partitions holding each ancestor's edge entry (strong consistency,
  so the cost of a write grows with fan-in),
* answers attribute queries by scattering the query to every partition
  and gathering results (no global secondary index),
* answers recursive queries the only way a partitioned relational system
  can: level-by-level semi-joins, one round of messages per generation
  of ancestry, which is exactly the "limited ability to process
  recursive queries" the paper describes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set

from repro.core.provenance import PName
from repro.core.query import Predicate, Query
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    SiteStores,
    estimate_record_bytes,
)
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology

__all__ = ["DistributedDatabase"]

_PREPARE_BYTES = 128
_COMMIT_BYTES = 64
_QUERY_REQUEST_BYTES = 256
_POINTER_BYTES = 96


class DistributedDatabase(ArchitectureModel):
    """Hash-partitioned, strongly consistent provenance storage."""

    name = "distributed-db"
    supports_lineage = True
    requires_stable_hosts = True

    def __init__(self, topology: Topology, network: Optional[NetworkSimulator] = None) -> None:
        super().__init__(topology, network)
        self._sites = topology.site_names
        self._stores = SiteStores(self._sites)
        # pname digest -> site where the readings live (always the origin).
        self._data_location: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def partition_for(self, pname: PName) -> str:
        """The site responsible for a record, by hash of its PName."""
        digest = hashlib.sha256(pname.digest.encode("utf-8")).hexdigest()
        return self._sites[int(digest[:8], 16) % len(self._sites)]

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        record = tuple_set.provenance
        pname = tuple_set.pname
        home = self.partition_for(pname)
        record_bytes = estimate_record_bytes(tuple_set)

        # Participants: the record's partition plus each ancestor's
        # partition (their edge entries must be updated atomically).
        participants: Set[str] = {home}
        for ancestor in record.ancestors:
            participants.add(self.partition_for(ancestor))

        # Two-phase commit from the origin: prepare round, then commit round.
        prepare_latency = self.network.broadcast(
            origin_site, sorted(participants), _PREPARE_BYTES + record_bytes, "txn-prepare"
        )
        with self.network.parallel():
            vote_latency = max(
                self.network.send(site, origin_site, 32, "txn-vote").latency_ms
                for site in sorted(participants)
            )
        commit_latency = self.network.broadcast(
            origin_site, sorted(participants), _COMMIT_BYTES, "txn-commit"
        )

        self._stores.store(home).ingest_record(record)
        for ancestor in record.ancestors:
            # The ancestor partition records the edge by storing the child
            # record too (a simple, adequate stand-in for an edge table).
            self._stores.store(self.partition_for(ancestor)).ingest_record(record)
        self._data_location[pname.digest] = origin_site

        total_messages = 3 * len(participants)
        total_bytes = len(participants) * (_PREPARE_BYTES + record_bytes + 32 + _COMMIT_BYTES)
        self._charge(
            result,
            prepare_latency + vote_latency + commit_latency,
            total_messages,
            total_bytes,
        )
        result.sites_contacted = sorted(participants)
        result.pnames = [pname]
        self.published += 1
        # The record's home partition saw the committed write; it pushes
        # the notifications.
        self._notify_subscribers(tuple_set, origin_site, result, source=home)
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        # Scatter to every partition, gather the matches.
        scatter_latency = self.network.broadcast(
            origin_site, self._sites, _QUERY_REQUEST_BYTES, "query"
        )
        matches: List[PName] = []
        gather_latency = 0.0
        with self.network.parallel():
            for site in self._sites:
                local = self._planned_query(self._stores.store(site), query, result)
                matches.extend(local)
                response = self.network.send(
                    site, origin_site, _POINTER_BYTES * max(1, len(local)), "query-response"
                )
                gather_latency = max(gather_latency, response.latency_ms)
        unique = sorted(set(matches), key=lambda p: p.digest)
        self._charge(
            result,
            scatter_latency + gather_latency,
            2 * len(self._sites),
            len(self._sites) * (_QUERY_REQUEST_BYTES + _POINTER_BYTES),
        )
        result.sites_contacted = list(self._sites)
        result.pnames = unique
        self.queries_run += 1
        return result

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        """Level-by-level distributed closure: one message round per generation."""
        result = OperationResult()
        found: Set[PName] = set()
        frontier: Set[PName] = {pname}
        rounds = 0
        while frontier:
            rounds += 1
            next_frontier: Set[PName] = set()
            # Each frontier element lives on one partition; ask them all in
            # parallel, so this round's latency is the slowest partition.
            round_latency = 0.0
            contacted: Set[str] = set()
            with self.network.parallel() as fanout:
                for node in sorted(frontier, key=lambda p: p.digest):
                    site = self.partition_for(node)
                    contacted.add(site)
                    with fanout.branch():
                        request = self.network.send(origin_site, site, 128, "closure-step")
                        store = self._stores.store(site)
                        if node in store.graph:
                            neighbours = (
                                store.graph.parents(node) if up else store.graph.children(node)
                            )
                        else:
                            neighbours = []
                        response = self.network.send(
                            site, origin_site, _POINTER_BYTES * max(1, len(neighbours)), "closure-reply"
                        )
                    round_latency = max(round_latency, request.latency_ms + response.latency_ms)
                    for neighbour in neighbours:
                        if neighbour not in found and neighbour.digest != pname.digest:
                            next_frontier.add(neighbour)
                    result.messages += 2
                    result.bytes += 128 + _POINTER_BYTES * max(1, len(neighbours))
            result.latency_ms += round_latency
            for site in sorted(contacted):
                result.add_site(site)
            found |= next_frontier
            frontier = next_frontier
        result.pnames = sorted(found, key=lambda p: p.digest)
        result.notes.append(f"closure rounds: {rounds}")
        self.queries_run += 1
        return result

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        home = self.partition_for(pname)
        request = self.network.send(origin_site, home, 128, "locate")
        response = self.network.send(home, origin_site, _POINTER_BYTES, "locate-response")
        self._charge(
            result, request.latency_ms + response.latency_ms, 2, 128 + _POINTER_BYTES, home
        )
        site = self._data_location.get(pname.digest)
        if site is None:
            result.notes.append("unknown pname")
        else:
            result.add_site(site)
            result.pnames = [pname]
        return result


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("distributed-db", "ddb")
def _connect_distributed_db(spec):
    """``distributed-db://?sites=8`` -- hash-partitioned strongly consistent storage."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    model = DistributedDatabase(topology_from_spec(spec))
    return ModelClient(model, origin=spec.text("origin"))
