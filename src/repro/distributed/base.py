"""Common interface of the Section IV architecture models.

The paper compares how different storage/index architectures would serve
provenance-indexed sensor data: a centralized warehouse, distributed and
federated databases, soft-state Grid services, hierarchical namespaces,
and DHTs.  Each model in this package implements the same small
interface so the evaluation harness can drive them identically:

* :meth:`ArchitectureModel.publish` -- a sensor site announces a new
  tuple set (the readings stay wherever the model places them; what
  moves is provenance metadata and, for some models, the data itself),
* :meth:`ArchitectureModel.query` -- a consumer at some site runs an
  attribute query,
* :meth:`ArchitectureModel.ancestors` / :meth:`descendants` -- the
  recursive provenance queries,
* :meth:`ArchitectureModel.locate` -- where is the data named by a
  PName actually stored (and is the pointer still valid)?

Every operation returns an :class:`OperationResult` carrying the answer
plus the latency / message / byte cost the simulated network charged, so
the harness can score the Section IV criteria without knowing anything
about the model's internals.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.pass_store import PassStore
from repro.core.provenance import PName
from repro.core.query import Predicate, Query
from repro.core.tupleset import TupleSet
from repro.errors import NetworkError, UnknownEntityError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology
from repro.query.explain import Explain

__all__ = ["OperationResult", "ArchitectureModel", "estimate_record_bytes", "NOTIFY_BYTES"]

#: wire size of one subscription notification (pname + matched-event header)
NOTIFY_BYTES = 144


def estimate_record_bytes(tuple_set: TupleSet) -> int:
    """Approximate wire size of a tuple set's provenance record."""
    return len(tuple_set.provenance.to_json().encode("utf-8"))


@dataclass
class OperationResult:
    """The answer to one operation plus its network cost."""

    pnames: List[PName] = field(default_factory=list)
    latency_ms: float = 0.0
    messages: int = 0
    bytes: int = 0
    #: records materialized and evaluated across all participating sites
    rows_scanned: int = 0
    #: sites that had to participate to answer
    sites_contacted: List[str] = field(default_factory=list)
    #: model-specific notes ("stale index entry", "dangling link", ...)
    notes: List[str] = field(default_factory=list)
    #: message-exchange structure of the operation, captured by the
    #: network facade for discrete-event replay (:mod:`repro.sim`)
    trace: Optional[object] = None

    def pname_set(self) -> Set[PName]:
        """The result as a set (order-insensitive comparisons in tests)."""
        return set(self.pnames)

    def add_site(self, site: str) -> None:
        """Record a participating site exactly once, in first-contact order."""
        if site not in self.sites_contacted:
            self.sites_contacted.append(site)

    def merge(self, other: "OperationResult") -> "OperationResult":
        """Fold another operation's answer and cost into this one.

        The one way to combine results: batched publishes and multi-step
        operations use this instead of hand-summing the cost fields.
        Returns ``self`` for chaining.
        """
        self.pnames.extend(other.pnames)
        self.latency_ms += other.latency_ms
        self.messages += other.messages
        self.bytes += other.bytes
        self.rows_scanned += other.rows_scanned
        for site in other.sites_contacted:
            self.add_site(site)
        self.notes.extend(other.notes)
        return self


#: operation methods whose message exchanges are captured as OpTraces
_TRACED_OPERATIONS = ("publish", "publish_batch", "query", "ancestors", "descendants", "locate")


def _traced_operation(kind: str, method):
    """Capture a model operation's message structure on its network facade.

    The wrapper brackets the call with ``begin_operation``/``end_operation``
    (re-entrant, so an operation invoking another keeps one trace) and
    attaches the captured :class:`~repro.sim.trace.OpTrace` to the
    returned :class:`OperationResult`.
    """

    @functools.wraps(method)
    def wrapper(self, payload, origin_site, *args, **kwargs):
        self.network.begin_operation(kind, origin_site)
        try:
            result = method(self, payload, origin_site, *args, **kwargs)
        finally:
            trace = self.network.end_operation()
        if trace is not None and isinstance(result, OperationResult):
            result.trace = trace
        return result

    wrapper._sim_traced = True
    return wrapper


class ArchitectureModel(ABC):
    """Base class every architecture model extends."""

    #: short machine-readable name used in reports ("centralized", "dht", ...)
    name = "abstract"
    #: does the model support transitive-closure (lineage) queries at all?
    supports_lineage = True
    #: Section IV-B/IV-C distinction: does the model require stable hosts?
    requires_stable_hosts = True

    def __init_subclass__(cls, **kwargs) -> None:
        """Every concrete operation override is trace-captured automatically.

        Models keep writing plain ``publish``/``query``/... methods; the
        wrapping makes each an event-emitting exchange the discrete-event
        kernel can replay, without per-model boilerplate.
        """
        super().__init_subclass__(**kwargs)
        for name in _TRACED_OPERATIONS:
            method = cls.__dict__.get(name)
            if method is None or getattr(method, "_sim_traced", False):
                continue
            if getattr(method, "__isabstractmethod__", False):
                continue
            setattr(cls, name, _traced_operation(name, method))

    def __init__(self, topology: Topology, network: Optional[NetworkSimulator] = None) -> None:
        self.topology = topology
        self.network = network if network is not None else NetworkSimulator(topology)
        self.published = 0
        self.queries_run = 0
        self.notifications_sent = 0
        self.notifications_suppressed = 0  # undeliverable (e.g. partitioned subscriber)
        #: per-site Explains of the most recent query (ModelClient.explain)
        self._query_explains: List["Explain"] = []
        #: standing-subscription engines, attached by ModelClient.subscribe();
        #: a list so several clients wrapping one model all keep receiving
        self.stream_engines: List = []

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        """Announce (and place) a freshly produced tuple set from ``origin_site``."""

    def publish_batch(self, tuple_sets: Sequence[TupleSet], origin_site: str) -> OperationResult:
        """Publish several tuple sets produced at one site as a batch.

        The default pays the full per-publish cost and merges the
        results; models with a genuinely cheaper bulk path (one round
        trip for the whole batch) override it.  The façade's
        ``publish_many`` routes per-site batches through here.
        """
        combined = OperationResult()
        for tuple_set in tuple_sets:
            combined.merge(self.publish(tuple_set, origin_site))
        return combined

    @abstractmethod
    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        """Run an attribute query issued by a consumer at ``origin_site``."""

    @abstractmethod
    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        """Transitive ancestors of ``pname`` (raises UnsupportedQueryError if unsupported)."""

    @abstractmethod
    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        """Transitive descendants of ``pname`` (the taint query)."""

    @abstractmethod
    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        """Find the site(s) storing the data for ``pname``.

        ``sites_contacted`` of the result carries the answer; a dangling
        or stale pointer is reported through ``notes``.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _as_query(query: Query | Predicate) -> Query:
        if isinstance(query, Query):
            return query
        return Query(predicate=query)

    def _start_query(self, query: Query | Predicate) -> Query:
        """Query prologue: reset the per-site explain trace and lower the input.

        Every model's :meth:`query` calls this first so the trace always
        describes the most recent query.
        """
        self._query_explains = []
        return self._as_query(query)

    def _planned_query(self, store: PassStore, query: Query, result: OperationResult) -> List[PName]:
        """Run ``query`` on one site's store through its planner.

        Charges the rows the site actually scanned onto ``result`` and
        records the site's :class:`~repro.query.explain.Explain` for
        :meth:`query_explains` -- the one way models consult a per-site
        PASS store on the query path.
        """
        pairs, explain = store.query_explain(query)
        result.rows_scanned += explain.rows_scanned
        self._query_explains.append(explain)
        return [pname for pname, _ in pairs]

    def _trace_scan(self, site: str, rows_scanned: int, matched: int, what: str) -> None:
        """Record a non-planner scan (models keeping raw record maps) in the trace."""
        self._query_explains.append(
            Explain(
                site=site,
                path=what,
                path_kind="model-scan",
                estimated_rows=rows_scanned,
                actual_rows=matched,
                rows_scanned=rows_scanned,
                used_index=False,
            )
        )

    def query_explains(self) -> List["Explain"]:
        """Per-site Explains of the most recent :meth:`query` call."""
        return list(self._query_explains)

    def _charge(
        self,
        result: OperationResult,
        latency_ms: float,
        messages: int,
        size_bytes: int,
        site: Optional[str] = None,
    ) -> None:
        """Accumulate cost onto a result (models call this after network sends)."""
        result.latency_ms += latency_ms
        result.messages += messages
        result.bytes += size_bytes
        if site is not None:
            result.add_site(site)

    # ------------------------------------------------------------------
    # Live subscriptions (repro.stream)
    # ------------------------------------------------------------------
    def attach_stream_engine(self, engine) -> None:
        """Attach a :class:`~repro.stream.engine.StreamEngine` (additive).

        Once attached, every publish runs the engine's incremental match
        and disseminates each delivery as one simulated ``notify``
        message, so the architectures' dissemination cost becomes part
        of the Section IV resource-consumption comparison.  Attaching is
        additive -- like the local store's ingest-hook list, a second
        client wrapping the same model never displaces the first.
        """
        if engine not in self.stream_engines:
            self.stream_engines.append(engine)

    def detach_stream_engine(self, engine) -> None:
        """Detach a previously attached engine (missing engines are ignored)."""
        try:
            self.stream_engines.remove(engine)
        except ValueError:
            pass

    def _notify_subscribers(
        self,
        tuple_set: TupleSet,
        origin_site: str,
        result: OperationResult,
        source: Optional[str] = None,
    ) -> None:
        """Match a just-published tuple set and charge ``notify`` messages.

        ``source`` is the site the architecture disseminates from -- the
        warehouse for the centralized model, the placement/home site for
        partitioned models, the producing site otherwise.  Notifications
        are push-style and asynchronous: their messages and bytes are
        charged onto the publish result (resource consumption), but
        their latency is *not* added to the publish critical path.

        Delivery is gated on the simulated send: a subscriber behind a
        network partition genuinely misses the event (nothing lands in
        its queue/callback; the loss is counted and noted on the
        result) -- matching and window state still advance at the
        disseminating site, only the notification message is lost.
        """
        if not self.stream_engines:
            return
        sender = source if source is not None else origin_site
        for engine in list(self.stream_engines):
            matched = engine.match(tuple_set.pname, tuple_set.provenance)
            for subscription, event in matched:
                destination = subscription.site if subscription.site is not None else origin_site
                try:
                    # background=True: the hop is captured for kernel
                    # replay (it loads the disseminating site) but its
                    # latency stays off the publish critical path.
                    self.network.send(sender, destination, NOTIFY_BYTES, "notify", background=True)
                except NetworkError:
                    self.notifications_suppressed += 1
                    result.notes.append(f"notify to {destination} dropped: unreachable")
                    continue
                self.notifications_sent += 1
                result.messages += 1
                result.bytes += NOTIFY_BYTES
                engine.deliver_one(subscription, event)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def traffic_snapshot(self) -> dict:
        """The model's cumulative network traffic (incl. log-retention facts)."""
        return self.network.snapshot()

    def describe(self) -> Dict[str, object]:
        """Facts about the model used in reports."""
        return {
            "name": self.name,
            "supports_lineage": self.supports_lineage,
            "requires_stable_hosts": self.requires_stable_hosts,
            "published": self.published,
            "queries_run": self.queries_run,
            "notifications_sent": self.notifications_sent,
            "notifications_suppressed": self.notifications_suppressed,
            "sites": len(self.topology),
        }


# The base class itself is not a subclass, so its concrete default
# publish_batch is wrapped here; overrides are wrapped by __init_subclass__.
ArchitectureModel.publish_batch = _traced_operation(
    "publish_batch", ArchitectureModel.publish_batch
)


class SiteStores:
    """A convenience container mapping site name -> local PassStore.

    Several models keep one store per site; this helper creates them
    lazily and exposes a couple of aggregate views.
    """

    def __init__(self, site_names: Sequence[str]) -> None:
        self._stores: Dict[str, PassStore] = {
            name: PassStore(site=name) for name in site_names
        }

    def store(self, site: str) -> PassStore:
        """The store at ``site`` (raises for unknown sites)."""
        try:
            return self._stores[site]
        except KeyError:
            raise UnknownEntityError(f"no store at site {site!r}") from None

    def __contains__(self, site: str) -> bool:
        return site in self._stores

    def items(self):
        """Iterate over (site, store) pairs, sorted by site name."""
        return sorted(self._stores.items())

    def total_records(self) -> int:
        """Total records across every site."""
        return sum(len(store) for _, store in self.items())

    def holders_of(self, pname: PName) -> List[str]:
        """Sites whose local store has the record."""
        return [site for site, store in self.items() if pname in store]
