"""The Section IV architecture models, all behind one interface."""

from repro.distributed.base import ArchitectureModel, OperationResult, estimate_record_bytes
from repro.distributed.centralized import CentralizedWarehouse
from repro.distributed.dht import DistributedHashTable
from repro.distributed.distributed_db import DistributedDatabase
from repro.distributed.federated import FederatedDatabase
from repro.distributed.hierarchical import HierarchicalNamespace
from repro.distributed.locality import LocaleAwarePass
from repro.distributed.soft_state import SoftStateIndex

__all__ = [
    "ArchitectureModel",
    "OperationResult",
    "estimate_record_bytes",
    "CentralizedWarehouse",
    "DistributedDatabase",
    "FederatedDatabase",
    "SoftStateIndex",
    "HierarchicalNamespace",
    "DistributedHashTable",
    "LocaleAwarePass",
]
