"""The distributed-hash-table model (Section IV-C).

"The most widely-used mechanism in this class is the distributed hash
table, or DHT.  However, DHTs do not appear to be a suitable solution.
First, storing data objects by hashing a key inherently assumes that the
location of these objects is unimportant ...  Second, periodic updates
of distinct queriable attributes to DHTs scale to only tens of thousands
of updaters ...  Finally, support for efficient recursive queries is so
far nonexistent."

The model is a Chord-like ring:

* every site owns a position on a 2^32 identifier ring; keys are hashed
  to the ring and stored at their successor,
* lookups route greedily through finger tables, charging O(log n) hops
  of real (topology) latency per lookup -- routing ignores geography, so
  a Boston key's route may bounce through Singapore,
* publishing a tuple set puts the record at the hash of its PName *and*
  puts one index entry per queriable attribute value (that is what
  "periodic updates of distinct queriable attributes" means), so the
  update fan-out per tuple set equals the number of indexed attributes,
* per-node update capacity is finite; experiment E9 sweeps the number of
  concurrent updaters and reports when offered load exceeds ring
  capacity (the "tens of thousands of updaters" wall),
* attribute queries are supported only as exact-match key lookups
  (equality on an indexed attribute); anything else -- ranges, spatial
  predicates -- must flood the ring, and recursive lineage queries are
  iterated per-edge lookups, each paying full routing cost.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.core.attributes import canonical_encode
from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import (
    AncestorOf,
    And,
    AttributeEquals,
    DerivedFrom,
    LineageOracle,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.core.tupleset import TupleSet
from repro.distributed.base import (
    ArchitectureModel,
    OperationResult,
    estimate_record_bytes,
)
from repro.errors import ConfigurationError
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology
from repro.query.explain import Explain

__all__ = ["DistributedHashTable"]

_RING_BITS = 32
_RING_SIZE = 2 ** _RING_BITS
_QUERY_REQUEST_BYTES = 192
_POINTER_BYTES = 96
# A digest located this many times from the same origin gets its owner's
# location cached at that origin, so later locates go direct (one round
# trip) instead of paying O(log n) routed hops.  Ownership in this model
# never moves, so a cached hint can only go stale if the record itself
# disappears -- handled by falling back to full routing.
_HOT_KEY_THRESHOLD = 3


def _key(text: str) -> int:
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % _RING_SIZE


class DistributedHashTable(ArchitectureModel):
    """A Chord-like DHT indexing provenance attribute values.

    Parameters
    ----------
    indexed_attributes:
        Attribute names published into the DHT as queriable keys.  Every
        publish writes one entry per attribute the record carries.
    per_node_updates_per_second:
        Capacity of one ring node; used by the update-scaling sweep.
    """

    name = "dht"
    supports_lineage = True  # possible, but each edge costs a full routed lookup
    requires_stable_hosts = False

    def __init__(
        self,
        topology: Topology,
        network: Optional[NetworkSimulator] = None,
        indexed_attributes: Optional[List[str]] = None,
        per_node_updates_per_second: float = 50.0,
    ) -> None:
        super().__init__(topology, network)
        self._sites = topology.site_names
        if len(self._sites) < 2:
            raise ConfigurationError("a DHT needs at least two participating sites")
        self.indexed_attributes = list(
            indexed_attributes
            if indexed_attributes is not None
            else ["domain", "network", "city", "region", "stage", "patient"]
        )
        self.per_node_updates_per_second = per_node_updates_per_second
        # Ring positions.
        self._position: Dict[str, int] = {site: _key(f"node:{site}") for site in self._sites}
        self._ring: List[Tuple[int, str]] = sorted(
            (position, site) for site, position in self._position.items()
        )
        # Storage: records keyed by pname hash; attribute index entries.
        self._records: Dict[str, Dict[str, ProvenanceRecord]] = {site: {} for site in self._sites}
        self._attr_entries: Dict[str, Dict[str, Set[str]]] = {site: {} for site in self._sites}
        self._children: Dict[str, Set[str]] = {}
        self._data_location: Dict[str, str] = {}
        # Hot-key location hints: origin site -> digest -> owning node.
        self._locate_counts: Dict[Tuple[str, str], int] = {}
        self._location_hints: Dict[str, Dict[str, str]] = {site: {} for site in self._sites}
        self._hint_hits = 0
        self._hints_placed = 0

    # ------------------------------------------------------------------
    # Ring mechanics
    # ------------------------------------------------------------------
    def successor(self, key: int) -> str:
        """The site responsible for ``key`` (first ring position >= key)."""
        for position, site in self._ring:
            if position >= key:
                return site
        return self._ring[0][1]

    def route_hops(self, origin: str) -> int:
        """Number of overlay hops a lookup takes (Chord's O(log n))."""
        return max(1, int(math.ceil(math.log2(len(self._sites)))))

    def _routed_lookup(
        self, origin_site: str, key: int, size_bytes: int, kind: str
    ) -> Tuple[str, float, int, int]:
        """Route from origin to the key's owner; return (owner, latency, msgs, bytes).

        Each overlay hop is a real message between (deterministically
        chosen) sites, so routing latency reflects geography even though
        placement ignores it -- exactly the mismatch the paper complains
        about.
        """
        owner = self.successor(key)
        hops = self.route_hops(origin_site)
        latency = 0.0
        messages = 0
        total_bytes = 0
        current = origin_site
        for hop in range(hops):
            if hop == hops - 1:
                nxt = owner
            else:
                nxt = self._sites[(self._sites.index(current) + hop + 1) % len(self._sites)]
            message = self.network.send(current, nxt, size_bytes, kind)
            latency += message.latency_ms
            messages += 1
            total_bytes += size_bytes
            current = nxt
        return owner, latency, messages, total_bytes

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def publish(self, tuple_set: TupleSet, origin_site: str) -> OperationResult:
        result = OperationResult()
        record = tuple_set.provenance
        pname = tuple_set.pname
        record_bytes = estimate_record_bytes(tuple_set)

        # Store the record itself at hash(pname).
        owner, latency, messages, sent = self._routed_lookup(
            origin_site, _key(pname.digest), record_bytes, "dht-put-record"
        )
        self._records[owner][pname.digest] = record
        self._data_location[pname.digest] = owner
        self._charge(result, latency, messages, sent, owner)

        # One index entry per queriable attribute value the record carries.
        for attribute in self.indexed_attributes:
            value = record.get(attribute)
            if value is None:
                continue
            entry_key = _key(f"{attribute}={canonical_encode(value)}")
            owner, latency, messages, sent = self._routed_lookup(
                origin_site, entry_key, _POINTER_BYTES, "dht-put-index"
            )
            bucket = self._attr_entries[owner].setdefault(
                f"{attribute}={canonical_encode(value)}", set()
            )
            bucket.add(pname.digest)
            self._charge(result, latency, messages, sent, owner)

        # Reverse edges so descendant queries are answerable at the parent's node.
        for ancestor in record.ancestors:
            owner, latency, messages, sent = self._routed_lookup(
                origin_site, _key(ancestor.digest), _POINTER_BYTES, "dht-put-edge"
            )
            self._children.setdefault(ancestor.digest, set()).add(pname.digest)
            self._charge(result, latency, messages, sent, owner)

        result.pnames = [pname]
        self.published += 1
        # The ring node that received the record's put pushes the
        # notifications -- placement ignores geography, so dissemination
        # pays the same locality penalty the paper complains about.
        self._notify_subscribers(
            tuple_set, origin_site, result, source=self._data_location[pname.digest]
        )
        return result

    def query(self, query: Query | Predicate, origin_site: str) -> OperationResult:
        query = self._start_query(query)
        result = OperationResult()
        # Lineage conjuncts have no home in the ring's key space; resolve
        # them first with per-edge routed closure walks (the "support so
        # far nonexistent" cost the paper describes), then evaluate the
        # predicate against the collected reachability sets.
        oracle = (
            self._resolve_lineage(query.predicate, origin_site, result)
            if query.requires_lineage
            else None
        )
        equality = self._routable_equality(query)
        if equality is None:
            return self._flood_query(query, origin_site, result, oracle)

        attribute, value = equality
        entry_key = _key(f"{attribute}={canonical_encode(value)}")
        owner, latency, messages, sent = self._routed_lookup(
            origin_site, entry_key, _QUERY_REQUEST_BYTES, "dht-get-index"
        )
        digests = self._attr_entries[owner].get(f"{attribute}={canonical_encode(value)}", set())
        # Fetch each candidate record to evaluate the residual predicate.
        matches: List[PName] = []
        for digest in sorted(digests):
            pname = PName(digest)
            record_owner, fetch_latency, fetch_messages, fetch_bytes = self._routed_lookup(
                origin_site, _key(digest), _POINTER_BYTES, "dht-get-record"
            )
            record = self._records[record_owner].get(digest)
            self._charge(result, fetch_latency, fetch_messages, fetch_bytes, record_owner)
            if record is not None and query.predicate.matches(pname, record, oracle):
                matches.append(pname)
        result.rows_scanned += len(digests)
        self._trace_scan(
            owner,
            len(digests),
            len(matches),
            f"DHT index-entry probe on {attribute!r} + per-candidate record fetch",
        )
        self._charge(result, latency, messages, sent, owner)
        result.pnames = sorted(matches, key=lambda p: p.digest)
        if query.limit is not None:
            result.pnames = result.pnames[: query.limit]
        self.queries_run += 1
        return result

    def _flood_query(
        self,
        query: Query,
        origin_site: str,
        result: OperationResult,
        oracle: Optional["_WalkOracle"] = None,
    ) -> OperationResult:
        """No routable key: ask every node (the expensive fallback)."""
        result.notes.append("no routable attribute: flooded every ring node")
        slowest = self.network.broadcast(
            origin_site, self._sites, _QUERY_REQUEST_BYTES, "dht-flood-query"
        )
        matches: List[PName] = []
        reply_latency = 0.0
        # Replies race back in parallel; the consumer waits for the slowest.
        with self.network.parallel():
            for site in self._sites:
                local: List[PName] = []
                for digest, record in self._records[site].items():
                    pname = PName(digest)
                    if query.predicate.matches(pname, record, oracle):
                        local.append(pname)
                result.rows_scanned += len(self._records[site])
                self._trace_scan(
                    site, len(self._records[site]), len(local), "DHT flood: scan of one node's records"
                )
                response = self.network.send(
                    site, origin_site, _POINTER_BYTES * max(1, len(local)), "dht-flood-reply"
                )
                reply_latency = max(reply_latency, response.latency_ms)
                matches.extend(local)
                result.messages += 2
                result.bytes += _QUERY_REQUEST_BYTES + _POINTER_BYTES * max(1, len(local))
                result.add_site(site)
        result.latency_ms += slowest + reply_latency
        result.pnames = sorted(set(matches), key=lambda p: p.digest)
        if query.limit is not None:
            result.pnames = result.pnames[: query.limit]
        self.queries_run += 1
        return result

    def _resolve_lineage(
        self, predicate: Predicate, origin_site: str, result: OperationResult
    ) -> "_WalkOracle":
        """Pre-compute the reachability sets the predicate will ask about.

        Each distinct ``DerivedFrom`` / ``AncestorOf`` focus costs one
        routed closure walk (one lookup per edge, each paying full
        O(log n) routing), charged onto ``result`` and reported as a
        lineage access path in the per-query explain trace.
        """
        targets: List[Tuple[bool, PName]] = []
        _collect_lineage_targets(predicate, targets)
        down: Dict[str, Set[str]] = {}
        up: Dict[str, Set[str]] = {}
        for walk_up, focus in targets:
            bucket = up if walk_up else down
            if focus.digest in bucket:
                continue
            found = self._closure_walk(focus, origin_site, up=walk_up, result=result)
            bucket[focus.digest] = found
            direction = "ancestors" if walk_up else "descendants"
            self._query_explains.append(
                Explain(
                    site=origin_site,
                    path=(
                        f"DHT routed closure walk: {direction} of {focus.short} "
                        "(one routed lookup per edge)"
                    ),
                    path_kind="lineage-routed-walk",
                    estimated_rows=len(found),
                    actual_rows=len(found),
                    rows_scanned=len(found),
                    used_index=True,
                )
            )
        result.notes.append("lineage resolved by per-edge routed lookups")
        return _WalkOracle(down, up)

    @staticmethod
    def _routable_equality(query: Query) -> Optional[Tuple[str, object]]:
        predicate = query.predicate
        parts = predicate.parts if isinstance(predicate, And) else (predicate,)
        for part in parts:
            if isinstance(part, AttributeEquals):
                return part.name, part.value
        return None

    def ancestors(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=True)

    def descendants(self, pname: PName, origin_site: str) -> OperationResult:
        return self._lineage(pname, origin_site, up=False)

    def _lineage(self, pname: PName, origin_site: str, up: bool) -> OperationResult:
        """Every edge traversal is a separate routed lookup: "so far nonexistent" support."""
        result = OperationResult()
        found = self._closure_walk(pname, origin_site, up=up, result=result)
        result.pnames = sorted((PName(digest) for digest in found), key=lambda p: p.digest)
        self.queries_run += 1
        return result

    def _closure_walk(
        self, pname: PName, origin_site: str, up: bool, result: OperationResult
    ) -> Set[str]:
        """Walk the closure one routed lookup per node; charge onto ``result``."""
        found: Set[str] = set()
        frontier: Set[str] = {pname.digest}
        while frontier:
            next_frontier: Set[str] = set()
            for digest in sorted(frontier):
                owner, latency, messages, sent = self._routed_lookup(
                    origin_site, _key(digest), _POINTER_BYTES, "dht-closure-lookup"
                )
                self._charge(result, latency, messages, sent, owner)
                if up:
                    record = self._records[owner].get(digest)
                    neighbours = (
                        [ancestor.digest for ancestor in record.ancestors] if record else []
                    )
                else:
                    neighbours = sorted(self._children.get(digest, set()))
                for neighbour in neighbours:
                    if neighbour not in found and neighbour != pname.digest:
                        next_frontier.add(neighbour)
            found |= next_frontier
            frontier = next_frontier
        return found

    def locate(self, pname: PName, origin_site: str) -> OperationResult:
        result = OperationResult()
        hinted = self._location_hints[origin_site].get(pname.digest)
        if hinted is not None:
            # Hot-key hint: skip the overlay and ask the cached owner
            # directly -- one round trip instead of O(log n) hops.
            request = self.network.send(origin_site, hinted, 128, "dht-locate-direct")
            reply = self.network.send(hinted, origin_site, _POINTER_BYTES, "dht-locate-reply")
            self._charge(
                result, request.latency_ms + reply.latency_ms, 2, 128 + _POINTER_BYTES, hinted
            )
            if pname.digest in self._records[hinted]:
                result.add_site(hinted)
                result.pnames = [pname]
                result.notes.append("hot-key hint: routed directly to owner")
                self._hint_hits += 1
                return result
            del self._location_hints[origin_site][pname.digest]
            result.notes.append("hot-key hint was stale; re-routing")
        owner, latency, messages, sent = self._routed_lookup(
            origin_site, _key(pname.digest), 128, "dht-locate"
        )
        self._charge(result, latency, messages, sent, owner)
        if pname.digest in self._records[owner]:
            result.add_site(owner)
            result.pnames = [pname]
            key = (origin_site, pname.digest)
            count = self._locate_counts.get(key, 0) + 1
            if count >= _HOT_KEY_THRESHOLD:
                self._locate_counts.pop(key, None)
                self._location_hints[origin_site][pname.digest] = owner
                self._hints_placed += 1
                result.notes.append("hot key: owner location cached at origin")
            else:
                self._locate_counts[key] = count
        else:
            result.notes.append("unknown pname")
        return result

    def hot_key_stats(self) -> Dict[str, object]:
        """Diagnostics for hot-key location hints (kept out of ``stats()``)."""
        return {
            "threshold": _HOT_KEY_THRESHOLD,
            "tracked": len(self._locate_counts),
            "hints_placed": self._hints_placed,
            "hint_hits": self._hint_hits,
            "hints": {
                site: dict(sorted(hints.items()))
                for site, hints in sorted(self._location_hints.items())
                if hints
            },
        }

    # ------------------------------------------------------------------
    # Placement / scaling diagnostics (experiments E9 and E10)
    # ------------------------------------------------------------------
    def placement_distance_km(self, pname: PName, origin_site: str) -> float:
        """Distance from the producing site to where the DHT actually put the record."""
        owner = self._data_location.get(pname.digest)
        if owner is None:
            return 0.0
        return self.topology.distance_km(origin_site, owner)

    def ring_update_capacity(self) -> float:
        """Aggregate updates/second the ring can absorb."""
        return self.per_node_updates_per_second * len(self._sites)

    def updates_per_publish(self) -> int:
        """Index entries written per published tuple set (attribute fan-out)."""
        return 1 + len(self.indexed_attributes)

    def max_supported_updaters(self, publishes_per_updater_per_second: float) -> int:
        """How many concurrent updaters the ring supports before saturating."""
        if publishes_per_updater_per_second <= 0:
            raise ConfigurationError("publish rate must be positive")
        per_updater_load = publishes_per_updater_per_second * self.updates_per_publish()
        return int(self.ring_update_capacity() / per_updater_load)


def _collect_lineage_targets(
    predicate: Predicate, targets: List[Tuple[bool, PName]]
) -> None:
    """Gather every (walk-up?, focus) pair the predicate can ask about."""
    if isinstance(predicate, DerivedFrom):
        targets.append((False, predicate.ancestor))
    elif isinstance(predicate, AncestorOf):
        targets.append((True, predicate.descendant))
    elif isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            _collect_lineage_targets(part, targets)
    elif isinstance(predicate, Not):
        _collect_lineage_targets(predicate.part, targets)


class _WalkOracle(LineageOracle):
    """A lineage oracle backed by pre-walked reachability sets.

    Lineage predicates only ever ask about their own focus node
    (``DerivedFrom(x)`` asks ``is_ancestor(x, candidate)``,
    ``AncestorOf(y)`` asks ``is_ancestor(candidate, y)``), so the sets
    collected by :meth:`DistributedHashTable._resolve_lineage` answer
    every probe the evaluation can make.
    """

    def __init__(self, down: Dict[str, Set[str]], up: Dict[str, Set[str]]) -> None:
        self._down = down
        self._up = up

    def is_ancestor(self, ancestor: PName, descendant: PName) -> bool:
        reachable = self._down.get(ancestor.digest)
        if reachable is not None:
            return descendant.digest in reachable
        reached_from = self._up.get(descendant.digest)
        if reached_from is not None:
            return ancestor.digest in reached_from
        return False


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import register_scheme  # noqa: E402


@register_scheme("dht")
def _connect_dht(spec):
    """``dht://?sites=32&index=city,domain`` -- a Chord-like ring over N sites."""
    from repro.api.client import ModelClient
    from repro.api.topologies import topology_from_spec

    model = DistributedHashTable(
        topology_from_spec(spec),
        indexed_attributes=spec.listing("index"),
        per_node_updates_per_second=spec.number("rate", 50.0),
    )
    return ModelClient(model, origin=spec.text("origin"))
