"""Privacy aggregation and access-control policies (Section V agenda)."""

from repro.security.policy import AccessDecision, AccessRule, PolicyEngine, Principal
from repro.security.privacy import AggregationReport, PrivacyAggregator

__all__ = [
    "Principal",
    "AccessRule",
    "AccessDecision",
    "PolicyEngine",
    "PrivacyAggregator",
    "AggregationReport",
]
