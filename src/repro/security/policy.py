"""Access-control policies over provenance-named data.

Section V: "Security is essential as well, as much of the data collected
in sensor networks (e.g., medical data) is private ...  How do
regulatory moves like HIPAA affect the situation?  And how do we provide
strong guarantees that privacy policies will be enforced?"

The policy model is deliberately simple and auditable:

* a :class:`Principal` has a name, a role and a set of granted purposes,
* an :class:`AccessRule` matches data sets by attribute predicate and
  states which roles/purposes may read their readings, and whether only
  aggregated (not raw) access is allowed,
* a :class:`PolicyEngine` evaluates the rules (first match wins, default
  deny for protected domains, default allow otherwise) and keeps an
  audit log -- the paper's "strong guarantees" reduced to an enforceable
  and inspectable core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.core.provenance import PName, ProvenanceRecord
from repro.core.query import TRUE, Predicate
from repro.errors import PolicyError

__all__ = ["Principal", "AccessRule", "AccessDecision", "PolicyEngine"]


@dataclass(frozen=True)
class Principal:
    """Someone (or something) asking to read data."""

    name: str
    role: str
    purposes: frozenset = frozenset()

    def __post_init__(self) -> None:
        if not self.name or not self.role:
            raise PolicyError("principal name and role must be non-empty")
        object.__setattr__(self, "purposes", frozenset(self.purposes))


@dataclass(frozen=True)
class AccessRule:
    """One policy rule: who may read which data sets, and how.

    Attributes
    ----------
    name:
        Rule identifier (shows up in audit entries).
    applies_to:
        Predicate selecting the data sets the rule governs.
    allowed_roles / allowed_purposes:
        A principal must match one allowed role *and*, when
        ``allowed_purposes`` is non-empty, claim one allowed purpose.
    aggregate_only:
        When True the rule permits only aggregated access -- raw readings
        stay off-limits, per the paper's "much of this data is valuable
        even when aggregated to preserve privacy".
    allow:
        Whether matching grants or denies access (deny rules make HIPAA
        style carve-outs expressible).
    """

    name: str
    applies_to: Predicate = TRUE
    allowed_roles: frozenset = frozenset()
    allowed_purposes: frozenset = frozenset()
    aggregate_only: bool = False
    allow: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("rule name must be non-empty")
        object.__setattr__(self, "allowed_roles", frozenset(self.allowed_roles))
        object.__setattr__(self, "allowed_purposes", frozenset(self.allowed_purposes))

    def governs(self, pname: PName, record: ProvenanceRecord) -> bool:
        """Does this rule apply to the data set at all?"""
        return self.applies_to.matches(pname, record, None)

    def permits(self, principal: Principal) -> bool:
        """Does the principal satisfy the rule's role/purpose requirements?"""
        if self.allowed_roles and principal.role not in self.allowed_roles:
            return False
        if self.allowed_purposes and not (self.allowed_purposes & principal.purposes):
            return False
        return True


@dataclass(frozen=True)
class AccessDecision:
    """The outcome of a policy check."""

    allowed: bool
    aggregate_only: bool
    rule: Optional[str]
    reason: str


@dataclass
class _AuditEntry:
    principal: str
    pname: str
    decision: AccessDecision


class PolicyEngine:
    """Evaluates access rules and records an audit trail.

    Parameters
    ----------
    rules:
        Checked in order; the first rule that governs the data set and
        whose role/purpose requirements the principal meets decides.
    protected_domains:
        Values of the ``domain`` attribute that are deny-by-default when
        no rule grants access (e.g. ``{"medical"}``).
    """

    def __init__(
        self,
        rules: Sequence[AccessRule] = (),
        protected_domains: Optional[Set[str]] = None,
    ) -> None:
        self._rules: List[AccessRule] = list(rules)
        self._protected = set(protected_domains or ())
        self._audit: List[_AuditEntry] = []

    def add_rule(self, rule: AccessRule) -> None:
        """Append a rule (evaluated after existing ones)."""
        self._rules.append(rule)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def check(
        self, principal: Principal, pname: PName, record: ProvenanceRecord
    ) -> AccessDecision:
        """Decide whether ``principal`` may read the data set's readings."""
        decision = self._decide(principal, pname, record)
        self._audit.append(_AuditEntry(principal.name, pname.digest, decision))
        return decision

    def _decide(
        self, principal: Principal, pname: PName, record: ProvenanceRecord
    ) -> AccessDecision:
        for rule in self._rules:
            if not rule.governs(pname, record):
                continue
            if not rule.permits(principal):
                continue
            if not rule.allow:
                return AccessDecision(False, False, rule.name, "matched deny rule")
            return AccessDecision(
                True, rule.aggregate_only, rule.name, "matched allow rule"
            )
        domain = record.get("domain")
        if isinstance(domain, str) and domain in self._protected:
            return AccessDecision(False, False, None, f"default deny for protected domain {domain!r}")
        return AccessDecision(True, False, None, "default allow")

    def enforce(self, principal: Principal, pname: PName, record: ProvenanceRecord) -> AccessDecision:
        """Like :meth:`check` but raises :class:`~repro.errors.PolicyError` on denial."""
        decision = self.check(principal, pname, record)
        if not decision.allowed:
            raise PolicyError(
                f"{principal.name} may not read {pname.short}: {decision.reason}"
            )
        return decision

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit_log(self) -> List[dict]:
        """Every decision made so far, oldest first."""
        return [
            {
                "principal": entry.principal,
                "pname": entry.pname[:12],
                "allowed": entry.decision.allowed,
                "aggregate_only": entry.decision.aggregate_only,
                "rule": entry.decision.rule,
                "reason": entry.decision.reason,
            }
            for entry in self._audit
        ]

    def denials(self) -> int:
        """How many checks were denied."""
        return sum(1 for entry in self._audit if not entry.decision.allowed)
