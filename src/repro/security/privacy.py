"""Privacy-preserving aggregation with provenance.

Section V asks: "Much of this data is valuable even when aggregated to
preserve privacy.  What degree of aggregation is necessary?  How does
one represent the provenance of such aggregates?"

This module gives both questions concrete, testable answers:

* :class:`PrivacyAggregator` groups tuple sets, suppresses any group
  whose population falls below ``k`` (k-anonymity-style suppression --
  the "degree of aggregation necessary"), strips the identifying
  attributes, and emits summary tuple sets;
* the provenance of each aggregate lists every contributing tuple set as
  an ancestor and records the aggregation agent, its ``k`` and the
  suppressed attribute names -- so the aggregate is auditable without
  re-identifying anyone (answering "how does one represent the
  provenance of such aggregates").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.attributes import AttributeValue, Timestamp
from repro.core.provenance import Agent, merge_provenance
from repro.core.tupleset import SensorReading, TupleSet
from repro.errors import ConfigurationError

__all__ = ["AggregationReport", "PrivacyAggregator"]


@dataclass
class AggregationReport:
    """What an aggregation pass produced and what it had to suppress."""

    aggregates: List[TupleSet] = field(default_factory=list)
    suppressed_groups: int = 0
    suppressed_inputs: int = 0
    groups_published: int = 0

    def suppression_rate(self) -> float:
        """Fraction of groups withheld for falling below the k threshold."""
        total = self.groups_published + self.suppressed_groups
        if total == 0:
            return 0.0
        return self.suppressed_groups / total


class PrivacyAggregator:
    """Aggregates sensitive tuple sets into k-anonymous summaries.

    Parameters
    ----------
    group_by:
        Attribute names whose values define a group (e.g. ``("incident",)``
        groups all patients at one incident).
    identifying_attributes:
        Attributes stripped from the aggregate's provenance (e.g.
        ``("patient", "emt")``).
    k:
        Minimum number of *distinct identities* a group must contain to
        be published.
    identity_attribute:
        The attribute that defines an identity for counting against
        ``k`` (default: the first identifying attribute).
    """

    def __init__(
        self,
        group_by: Sequence[str],
        identifying_attributes: Sequence[str],
        k: int = 3,
        identity_attribute: Optional[str] = None,
        agent_version: str = "1.0",
    ) -> None:
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        if not group_by:
            raise ConfigurationError("group_by must list at least one attribute")
        if not identifying_attributes:
            raise ConfigurationError("identifying_attributes must list at least one attribute")
        self.group_by = list(group_by)
        self.identifying_attributes = list(identifying_attributes)
        self.k = k
        self.identity_attribute = identity_attribute or self.identifying_attributes[0]
        self.agent = Agent(
            "program",
            "privacy-aggregator",
            agent_version,
            metadata={"k": k, "suppressed": tuple(self.identifying_attributes)},
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self, tuple_sets: Sequence[TupleSet]) -> AggregationReport:
        """Group, suppress small groups, and emit privacy-preserving aggregates."""
        report = AggregationReport()
        groups = self._group(tuple_sets)
        for key, members in sorted(groups.items()):
            identities = {
                str(member.provenance.get(self.identity_attribute))
                for member in members
                if member.provenance.get(self.identity_attribute) is not None
            }
            if len(identities) < self.k:
                report.suppressed_groups += 1
                report.suppressed_inputs += len(members)
                continue
            report.aggregates.append(self._summarise(key, members, len(identities)))
            report.groups_published += 1
        return report

    def _group(self, tuple_sets: Sequence[TupleSet]) -> Dict[Tuple, List[TupleSet]]:
        groups: Dict[Tuple, List[TupleSet]] = {}
        for tuple_set in tuple_sets:
            key = tuple(
                str(tuple_set.provenance.get(name)) for name in self.group_by
            )
            groups.setdefault(key, []).append(tuple_set)
        return groups

    def _summarise(self, key: Tuple, members: Sequence[TupleSet], population: int) -> TupleSet:
        samples: Dict[str, List[float]] = {}
        latest: Optional[Timestamp] = None
        for member in members:
            for reading in member.readings:
                if latest is None or reading.timestamp.seconds > latest.seconds:
                    latest = reading.timestamp
                for name, value in reading.values.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    samples.setdefault(name, []).append(float(value))

        summary_values: Dict[str, AttributeValue] = {"population": population}
        for name, values in samples.items():
            summary_values[f"{name}_mean"] = statistics.fmean(values)
            summary_values[f"{name}_count"] = len(values)

        attributes: Dict[str, AttributeValue] = {
            "stage": "privacy-aggregate",
            "k": self.k,
            "population": population,
            "suppressed_attributes": tuple(self.identifying_attributes),
        }
        for name, value in zip(self.group_by, key):
            attributes[name] = value
        # Carry non-identifying context from the first member.
        first = members[0].provenance
        for name in ("domain", "location", "window_start", "window_end"):
            value = first.get(name)
            if value is not None and name not in attributes:
                attributes[name] = value
        for name in self.identifying_attributes:
            attributes.pop(name, None)

        record = merge_provenance(attributes, [m.provenance for m in members], agent=self.agent)
        readings: List[SensorReading] = []
        if latest is not None and summary_values:
            readings.append(
                SensorReading(
                    sensor_id="privacy-aggregator:summary",
                    timestamp=latest,
                    values=summary_values,
                )
            )
        return TupleSet(readings, record)

    # ------------------------------------------------------------------
    # Verification helpers (used by tests)
    # ------------------------------------------------------------------
    def leaks_identity(self, aggregate: TupleSet) -> bool:
        """True when an aggregate still carries any identifying attribute."""
        return any(
            aggregate.provenance.get(name) is not None for name in self.identifying_attributes
        )
