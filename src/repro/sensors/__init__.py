"""Simulated sensor devices, networks and domain workloads."""

from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec

__all__ = ["SensorNode", "SensorSpec", "SensorNetwork"]
