"""Simulated sensor nodes.

The paper's substrate is a collection of deployed sensor networks
(traffic cameras and magnetometers, volcano seismometers, pulse
oximeters, ...).  We cannot run those, so :class:`SensorNode` simulates
one device: it has an identity, a type, a location, a hardware/firmware
revision (which matters for provenance: "one might mark when individual
sensors were replaced with newer models"), a sampling period and a value
model that produces plausible readings.

Value models are simple callables so each workload module can shape its
own signal (diurnal traffic cycles, vital-sign baselines, eruption
bursts) without this module knowing about any of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from repro.core.attributes import AttributeValue, GeoPoint, Timestamp
from repro.core.tupleset import SensorReading
from repro.errors import ConfigurationError

__all__ = ["SensorSpec", "SensorNode"]

#: A value model maps (node, timestamp, rng) to the measured quantities.
ValueModel = Callable[["SensorNode", Timestamp, random.Random], Dict[str, AttributeValue]]


@dataclass(frozen=True)
class SensorSpec:
    """Static description of a sensor device.

    Attributes
    ----------
    sensor_type:
        What the device measures (``"magnetometer"``, ``"pulse-oximeter"`` ...).
    model:
        Hardware model name.
    hardware_revision / firmware_version:
        Revisions recorded in provenance; upgrading either mid-deployment
        is a provenance-visible event (see
        :meth:`SensorNode.upgrade_firmware`).
    sample_period_seconds:
        Nominal seconds between readings.
    """

    sensor_type: str
    model: str
    hardware_revision: str = "rev-a"
    firmware_version: str = "1.0"
    sample_period_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.sample_period_seconds <= 0:
            raise ConfigurationError("sample_period_seconds must be positive")


class SensorNode:
    """One simulated sensor device producing a stream of readings."""

    def __init__(
        self,
        sensor_id: str,
        spec: SensorSpec,
        location: GeoPoint,
        value_model: ValueModel,
        jitter_fraction: float = 0.05,
        failure_rate: float = 0.0,
    ) -> None:
        if not sensor_id:
            raise ConfigurationError("sensor_id must be non-empty")
        if not (0.0 <= jitter_fraction < 1.0):
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if not (0.0 <= failure_rate < 1.0):
            raise ConfigurationError("failure_rate must be in [0, 1)")
        self.sensor_id = sensor_id
        self.spec = spec
        self.location = location
        self._value_model = value_model
        self._jitter_fraction = jitter_fraction
        self._failure_rate = failure_rate
        self._firmware_history: List[tuple] = [(Timestamp(0.0), spec.firmware_version)]

    # ------------------------------------------------------------------
    # Provenance-visible maintenance events
    # ------------------------------------------------------------------
    def upgrade_firmware(self, when: Timestamp, version: str) -> None:
        """Record a firmware upgrade at ``when``.

        Subsequent readings report the new version; the history is what
        an annotation like "software on the sensor devices was upgraded"
        captures.
        """
        if not version:
            raise ConfigurationError("firmware version must be non-empty")
        self._firmware_history.append((when, version))
        self._firmware_history.sort(key=lambda item: item[0].seconds)

    def firmware_at(self, when: Timestamp) -> str:
        """Firmware version in effect at ``when``."""
        current = self._firmware_history[0][1]
        for changed_at, version in self._firmware_history:
            if changed_at.seconds <= when.seconds:
                current = version
            else:
                break
        return current

    def firmware_history(self) -> List[tuple]:
        """The full (timestamp, version) upgrade history."""
        return list(self._firmware_history)

    # ------------------------------------------------------------------
    # Reading generation
    # ------------------------------------------------------------------
    def readings(
        self,
        start: Timestamp,
        duration_seconds: float,
        rng: random.Random,
    ) -> Iterator[SensorReading]:
        """Generate readings covering ``[start, start + duration)``.

        Sample times are the nominal period plus bounded jitter; a node
        configured with a ``failure_rate`` silently drops that fraction
        of samples (sensors do fail, and the gaps matter to aggregate
        quality downstream).
        """
        if duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")
        period = self.spec.sample_period_seconds
        elapsed = 0.0
        while elapsed < duration_seconds:
            jitter = rng.uniform(-self._jitter_fraction, self._jitter_fraction) * period
            when = Timestamp(start.seconds + elapsed + max(0.0, jitter))
            if when.seconds >= start.seconds + duration_seconds:
                break
            if self._failure_rate == 0.0 or rng.random() >= self._failure_rate:
                values = dict(self._value_model(self, when, rng))
                yield SensorReading(
                    sensor_id=self.sensor_id,
                    timestamp=when,
                    values=values,
                    location=self.location,
                )
            elapsed += period

    def provenance_attributes(self) -> Dict[str, AttributeValue]:
        """Attributes describing this device, for inclusion in provenance."""
        return {
            "sensor_id": self.sensor_id,
            "sensor_type": self.spec.sensor_type,
            "sensor_model": self.spec.model,
            "hardware_revision": self.spec.hardware_revision,
            "firmware_version": self.spec.firmware_version,
            "location": self.location,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SensorNode({self.sensor_id}, {self.spec.sensor_type})"
