"""Simulated sensor networks: a named collection of sensor nodes.

A :class:`SensorNetwork` groups nodes belonging to one deployment (one
city's congestion zone, one volcano, one ambulance team's patients) and
turns their raw reading streams into provenance-named tuple sets via a
:class:`~repro.core.tupleset.TupleSetWindower`.

Every tuple set produced carries:

* the deployment's base attributes (domain, owner, region, location),
* the window boundaries and reading count,
* the set of contributing sensor ids and sensor types,
* the deployment agent (``Agent("sensor-network", <name>, <version>)``),

which is exactly the kind of provenance Section II argues should *be*
the data set's name.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.core.attributes import AttributeValue, GeoPoint, Timestamp
from repro.core.provenance import Agent, ProvenanceRecord
from repro.core.tupleset import SensorReading, TupleSet, TupleSetWindower
from repro.errors import ConfigurationError, UnknownEntityError
from repro.sensors.node import SensorNode

__all__ = ["SensorNetwork"]


class SensorNetwork:
    """A deployment of sensor nodes producing provenance-named tuple sets.

    Parameters
    ----------
    name:
        Deployment name (``"london-congestion-zone"``).
    domain:
        Application domain (``"traffic"``, ``"medical"``, ...).
    base_attributes:
        Extra attributes stamped on every tuple set (owner, region, ...).
    window_seconds:
        Width of the tuple-set time window.
    seed:
        Seed for this network's private random generator, so workloads
        are reproducible.
    version:
        Deployment software version recorded in the producing agent.
    """

    def __init__(
        self,
        name: str,
        domain: str,
        base_attributes: Optional[Mapping[str, AttributeValue]] = None,
        window_seconds: float = 300.0,
        seed: int = 0,
        version: str = "1.0",
    ) -> None:
        if not name or not domain:
            raise ConfigurationError("network name and domain must be non-empty")
        self.name = name
        self.domain = domain
        self.window_seconds = float(window_seconds)
        self._base_attributes = dict(base_attributes or {})
        self._nodes: Dict[str, SensorNode] = {}
        self._rng = random.Random(seed)
        self._agent = Agent("sensor-network", name, version)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: SensorNode) -> None:
        """Register a sensor node; ids must be unique within the network."""
        if node.sensor_id in self._nodes:
            raise ConfigurationError(f"duplicate sensor id {node.sensor_id!r}")
        self._nodes[node.sensor_id] = node

    def node(self, sensor_id: str) -> SensorNode:
        """Fetch a node by id."""
        try:
            return self._nodes[sensor_id]
        except KeyError:
            raise UnknownEntityError(f"unknown sensor {sensor_id!r}") from None

    @property
    def nodes(self) -> List[SensorNode]:
        """All registered nodes, in insertion order."""
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def agent(self) -> Agent:
        """The agent recorded as producer of this network's tuple sets."""
        return self._agent

    def centroid(self) -> Optional[GeoPoint]:
        """Mean node location: where this network's data "belongs"."""
        if not self._nodes:
            return None
        nodes = list(self._nodes.values())
        lat = sum(node.location.latitude for node in nodes) / len(nodes)
        lon = sum(node.location.longitude for node in nodes) / len(nodes)
        return GeoPoint(lat, lon)

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------
    def readings(self, start: Timestamp, duration_seconds: float) -> List[SensorReading]:
        """All nodes' readings over the interval, time-ordered."""
        if not self._nodes:
            raise ConfigurationError("network has no sensor nodes")
        collected: List[SensorReading] = []
        for node in self._nodes.values():
            collected.extend(node.readings(start, duration_seconds, self._rng))
        collected.sort(key=lambda reading: reading.timestamp.seconds)
        return collected

    def tuple_sets(self, start: Timestamp, duration_seconds: float) -> List[TupleSet]:
        """Generate readings and window them into provenance-named tuple sets."""
        readings = self.readings(start, duration_seconds)
        windower = TupleSetWindower(
            window_seconds=self.window_seconds,
            base_attributes=self._window_attributes(),
            agent=self._agent,
            attribute_fn=self._per_window_attributes,
        )
        return windower.window(readings)

    def _window_attributes(self) -> Dict[str, AttributeValue]:
        attributes: Dict[str, AttributeValue] = {
            "network": self.name,
            "domain": self.domain,
        }
        centroid = self.centroid()
        if centroid is not None:
            attributes["location"] = centroid
        sensor_types = sorted({node.spec.sensor_type for node in self._nodes.values()})
        if sensor_types:
            attributes["sensor_types"] = tuple(sensor_types)
        attributes.update(self._base_attributes)
        return attributes

    def _per_window_attributes(
        self, window_start: Timestamp, readings: Sequence[SensorReading]
    ) -> Dict[str, AttributeValue]:
        sensors = tuple(sorted({reading.sensor_id for reading in readings}))
        return {"contributing_sensors": sensors}
