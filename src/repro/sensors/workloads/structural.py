"""Structural-health-monitoring workload (city-wide bridge/building sensing).

The paper cites Kottapalli et al.'s two-tiered wireless architecture for
structural health monitoring.  The workload models accelerometer and
strain-gauge clusters on a handful of structures; its distinctive
provenance feature is the *sensor-replacement annotation* scenario from
Section I ("one might mark when individual sensors were replaced with
newer models having slightly different properties"), which the example
and tests exercise through firmware upgrades and annotations.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import And, AttributeEquals, AttributeIn, Query
from repro.core.tupleset import TupleSet
from repro.pipeline.operators import AggregateOperator, FilterOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload

__all__ = ["StructuralWorkload"]

_STRUCTURES = {
    "longfellow-bridge": GeoPoint(42.3615, -71.0727),
    "tobin-bridge": GeoPoint(42.3875, -71.0598),
    "city-hall": GeoPoint(42.3604, -71.0580),
}


def _accelerometer_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Modal vibration amplitude driven by a traffic-load daily cycle."""
    hour = (when.seconds / 3600.0) % 24.0
    load = 0.3 + 0.7 * math.exp(-((hour - 13.0) ** 2) / 30.0)
    return {
        "peak_acceleration_g": abs(rng.gauss(0.02 * load, 0.005)),
        "dominant_frequency_hz": rng.gauss(2.4, 0.05),
    }


def _strain_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Micro-strain with slow thermal drift."""
    hour = (when.seconds / 3600.0) % 24.0
    thermal = 10.0 * math.sin((hour - 4.0) / 24.0 * 2.0 * math.pi)
    return {"microstrain": rng.gauss(120.0 + thermal, 4.0)}


class StructuralWorkload(Workload):
    """Accelerometer / strain-gauge clusters on several urban structures."""

    domain = "structural"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        sensors_per_structure: int = 6,
        window_seconds: float = 600.0,
        structures: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(seed=seed, start=start)
        self.sensors_per_structure = sensors_per_structure
        self.window_seconds = window_seconds
        self.structures = list(structures) if structures is not None else list(_STRUCTURES)
        unknown = [name for name in self.structures if name not in _STRUCTURES]
        if unknown:
            raise ValueError(f"unknown structures: {unknown}; known: {sorted(_STRUCTURES)}")

    def build_networks(self) -> List[SensorNetwork]:
        networks = []
        for structure_index, structure in enumerate(self.structures):
            centre = _STRUCTURES[structure]
            network = SensorNetwork(
                name=f"shm-{structure}",
                domain=self.domain,
                base_attributes={"structure": structure, "owner": "city-dpw"},
                window_seconds=self.window_seconds,
                seed=self.seed * 5000 + structure_index,
            )
            rng = random.Random(self.seed + structure_index)
            for index in range(self.sensors_per_structure):
                location = GeoPoint(
                    centre.latitude + rng.uniform(-0.001, 0.001),
                    centre.longitude + rng.uniform(-0.001, 0.001),
                )
                if index % 2 == 0:
                    node = SensorNode(
                        sensor_id=f"{structure}-accel-{index:02d}",
                        spec=SensorSpec("accelerometer", "mems-ax3", sample_period_seconds=60.0),
                        location=location,
                        value_model=_accelerometer_model,
                    )
                else:
                    node = SensorNode(
                        sensor_id=f"{structure}-strain-{index:02d}",
                        spec=SensorSpec("strain-gauge", "foil-sg350", sample_period_seconds=120.0),
                        location=location,
                        value_model=_strain_model,
                    )
                network.add_node(node)
            networks.append(network)
        return networks

    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Flag excessive vibration and produce per-structure health summaries."""
        if not raw_sets:
            return []
        structure_context = ("structure", "owner")
        exceedance = FilterOperator(
            "exceedance-detector",
            predicate=lambda reading: float(reading.value("peak_acceleration_g", 0.0)) > 0.03,
            version="1.0",
            parameters={"threshold_g": 0.03},
            carry_attributes=structure_context,
        )
        summarise = AggregateOperator(
            "structure-health-summary", version="2.2", carry_attributes=structure_context
        )
        by_structure: Dict[str, List[TupleSet]] = {}
        for tuple_set in raw_sets:
            structure = tuple_set.provenance.get("structure")
            if structure is not None:
                by_structure.setdefault(str(structure), []).append(tuple_set)
        derived: List[TupleSet] = []
        for structure, members in sorted(by_structure.items()):
            flagged = [exceedance.apply(tuple_set) for tuple_set in members]
            derived.extend(flagged)
            derived.append(summarise.apply_many(members))
        return derived

    def query_suite(self) -> Dict[str, Query]:
        return {
            "bridge_windows": Query(
                AttributeIn("structure", ("longfellow-bridge", "tobin-bridge"))
            ),
            "health_summaries": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("stage", "aggregated"),
                    )
                )
            ),
            "exceedance_outputs": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("operator", "exceedance-detector"),
                    )
                )
            ),
        }
