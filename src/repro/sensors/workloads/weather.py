"""Weather workload: the cross-domain partner of the traffic workload.

The paper's introduction: "Even deeper insight might be gained by
merging historical traffic data with historical weather data", and
Section III-D notes that "the traffic and weather communities might not
agree beforehand on how to store and represent their data sets, but they
may later want to query across them."

To make that scenario runnable, the weather workload deliberately uses a
*different* provenance schema from the traffic workload (``region`` and
``agency`` instead of ``city`` and ``owner``; readings in SI units), so
the federation example and experiment E6 genuinely exercise
cross-schema, cross-domain querying.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import And, AttributeEquals, AttributeRange, Query
from repro.core.tupleset import TupleSet
from repro.pipeline.operators import AggregateOperator, CalibrationOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload, grid_locations
from repro.sensors.workloads.traffic import CITY_CENTRES

__all__ = ["WeatherWorkload"]


def _weather_station_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Temperature / humidity / rainfall with a daily cycle."""
    hour = (when.seconds / 3600.0) % 24.0
    diurnal = math.sin((hour - 6.0) / 24.0 * 2.0 * math.pi)
    temperature = 12.0 + 7.0 * diurnal + rng.gauss(0.0, 0.8)
    humidity = min(1.0, max(0.1, 0.7 - 0.2 * diurnal + rng.gauss(0.0, 0.05)))
    raining = rng.random() < 0.15
    rainfall = abs(rng.gauss(1.5, 1.0)) if raining else 0.0
    return {
        "temperature_c": temperature,
        "relative_humidity": humidity,
        "rainfall_mm": rainfall,
    }


class WeatherWorkload(Workload):
    """Regional weather-station deployments aligned with the traffic cities."""

    domain = "weather"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        regions: Sequence[str] = ("london",),
        stations_per_region: int = 5,
        window_seconds: float = 600.0,
    ) -> None:
        super().__init__(seed=seed, start=start)
        unknown = [region for region in regions if region not in CITY_CENTRES]
        if unknown:
            raise ValueError(f"unknown regions: {unknown}; known: {sorted(CITY_CENTRES)}")
        self.regions = list(regions)
        self.stations_per_region = stations_per_region
        self.window_seconds = window_seconds

    def build_networks(self) -> List[SensorNetwork]:
        networks = []
        for region_index, region in enumerate(self.regions):
            network = SensorNetwork(
                name=f"{region}-met-office",
                domain=self.domain,
                base_attributes={"region": region, "agency": "national-met-service"},
                window_seconds=self.window_seconds,
                seed=self.seed * 2000 + region_index,
            )
            centre = CITY_CENTRES[region]
            locations = grid_locations(centre, self.stations_per_region, spacing_degrees=0.05)
            for station, location in enumerate(locations):
                spec = SensorSpec(
                    sensor_type="weather-station",
                    model="met-one-34b",
                    sample_period_seconds=120.0,
                )
                network.add_node(
                    SensorNode(
                        sensor_id=f"{region}-wx-{station:03d}",
                        spec=spec,
                        location=location,
                        value_model=_weather_station_model,
                        failure_rate=0.005,
                    )
                )
            networks.append(network)
        return networks

    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Calibrate temperatures and produce per-window regional summaries."""
        if not raw_sets:
            return []
        region_context = ("region", "agency")
        calibrate = CalibrationOperator(
            "thermistor-correction",
            quantity="temperature_c",
            gain=1.0,
            offset=-0.4,
            carry_attributes=region_context,
        )
        summarise = AggregateOperator(
            "regional-summary", version="1.2", carry_attributes=region_context
        )
        derived: List[TupleSet] = []
        for tuple_set in raw_sets:
            calibrated = calibrate.apply(tuple_set)
            derived.append(calibrated)
            derived.append(summarise.apply(calibrated))
        return derived

    def query_suite(self) -> Dict[str, Query]:
        """Representative weather queries used by experiment E4."""
        first_region = self.regions[0]
        return {
            "windows_in_first_region": Query(AttributeEquals("region", first_region)),
            "calibrated_outputs": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("stage", "calibrated"),
                    )
                )
            ),
            "overnight_windows": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeRange(
                            "window_start",
                            low=Timestamp(self.start.seconds),
                            high=Timestamp(self.start.seconds + 6 * 3600),
                        ),
                    )
                )
            ),
        }
