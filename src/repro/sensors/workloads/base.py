"""Common machinery for the synthetic domain workloads.

The paper motivates PASS with concrete deployments: London's congestion
zone, volcano monitoring, city structural monitoring, biological field
research, supply-chain management, military sensing and the EMT
ambulance scenario.  Each workload module in this package models one of
those domains well enough to exercise the storage system the way the
paper describes: realistic attribute schemas, reading rates, locality
and (where the domain calls for it) derivation pipelines.

:class:`Workload` is the shared base class: it owns a deterministic RNG,
builds one or more :class:`~repro.sensors.network.SensorNetwork` objects
lazily, and exposes

* :meth:`tuple_sets` -- raw tuple sets for a simulated duration,
* :meth:`derived_sets` -- the domain's characteristic derived data
  (hourly aggregates, filtered streams, diagnostic outputs ...), built
  with the :mod:`repro.pipeline` operators so lineage is recorded,
* :meth:`query_suite` -- the domain's representative queries, used by
  experiment E4 and the examples.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import Query
from repro.core.tupleset import TupleSet
from repro.errors import ConfigurationError
from repro.sensors.network import SensorNetwork

__all__ = ["Workload", "grid_locations"]


def grid_locations(
    centre: GeoPoint, count: int, spacing_degrees: float = 0.01
) -> List[GeoPoint]:
    """Lay ``count`` locations on a square grid around ``centre``.

    Deployments like a congestion zone or a bridge instrument a compact
    area; a grid is a good-enough stand-in for their geometry and keeps
    the locality experiments deterministic.
    """
    if count <= 0:
        raise ConfigurationError("count must be positive")
    side = int(count ** 0.5) + 1
    locations = []
    for index in range(count):
        row, col = divmod(index, side)
        locations.append(
            GeoPoint(
                centre.latitude + (row - side / 2) * spacing_degrees,
                centre.longitude + (col - side / 2) * spacing_degrees,
            )
        )
    return locations


class Workload(ABC):
    """Base class for the synthetic domain workloads.

    Parameters
    ----------
    seed:
        Seed for every random choice the workload makes; identical seeds
        produce identical tuple sets (and identical PNames).
    start:
        Simulated start time of data collection.
    """

    #: short name used in reports ("traffic", "medical", ...)
    domain = "generic"

    def __init__(self, seed: int = 0, start: Optional[Timestamp] = None) -> None:
        self.seed = seed
        self.start = start if start is not None else Timestamp(0.0)
        self.rng = random.Random(seed)
        self._networks: Optional[List[SensorNetwork]] = None

    # ------------------------------------------------------------------
    # Network construction
    # ------------------------------------------------------------------
    @abstractmethod
    def build_networks(self) -> List[SensorNetwork]:
        """Construct this workload's sensor network(s)."""

    @property
    def networks(self) -> List[SensorNetwork]:
        """The workload's sensor networks (built lazily, then cached)."""
        if self._networks is None:
            self._networks = self.build_networks()
            if not self._networks:
                raise ConfigurationError("workload produced no sensor networks")
        return self._networks

    def network(self, name: str) -> SensorNetwork:
        """Fetch one of the workload's networks by name."""
        for network in self.networks:
            if network.name == name:
                return network
        raise ConfigurationError(f"workload has no network named {name!r}")

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------
    def tuple_sets(self, hours: float = 1.0) -> List[TupleSet]:
        """Raw tuple sets from every network over ``hours`` of simulated time."""
        if hours <= 0:
            raise ConfigurationError("hours must be positive")
        duration = hours * 3600.0
        produced: List[TupleSet] = []
        for network in self.networks:
            produced.extend(network.tuple_sets(self.start, duration))
        return produced

    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Domain-characteristic derived tuple sets (default: none).

        Subclasses override this to run their processing pipeline
        (aggregation, filtering, diagnostics) over the raw sets so that
        the provenance DAG gets realistic depth and fan-in.
        """
        return []

    def all_sets(self, hours: float = 1.0) -> Tuple[List[TupleSet], List[TupleSet]]:
        """Convenience: ``(raw, derived)`` tuple sets for ``hours`` of data."""
        raw = self.tuple_sets(hours)
        return raw, self.derived_sets(raw)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_suite(self) -> Dict[str, Query]:
        """Named representative queries for this domain (default: empty)."""
        return {}

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary facts used by the evaluation reports."""
        return {
            "domain": self.domain,
            "networks": [network.name for network in self.networks],
            "sensors": sum(len(network) for network in self.networks),
            "window_seconds": self.networks[0].window_seconds if self.networks else None,
            "seed": self.seed,
        }
