"""Synthetic domain workloads standing in for the paper's real deployments."""

from repro.sensors.workloads.base import Workload, grid_locations
from repro.sensors.workloads.medical import MedicalWorkload
from repro.sensors.workloads.structural import StructuralWorkload
from repro.sensors.workloads.supply_chain import SupplyChainWorkload
from repro.sensors.workloads.traffic import CITY_CENTRES, TrafficWorkload
from repro.sensors.workloads.volcano import VolcanoWorkload
from repro.sensors.workloads.weather import WeatherWorkload

__all__ = [
    "Workload",
    "grid_locations",
    "CITY_CENTRES",
    "TrafficWorkload",
    "WeatherWorkload",
    "MedicalWorkload",
    "VolcanoWorkload",
    "StructuralWorkload",
    "SupplyChainWorkload",
]
