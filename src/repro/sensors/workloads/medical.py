"""Medical / EMT workload: the Section III-C ambulance scenario.

"EMTs arriving at an accident or mass casualty event place sensors
(e.g., pulse oximeters, EKGs) on the patients.  These sensors monitor
vital signs in real time.  The resulting data is streamed to the
ambulance, to dispatchers ... and ultimately also to the correct
hospital emergency room.  Initially, this data is identified by patient,
date/time, location, etc.  As it moves through the system, it gets
processed and filtered, and is thus enriched with additional
provenance."

The workload models a mass-casualty incident: ``patients`` casualties,
each instrumented with a pulse oximeter and an EKG by one of ``emts``
EMTs.  Raw vitals windows carry patient, EMT, incident and location
attributes.  The derived pipeline models the data's journey through the
emergency-care system: a triage filter (only abnormal vitals forwarded
to dispatch), a per-patient summary for the receiving hospital, and a
diagnostic-tool output -- giving the two query families of Section III-C
(about a patient, and about the system) something real to run over.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import AgentIs, And, AttributeEquals, AttributeRange, IsRaw, Query
from repro.core.tupleset import TupleSet
from repro.pipeline.operators import AggregateOperator, DerivationOperator, FilterOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload

__all__ = ["MedicalWorkload"]

_INCIDENT_SITE = GeoPoint(42.3736, -71.1097)  # a Cambridge, MA intersection


def _pulse_oximeter_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Heart rate and SpO2; some patients trend unstable over time."""
    severity = getattr(node, "patient_severity", 0.2)
    drift = severity * min(1.0, when.seconds / 1800.0)
    heart_rate = max(35.0, rng.gauss(80.0 + 50.0 * drift, 4.0))
    spo2 = min(1.0, max(0.70, rng.gauss(0.98 - 0.15 * drift, 0.01)))
    return {"heart_rate": heart_rate, "spo2": spo2}


def _ekg_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """A coarse EKG summary: RR-interval variability and an arrhythmia flag."""
    severity = getattr(node, "patient_severity", 0.2)
    variability = abs(rng.gauss(0.04 + 0.10 * severity, 0.02))
    arrhythmia = rng.random() < (0.02 + 0.5 * severity * severity)
    return {"rr_variability": variability, "arrhythmia": arrhythmia}


class _DiagnosticTool(DerivationOperator):
    """The "automatic diagnostic tool" that suggests a destination hospital."""

    stage = "diagnosis"

    def __init__(self) -> None:
        super().__init__(
            "auto-triage",
            version="0.9",
            parameters={"protocol": "mci-2005"},
            carry_attributes=("patient", "emt", "incident"),
        )

    def _derived_attributes(self, inputs):
        attributes = super()._derived_attributes(inputs)
        worst = 0.0
        for tuple_set in inputs:
            for reading in tuple_set.readings:
                heart_rate = reading.value("heart_rate")
                if isinstance(heart_rate, (int, float)):
                    worst = max(worst, (float(heart_rate) - 80.0) / 80.0)
        attributes["suggested_destination"] = (
            "trauma-center" if worst > 0.4 else "community-hospital"
        )
        return attributes


class MedicalWorkload(Workload):
    """A sensor-enabled ambulance team at a mass-casualty incident."""

    domain = "medical"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        patients: int = 6,
        emts: int = 3,
        window_seconds: float = 60.0,
    ) -> None:
        super().__init__(seed=seed, start=start)
        self.patients = patients
        self.emts = emts
        self.window_seconds = window_seconds
        self._patient_emt: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Networks: one per patient (the tuple sets are identified by patient)
    # ------------------------------------------------------------------
    def build_networks(self) -> List[SensorNetwork]:
        networks = []
        rng = random.Random(self.seed)
        for index in range(self.patients):
            patient_id = f"patient-{index:03d}"
            emt_id = f"emt-{index % max(1, self.emts):02d}"
            self._patient_emt[patient_id] = emt_id
            severity = rng.uniform(0.05, 0.9)
            network = SensorNetwork(
                name=f"vitals-{patient_id}",
                domain=self.domain,
                base_attributes={
                    "patient": patient_id,
                    "emt": emt_id,
                    "incident": "mci-route2-pileup",
                },
                window_seconds=self.window_seconds,
                seed=self.seed * 3000 + index,
            )
            location = GeoPoint(
                _INCIDENT_SITE.latitude + rng.uniform(-0.0005, 0.0005),
                _INCIDENT_SITE.longitude + rng.uniform(-0.0005, 0.0005),
            )
            oximeter = SensorNode(
                sensor_id=f"{patient_id}-spo2",
                spec=SensorSpec("pulse-oximeter", "oxi-9", sample_period_seconds=5.0),
                location=location,
                value_model=_pulse_oximeter_model,
            )
            ekg = SensorNode(
                sensor_id=f"{patient_id}-ekg",
                spec=SensorSpec("ekg", "cardio-12l", sample_period_seconds=10.0),
                location=location,
                value_model=_ekg_model,
            )
            # The value models read the severity off the node object.
            oximeter.patient_severity = severity
            ekg.patient_severity = severity
            network.add_node(oximeter)
            network.add_node(ekg)
            networks.append(network)
        return networks

    def emt_for(self, patient_id: str) -> str:
        """Which EMT handled a patient (builds networks if needed)."""
        _ = self.networks
        return self._patient_emt[patient_id]

    # ------------------------------------------------------------------
    # Derived data: triage filter -> patient summary -> diagnostic output
    # ------------------------------------------------------------------
    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        if not raw_sets:
            return []
        patient_context = ("patient", "emt", "incident")
        triage_filter = FilterOperator(
            "abnormal-vitals-filter",
            predicate=lambda reading: (
                float(reading.value("heart_rate", 80.0)) > 110.0
                or float(reading.value("spo2", 1.0)) < 0.92
                or bool(reading.value("arrhythmia", False))
            ),
            version="2.0",
            parameters={"hr_threshold": 110, "spo2_threshold": 0.92},
            carry_attributes=patient_context,
        )
        summarise = AggregateOperator(
            "patient-summary", version="1.1", carry_attributes=patient_context
        )
        diagnose = _DiagnosticTool()

        by_patient: Dict[str, List[TupleSet]] = {}
        for tuple_set in raw_sets:
            patient = tuple_set.provenance.get("patient")
            if patient is not None:
                by_patient.setdefault(str(patient), []).append(tuple_set)

        derived: List[TupleSet] = []
        for patient, members in sorted(by_patient.items()):
            filtered = [triage_filter.apply(tuple_set) for tuple_set in members]
            summary = summarise.apply_many(filtered)
            diagnosis = diagnose.apply(summary)
            derived.extend(filtered)
            derived.extend([summary, diagnosis])
        return derived

    # ------------------------------------------------------------------
    # The Section III-C query suites
    # ------------------------------------------------------------------
    def query_suite(self) -> Dict[str, Query]:
        first_patient = "patient-000"
        first_emt = self.emt_for(first_patient)
        return {
            # Patient-centric queries.
            "everything_for_patient": Query(AttributeEquals("patient", first_patient)),
            "patient_vitals_since_arrival": Query(
                And(
                    (
                        AttributeEquals("patient", first_patient),
                        IsRaw(True),
                        AttributeRange("window_start", low=self.start),
                    )
                )
            ),
            "patient_diagnosis": Query(
                And(
                    (
                        AttributeEquals("patient", first_patient),
                        AttributeEquals("stage", "diagnosis"),
                    )
                )
            ),
            # System-centric queries.
            "handled_by_emt": Query(AttributeEquals("emt", first_emt)),
            "triage_filter_outputs": Query(AgentIs("abnormal-vitals-filter", kind="program")),
        }
