"""Supply-chain workload (the paper cites Gaynor et al., sensor grids for
supply-chain management).

Pallet-mounted tag readers and cold-chain temperature loggers report as
shipments move between sites.  Its distinctive provenance feature is
*custody*: each tuple set records which facility currently holds the
shipment, and the derived "chain-of-custody" data set for a shipment
fans in every window observed along its route -- a provenance query that
is about neither time nor space but about an organisational attribute.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import And, AttributeEquals, Query
from repro.core.tupleset import TupleSet
from repro.pipeline.operators import FilterOperator, MergeOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload

__all__ = ["SupplyChainWorkload"]

_FACILITIES = {
    "shenzhen-plant": GeoPoint(22.5431, 114.0579),
    "rotterdam-port": GeoPoint(51.9244, 4.4777),
    "frankfurt-dc": GeoPoint(50.1109, 8.6821),
    "boston-store": GeoPoint(42.3601, -71.0589),
}

_ROUTE = ["shenzhen-plant", "rotterdam-port", "frankfurt-dc", "boston-store"]


def _cold_chain_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Container temperature/humidity with occasional door-open excursions."""
    excursion = rng.random() < 0.03
    temperature = rng.gauss(5.0, 0.4) + (8.0 if excursion else 0.0)
    return {
        "container_temp_c": temperature,
        "humidity": min(1.0, max(0.0, rng.gauss(0.55, 0.05))),
        "door_open": excursion,
    }


class SupplyChainWorkload(Workload):
    """Cold-chain shipments moving through a four-facility route."""

    domain = "supply-chain"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        shipments: int = 4,
        readers_per_facility: int = 2,
        window_seconds: float = 900.0,
    ) -> None:
        super().__init__(seed=seed, start=start)
        self.shipments = shipments
        self.readers_per_facility = readers_per_facility
        self.window_seconds = window_seconds

    def build_networks(self) -> List[SensorNetwork]:
        networks = []
        for facility_index, facility in enumerate(_ROUTE):
            centre = _FACILITIES[facility]
            network = SensorNetwork(
                name=f"scm-{facility}",
                domain=self.domain,
                base_attributes={"facility": facility, "custodian": f"{facility}-operator"},
                window_seconds=self.window_seconds,
                seed=self.seed * 6000 + facility_index,
            )
            for reader in range(self.readers_per_facility):
                for shipment in range(self.shipments):
                    network.add_node(
                        SensorNode(
                            sensor_id=f"{facility}-r{reader}-pallet-{shipment:02d}",
                            spec=SensorSpec(
                                "cold-chain-logger", "chill-tag-7", sample_period_seconds=300.0
                            ),
                            location=centre,
                            value_model=_cold_chain_model,
                        )
                    )
            networks.append(network)
        return networks

    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Build per-shipment chain-of-custody sets and excursion reports."""
        if not raw_sets:
            return []
        by_shipment: Dict[str, List[TupleSet]] = {}
        for tuple_set in raw_sets:
            shipments = {
                reading.sensor_id.rsplit("-", 1)[-1] for reading in tuple_set.readings
            }
            for shipment in shipments:
                by_shipment.setdefault(shipment, []).append(tuple_set)
        derived: List[TupleSet] = []
        for shipment, members in sorted(by_shipment.items()):
            # The shipment id goes into the operator parameters so that two
            # shipments passing through the same facilities still get
            # distinct provenance (PASS property P3 would reject a clash).
            custody = MergeOperator(
                "chain-of-custody-builder",
                version="1.0",
                parameters={"shipment": f"pallet-{shipment}"},
            )
            excursions = FilterOperator(
                "excursion-detector",
                predicate=lambda reading: bool(reading.value("door_open", False))
                or float(reading.value("container_temp_c", 5.0)) > 9.0,
                version="1.1",
                parameters={"max_temp_c": 9.0, "shipment": f"pallet-{shipment}"},
            )
            custody_set = custody.apply_many(members)
            derived.append(custody_set)
            derived.append(excursions.apply(custody_set))
        return derived

    def query_suite(self) -> Dict[str, Query]:
        return {
            "windows_at_port": Query(AttributeEquals("facility", "rotterdam-port")),
            "custody_chains": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("operator", "chain-of-custody-builder"),
                    )
                )
            ),
            "excursion_reports": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("operator", "excursion-detector"),
                    )
                )
            ),
        }
