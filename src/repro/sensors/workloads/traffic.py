"""Traffic workload: congestion-zone style vehicle sensing.

The paper's running example: "while traffic data from London's
Congestion Zone is useful immediately to ticket non-paying drivers, it
is also useful in other ways: it could be aggregated over time to
estimate the effects of changing Zone size, or it could be combined
geographically with data from other cities".

The workload models one or more city deployments.  Each city has a mix
of camera and magnetometer stations (the two raw sensor types the paper
mentions for car sightings).  The derived pipeline is the amalgamation +
filtering + hourly aggregation chain of Section II-A's example, so
lineage queries have realistic shape: sightings from heterogeneous
sensors are merged, implausible readings filtered, then rolled up.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import (
    And,
    AttributeEquals,
    AttributeRange,
    NearLocation,
    Query,
)
from repro.core.tupleset import SensorReading, TupleSet
from repro.pipeline.operators import AggregateOperator, FilterOperator, MergeOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload, grid_locations

__all__ = ["CITY_CENTRES", "TrafficWorkload"]

#: Approximate centres of the cities the paper name-drops.
CITY_CENTRES: Dict[str, GeoPoint] = {
    "london": GeoPoint(51.5074, -0.1278),
    "boston": GeoPoint(42.3601, -71.0589),
    "seattle": GeoPoint(47.6062, -122.3321),
    "singapore": GeoPoint(1.3521, 103.8198),
    "tokyo": GeoPoint(35.6762, 139.6503),
}


def _camera_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Vehicle counts with a diurnal rush-hour cycle plus noise."""
    hour = (when.seconds / 3600.0) % 24.0
    rush = math.exp(-((hour - 8.5) ** 2) / 4.0) + math.exp(-((hour - 17.5) ** 2) / 4.0)
    base = 4.0 + 40.0 * rush
    count = max(0, int(rng.gauss(base, base * 0.2)))
    speed = max(3.0, rng.gauss(45.0 - 25.0 * rush, 6.0))
    return {"vehicle_count": count, "mean_speed_kph": speed, "detector": "camera"}


def _magnetometer_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """Axle-crossing counts; noisier than cameras and occasionally saturating."""
    hour = (when.seconds / 3600.0) % 24.0
    rush = math.exp(-((hour - 8.5) ** 2) / 4.0) + math.exp(-((hour - 17.5) ** 2) / 4.0)
    base = 5.0 + 45.0 * rush
    count = max(0, int(rng.gauss(base, base * 0.35)))
    return {"vehicle_count": min(count, 120), "detector": "magnetometer"}


class TrafficWorkload(Workload):
    """Congestion-zone vehicle sensing in one or more cities.

    Parameters
    ----------
    cities:
        City names from :data:`CITY_CENTRES` (default: London only; the
        locality experiments pass several).
    stations_per_city:
        Sensor stations per deployment; each station gets one camera and
        one magnetometer.
    window_seconds:
        Tuple-set window width (default five minutes).
    """

    domain = "traffic"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        cities: Sequence[str] = ("london",),
        stations_per_city: int = 8,
        window_seconds: float = 300.0,
    ) -> None:
        super().__init__(seed=seed, start=start)
        unknown = [city for city in cities if city not in CITY_CENTRES]
        if unknown:
            raise ValueError(f"unknown cities: {unknown}; known: {sorted(CITY_CENTRES)}")
        self.cities = list(cities)
        self.stations_per_city = stations_per_city
        self.window_seconds = window_seconds

    # ------------------------------------------------------------------
    # Networks
    # ------------------------------------------------------------------
    def build_networks(self) -> List[SensorNetwork]:
        networks = []
        for city_index, city in enumerate(self.cities):
            network = SensorNetwork(
                name=f"{city}-congestion-zone",
                domain=self.domain,
                base_attributes={"city": city, "owner": f"{city}-transport-authority"},
                window_seconds=self.window_seconds,
                seed=self.seed * 1000 + city_index,
            )
            centre = CITY_CENTRES[city]
            locations = grid_locations(centre, self.stations_per_city, spacing_degrees=0.01)
            for station, location in enumerate(locations):
                camera_spec = SensorSpec(
                    sensor_type="camera",
                    model="plate-cam-200",
                    sample_period_seconds=60.0,
                )
                magnet_spec = SensorSpec(
                    sensor_type="magnetometer",
                    model="axle-sense-3",
                    sample_period_seconds=30.0,
                )
                network.add_node(
                    SensorNode(
                        sensor_id=f"{city}-cam-{station:03d}",
                        spec=camera_spec,
                        location=location,
                        value_model=_camera_model,
                        failure_rate=0.01,
                    )
                )
                network.add_node(
                    SensorNode(
                        sensor_id=f"{city}-mag-{station:03d}",
                        spec=magnet_spec,
                        location=location,
                        value_model=_magnetometer_model,
                        failure_rate=0.03,
                    )
                )
            networks.append(network)
        return networks

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Amalgamate per-window sightings, filter them, and aggregate hourly.

        Stage 1 merges the raw camera+magnetometer windows of each city
        and hour into one "sightings" set; stage 2 filters implausible
        readings; stage 3 aggregates.  Every stage records its agent and
        its inputs, giving three generations of lineage above the raw
        windows.
        """
        if not raw_sets:
            return []
        city_context = ("city", "owner")
        merge = MergeOperator(
            "sighting-amalgamator", version="2.1", carry_attributes=city_context
        )
        plausibility = FilterOperator(
            "sighting-filter",
            predicate=lambda reading: 0 <= float(reading.value("vehicle_count", 0)) <= 150,
            version="1.4",
            parameters={"max_count": 150},
            carry_attributes=city_context,
        )
        aggregate = AggregateOperator(
            "hourly-aggregator", version="3.0", carry_attributes=city_context
        )

        derived: List[TupleSet] = []
        by_city_hour: Dict[tuple, List[TupleSet]] = {}
        for tuple_set in raw_sets:
            city = tuple_set.provenance.get("city")
            start = tuple_set.provenance.get("window_start")
            if city is None or not isinstance(start, Timestamp):
                continue
            hour = int(start.seconds // 3600)
            by_city_hour.setdefault((str(city), hour), []).append(tuple_set)

        for (city, hour), members in sorted(by_city_hour.items()):
            merged = merge.apply_many(members)
            filtered = plausibility.apply(merged)
            aggregated = aggregate.apply(filtered)
            derived.extend([merged, filtered, aggregated])
        return derived

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_suite(self) -> Dict[str, Query]:
        """Representative traffic queries used by experiment E4."""
        first_city = self.cities[0]
        centre = CITY_CENTRES[first_city]
        return {
            "windows_in_first_city": Query(AttributeEquals("city", first_city)),
            "sightings_near_centre": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        NearLocation("location", centre, radius_km=10.0),
                    )
                )
            ),
            "morning_rush_windows": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeRange(
                            "window_start",
                            low=Timestamp(self.start.seconds + 7 * 3600),
                            high=Timestamp(self.start.seconds + 10 * 3600),
                        ),
                    )
                )
            ),
            "hourly_aggregates": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeEquals("stage", "aggregated"),
                    )
                )
            ),
        }
