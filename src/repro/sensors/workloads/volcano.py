"""Volcano-monitoring workload (the paper cites Werner-Allen et al. 2005).

Seismo-acoustic stations around a volcano stream continuous waveform
summaries; the scientifically interesting products are *event* data sets
extracted when several stations trigger together.  That gives this
workload a distinctive provenance shape: high-rate raw windows, plus a
sparse set of derived event sets each of which fans in from many raw
windows (the "find all the raw data from which this data set was
derived" query is most interesting here).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import GeoPoint, Timestamp
from repro.core.query import And, AttributeEquals, AttributeRange, IsRaw, Query
from repro.core.tupleset import TupleSet
from repro.pipeline.operators import MergeOperator
from repro.sensors.network import SensorNetwork
from repro.sensors.node import SensorNode, SensorSpec
from repro.sensors.workloads.base import Workload

__all__ = ["VolcanoWorkload"]

_VOLCAN_REVENTADOR = GeoPoint(-0.0775, -77.6561)

#: Simulated eruption tremor episodes (start hour, duration hours).
_TREMOR_EPISODES = [(2.0, 0.5), (9.0, 0.75), (16.5, 0.25)]


def _seismic_model(node: SensorNode, when: Timestamp, rng: random.Random) -> Dict[str, object]:
    """RSAM-style amplitude plus an infrasound channel; bursts during tremor."""
    hour = when.seconds / 3600.0
    tremor = 0.0
    for start, duration in _TREMOR_EPISODES:
        if start <= hour % 24.0 <= start + duration:
            tremor = 1.0
            break
    amplitude = abs(rng.gauss(0.4 + 5.0 * tremor, 0.3))
    infrasound = abs(rng.gauss(0.1 + 2.0 * tremor, 0.1))
    return {"rsam": amplitude, "infrasound_pa": infrasound, "triggered": amplitude > 2.5}


class VolcanoWorkload(Workload):
    """A seismo-acoustic array on a volcano flank."""

    domain = "volcanology"

    def __init__(
        self,
        seed: int = 0,
        start: Optional[Timestamp] = None,
        stations: int = 12,
        window_seconds: float = 120.0,
    ) -> None:
        super().__init__(seed=seed, start=start)
        self.stations = stations
        self.window_seconds = window_seconds

    def build_networks(self) -> List[SensorNetwork]:
        network = SensorNetwork(
            name="reventador-array",
            domain=self.domain,
            base_attributes={"volcano": "reventador", "institution": "field-observatory"},
            window_seconds=self.window_seconds,
            seed=self.seed * 4000,
        )
        rng = random.Random(self.seed)
        for index in range(self.stations):
            angle = 2.0 * math.pi * index / self.stations
            radius = 0.02 + 0.01 * rng.random()
            location = GeoPoint(
                _VOLCAN_REVENTADOR.latitude + radius * math.sin(angle),
                _VOLCAN_REVENTADOR.longitude + radius * math.cos(angle),
            )
            network.add_node(
                SensorNode(
                    sensor_id=f"seismo-{index:02d}",
                    spec=SensorSpec(
                        "seismometer", "geophone-l22", sample_period_seconds=30.0
                    ),
                    location=location,
                    value_model=_seismic_model,
                    failure_rate=0.02,
                )
            )
        return [network]

    def derived_sets(self, raw_sets: Sequence[TupleSet]) -> List[TupleSet]:
        """Extract per-episode event data sets fanning in from triggered windows."""
        if not raw_sets:
            return []
        extractor = MergeOperator("event-extractor", version="1.3",
                                  parameters={"trigger_threshold": 2.5})
        by_hour: Dict[int, List[TupleSet]] = {}
        for tuple_set in raw_sets:
            start = tuple_set.provenance.get("window_start")
            if not isinstance(start, Timestamp):
                continue
            triggered = any(bool(reading.value("triggered", False)) for reading in tuple_set)
            if triggered:
                by_hour.setdefault(int(start.seconds // 3600), []).append(tuple_set)
        events = []
        for hour, members in sorted(by_hour.items()):
            if len(members) >= 2:  # a real event needs multi-window support
                events.append(extractor.apply_many(members))
        return events

    def query_suite(self) -> Dict[str, Query]:
        return {
            "all_array_windows": Query(AttributeEquals("volcano", "reventador")),
            "raw_windows_only": Query(
                And((AttributeEquals("domain", self.domain), IsRaw(True)))
            ),
            "extracted_events": Query(
                And((AttributeEquals("domain", self.domain), AttributeEquals("stage", "merged")))
            ),
            "first_tremor_window": Query(
                And(
                    (
                        AttributeEquals("domain", self.domain),
                        AttributeRange(
                            "window_start",
                            low=Timestamp(self.start.seconds + 2 * 3600),
                            high=Timestamp(self.start.seconds + 3 * 3600),
                        ),
                    )
                )
            ),
        }
