"""repro -- Provenance-Aware Sensor Data Storage (PASS).

A reproduction of *Provenance-Aware Sensor Data Storage* (Ledlie, Ng,
Holland, Muniswamy-Reddy, Braun, Seltzer; NetDB/ICDE 2005): a local
provenance-aware store for sensor tuple sets, the distributed
architecture models the paper compares (centralized, distributed DB,
federated, soft-state Grid services, hierarchical namespaces, DHT), and
an evaluation harness that regenerates the paper's design-space
comparison on synthetic sensor workloads.

Typical use::

    from repro import PassStore, TupleSetWindower, Agent
    from repro.sensors.workloads import TrafficWorkload

    workload = TrafficWorkload(seed=7)
    store = PassStore()
    for tuple_set in workload.tuple_sets(hours=1):
        store.ingest(tuple_set)
"""

from repro.core import (
    Agent,
    Annotation,
    GeoPoint,
    PassStore,
    PName,
    ProvenanceGraph,
    ProvenanceRecord,
    Query,
    SensorReading,
    Timestamp,
    TupleSet,
    TupleSetWindower,
    merge_provenance,
)
from repro.errors import PassError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PassError",
    "Agent",
    "Annotation",
    "GeoPoint",
    "PName",
    "PassStore",
    "ProvenanceGraph",
    "ProvenanceRecord",
    "Query",
    "SensorReading",
    "Timestamp",
    "TupleSet",
    "TupleSetWindower",
    "merge_provenance",
]
