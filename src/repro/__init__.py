"""repro -- Provenance-Aware Sensor Data Storage (PASS).

A reproduction of *Provenance-Aware Sensor Data Storage* (Ledlie, Ng,
Holland, Muniswamy-Reddy, Braun, Seltzer; NetDB/ICDE 2005): a local
provenance-aware store for sensor tuple sets, the distributed
architecture models the paper compares (centralized, distributed DB,
federated, soft-state Grid services, hierarchical namespaces, DHT), and
an evaluation harness that regenerates the paper's design-space
comparison on synthetic sensor workloads.

The public surface is the **PassClient façade**: one protocol
(``publish``, ``publish_many``, ``query``, ``explain``, ``ancestors``,
``descendants``, ``locate``, ``stats``) over every target, constructed
from a URL::

    from repro import connect, Q
    from repro.sensors.workloads import TrafficWorkload

    workload = TrafficWorkload(seed=7)
    client = connect("memory://")           # or sqlite:///pass.db, dht://?sites=32, ...
    client.publish_many(workload.tuple_sets(hours=1))

    london = client.query(Q.attr("city") == "london", limit=10)
    lineage = client.ancestors(london.first())

The same two lines of query code run unchanged against a durable SQLite
store or any Section IV architecture model over a simulated wide-area
topology -- which is exactly the comparison the paper is about.  At
scale, ``connect("sqlite:///pass.db?shards=8")`` partitions the store by
PName digest across N concurrent SQLite shards with group-commit writes
and parallel scans (see ``docs/STORAGE.md``).  Queries
are built with the :class:`~repro.api.dsl.Q` DSL (or the raw predicate
algebra in :mod:`repro.core.query`); every operation returns a
:class:`~repro.api.results.Result` carrying records, simulated cost and
pagination.

Every query runs through the cost-based planner in :mod:`repro.query`,
which serves time-window, geographic-radius, attribute and membership
predicates from the store's indexes per site; ``client.explain(q)``
shows the chosen access path with estimated vs. actual rows (see
``docs/EXPLAIN.md``).

The pull API has a push counterpart: ``client.subscribe(predicate)``
registers a *standing* query matched incrementally on the ingest path
(:mod:`repro.stream`), with window aggregations
(:class:`~repro.stream.windows.WindowSpec`) and lineage triggers
(``client.subscribe_descendants``) on top; on distributed targets each
delivery is charged as a simulated ``notify`` message (see
``docs/STREAMS.md``).

The lower layers remain importable for finer-grained work:
:class:`~repro.core.pass_store.PassStore` (the local store engine, also
reachable as ``client.store`` on local targets), :mod:`repro.distributed`
(the architecture models), :mod:`repro.query` (the planner),
:mod:`repro.eval` (the E1-E14 experiments).
"""

from repro.api import Q, Result, connect
from repro.api.client import PassClient, wrap
from repro.core import (
    Agent,
    Annotation,
    GeoPoint,
    PassStore,
    PName,
    ProvenanceGraph,
    ProvenanceRecord,
    Query,
    SensorReading,
    Timestamp,
    TupleSet,
    TupleSetWindower,
    merge_provenance,
)
from repro.errors import PassError
from repro.stream import (
    LineageEvent,
    MatchEvent,
    StreamEngine,
    Subscription,
    WindowEvent,
    WindowSpec,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "PassError",
    "Agent",
    "Annotation",
    "GeoPoint",
    "LineageEvent",
    "MatchEvent",
    "PName",
    "PassClient",
    "PassStore",
    "ProvenanceGraph",
    "ProvenanceRecord",
    "Q",
    "Query",
    "Result",
    "SensorReading",
    "StreamEngine",
    "Subscription",
    "Timestamp",
    "TupleSet",
    "TupleSetWindower",
    "WindowEvent",
    "WindowSpec",
    "connect",
    "merge_provenance",
    "wrap",
]
