"""Provenance records: the first-class name of a sensor data set.

Section II-A of the paper argues that the provenance of a collection of
data "is the single, unique identifier for that data set ... in a very
real sense, this makes the provenance the name of the data set".  This
module implements that idea:

* :class:`ProvenanceRecord` is a structured description of how a tuple
  set came to be -- descriptive name-value pairs, the identities of the
  ancestor data sets it was derived from, and the *agents* (programs,
  sensors, people) that produced it.
* :class:`PName` is the canonical digest of a provenance record.  It is
  the identity used everywhere else in the library: by the PASS store,
  the indexes and the distributed architecture models.
* :class:`Annotation` captures after-the-fact notes ("sensor 12 was
  replaced with a newer model on this date") without changing the
  identity of the data they describe.

Two design points worth calling out:

* PNames are *content* digests of provenance, not random UUIDs.  This is
  what lets the library enforce PASS property P3 (non-identical data
  items do not have identical provenance): if two supposedly different
  tuple sets hash to the same PName, their provenance is literally
  identical and the store rejects the second one.
* Ancestor links are part of the record (and of the digest), so the
  derivation DAG is reconstructible from the records alone -- provenance
  is not lost when ancestor objects are removed (PASS property P4),
  because the child record carries the ancestor's PName forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.attributes import (
    AttributeValue,
    canonical_encode,
    ensure_attribute_map,
)
from repro.errors import ProvenanceError

__all__ = [
    "PName",
    "Agent",
    "Annotation",
    "ProvenanceRecord",
    "value_to_json",
    "value_from_json",
]


@dataclass(frozen=True, order=True)
class PName:
    """The provenance-derived name (identity) of a tuple set.

    A PName is a hex digest of the canonical encoding of a provenance
    record.  It is stable across processes and machines, short enough to
    pass around the simulated network, and unique per distinct
    provenance (collisions aside, which SHA-256 makes negligible).
    """

    digest: str

    def __post_init__(self) -> None:
        if not self.digest or len(self.digest) != 64:
            raise ProvenanceError(f"malformed PName digest: {self.digest!r}")

    @property
    def short(self) -> str:
        """A human-friendly 12-character prefix, used in reports and logs."""
        return self.digest[:12]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"pname:{self.short}"


@dataclass(frozen=True)
class Agent:
    """A program, sensor, person or organisation that acted on the data.

    The paper's examples include postprocessing programs ("image
    sharpening"), EMTs, compilers and sensor hardware revisions.  Agents
    are part of provenance and therefore part of identity.
    """

    kind: str
    name: str
    version: str = ""
    metadata: Mapping[str, AttributeValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not self.name:
            raise ProvenanceError("agent kind and name must be non-empty")
        object.__setattr__(self, "metadata", dict(ensure_attribute_map(dict(self.metadata))))

    def canonical(self) -> str:
        """Canonical text form used inside provenance digests."""
        meta = ",".join(
            f"{key}={canonical_encode(value)}" for key, value in sorted(self.metadata.items())
        )
        return f"agent({self.kind}|{self.name}|{self.version}|{meta})"

    def describe(self) -> str:
        """Short human-readable description, e.g. ``program gcc 3.3.3``."""
        if self.version:
            return f"{self.kind} {self.name} {self.version}"
        return f"{self.kind} {self.name}"


@dataclass(frozen=True)
class Annotation:
    """An after-the-fact note attached to a data set.

    Annotations (e.g. "sensors replaced with newer models") are
    searchable but are *not* part of the identity digest: adding an
    annotation must not change which data set the provenance names.
    """

    key: str
    value: AttributeValue
    author: str = ""
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ProvenanceError("annotation key must be non-empty")


class ProvenanceRecord:
    """The full provenance of one tuple set.

    Parameters
    ----------
    attributes:
        Descriptive name-value pairs (sensor type, location, time window,
        owning organisation, processing parameters, ...).  Domain
        specific; the library imposes no schema.
    ancestors:
        PNames of the data sets this one was derived from.  Empty for raw
        sensor captures.
    agents:
        The agents that produced this data set (the sensor network, the
        postprocessing program, the EMT, ...).
    annotations:
        Optional after-the-fact notes; not part of identity.
    """

    __slots__ = ("_attributes", "_ancestors", "_agents", "_annotations", "_pname")

    def __init__(
        self,
        attributes: Mapping[str, AttributeValue],
        ancestors: Sequence[PName] = (),
        agents: Sequence[Agent] = (),
        annotations: Sequence[Annotation] = (),
    ) -> None:
        self._attributes = ensure_attribute_map(dict(attributes))
        if not self._attributes:
            raise ProvenanceError("a provenance record needs at least one attribute")
        ancestor_list = list(ancestors)
        for ancestor in ancestor_list:
            if not isinstance(ancestor, PName):
                raise ProvenanceError(f"ancestors must be PNames, got {ancestor!r}")
        # Preserve order but drop duplicates: deriving twice from the same
        # input is the same dependency.
        seen = set()
        unique_ancestors = []
        for ancestor in ancestor_list:
            if ancestor.digest not in seen:
                seen.add(ancestor.digest)
                unique_ancestors.append(ancestor)
        self._ancestors = tuple(unique_ancestors)
        self._agents = tuple(agents)
        for agent in self._agents:
            if not isinstance(agent, Agent):
                raise ProvenanceError(f"agents must be Agent instances, got {agent!r}")
        self._annotations = list(annotations)
        self._pname: Optional[PName] = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """Canonical text form of the identity-bearing parts of the record."""
        attr_part = ";".join(
            f"{name}={canonical_encode(value)}"
            for name, value in sorted(self._attributes.items())
        )
        ancestor_part = ",".join(ancestor.digest for ancestor in self._ancestors)
        agent_part = ",".join(agent.canonical() for agent in self._agents)
        return f"attrs[{attr_part}]|ancestors[{ancestor_part}]|agents[{agent_part}]"

    def pname(self) -> PName:
        """The PName (identity digest) of this record.  Cached."""
        if self._pname is None:
            digest = hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()
            self._pname = PName(digest)
        return self._pname

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Mapping[str, AttributeValue]:
        """Read-only view of the descriptive attributes."""
        return dict(self._attributes)

    @property
    def ancestors(self) -> tuple:
        """PNames of the immediate ancestors (inputs to the derivation)."""
        return self._ancestors

    @property
    def agents(self) -> tuple:
        """Agents that produced this data set."""
        return self._agents

    @property
    def annotations(self) -> list:
        """Annotations attached so far (mutable history, not identity)."""
        return list(self._annotations)

    def get(self, name: str, default: Optional[AttributeValue] = None):
        """Return attribute ``name`` or ``default`` when absent."""
        return self._attributes.get(name, default)

    def has_ancestor(self, pname: PName) -> bool:
        """True when ``pname`` is an *immediate* ancestor of this record."""
        return any(ancestor.digest == pname.digest for ancestor in self._ancestors)

    def is_raw(self) -> bool:
        """True for raw captures (no ancestors): the leaves of the lineage DAG."""
        return not self._ancestors

    # ------------------------------------------------------------------
    # Mutation (annotations only)
    # ------------------------------------------------------------------
    def annotate(self, annotation: Annotation) -> None:
        """Attach an annotation.  Does not change the record's PName."""
        if not isinstance(annotation, Annotation):
            raise ProvenanceError(f"expected an Annotation, got {annotation!r}")
        self._annotations.append(annotation)

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def derive(
        self,
        attributes: Mapping[str, AttributeValue],
        agent: Optional[Agent] = None,
        extra_ancestors: Sequence[PName] = (),
    ) -> "ProvenanceRecord":
        """Build the provenance of a data set derived from this one.

        The paper (Section III-B): "The provenance of a derived data set
        is the provenance of the original data plus the provenance of the
        tools used to do the derivation."  Concretely the derived record
        points at this record's PName as an ancestor and lists the
        deriving agent.
        """
        agents = (agent,) if agent is not None else ()
        return ProvenanceRecord(
            attributes=attributes,
            ancestors=(self.pname(), *extra_ancestors),
            agents=agents,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the SQLite backend)."""
        return {
            "attributes": {
                name: _value_to_json(value) for name, value in self._attributes.items()
            },
            "ancestors": [ancestor.digest for ancestor in self._ancestors],
            "agents": [
                {
                    "kind": agent.kind,
                    "name": agent.name,
                    "version": agent.version,
                    "metadata": {
                        key: _value_to_json(val) for key, val in agent.metadata.items()
                    },
                }
                for agent in self._agents
            ],
            "annotations": [
                {
                    "key": ann.key,
                    "value": _value_to_json(ann.value),
                    "author": ann.author,
                    "timestamp": ann.timestamp,
                }
                for ann in self._annotations
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProvenanceRecord":
        """Inverse of :meth:`to_dict`."""
        attributes = {
            name: _value_from_json(value) for name, value in payload["attributes"].items()
        }
        ancestors = [PName(digest) for digest in payload.get("ancestors", [])]
        agents = [
            Agent(
                kind=item["kind"],
                name=item["name"],
                version=item.get("version", ""),
                metadata={
                    key: _value_from_json(val) for key, val in item.get("metadata", {}).items()
                },
            )
            for item in payload.get("agents", [])
        ]
        annotations = [
            Annotation(
                key=item["key"],
                value=_value_from_json(item["value"]),
                author=item.get("author", ""),
                timestamp=item.get("timestamp"),
            )
            for item in payload.get("annotations", [])
        ]
        return cls(attributes, ancestors, agents, annotations)

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ProvenanceRecord":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceRecord):
            return NotImplemented
        return self.pname() == other.pname()

    def __hash__(self) -> int:
        return hash(self.pname())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProvenanceRecord({self.pname().short}, "
            f"{len(self._attributes)} attrs, {len(self._ancestors)} ancestors)"
        )


# ----------------------------------------------------------------------
# JSON helpers for attribute values
# ----------------------------------------------------------------------
def _value_to_json(value: AttributeValue):
    from repro.core.attributes import GeoPoint, Timestamp

    if isinstance(value, Timestamp):
        return {"__type__": "timestamp", "seconds": value.seconds}
    if isinstance(value, GeoPoint):
        return {"__type__": "geopoint", "lat": value.latitude, "lon": value.longitude}
    if isinstance(value, tuple):
        return {"__type__": "list", "items": [_value_to_json(item) for item in value]}
    return value


def _value_from_json(value):
    from repro.core.attributes import GeoPoint, Timestamp

    if isinstance(value, dict):
        kind = value.get("__type__")
        if kind == "timestamp":
            return Timestamp(value["seconds"])
        if kind == "geopoint":
            return GeoPoint(value["lat"], value["lon"])
        if kind == "list":
            return tuple(_value_from_json(item) for item in value["items"])
        raise ProvenanceError(f"unknown serialised value type: {kind!r}")
    return value


# Public names: the wire protocol (repro.server) encodes attribute
# values with exactly the convention the SQLite backend persists, so a
# value round-trips identically through either path.
value_to_json = _value_to_json
value_from_json = _value_from_json


def merge_provenance(
    attributes: Mapping[str, AttributeValue],
    parents: Iterable[ProvenanceRecord],
    agent: Optional[Agent] = None,
) -> ProvenanceRecord:
    """Build the provenance of a data set derived from *several* parents.

    Used by join/aggregate pipeline operators and by cross-network
    amalgamation (the paper's "car sightings amalgamated from different
    sensor networks of different types").
    """
    ancestors = [parent.pname() for parent in parents]
    if not ancestors:
        raise ProvenanceError("merge_provenance needs at least one parent record")
    agents = (agent,) if agent is not None else ()
    return ProvenanceRecord(attributes=attributes, ancestors=ancestors, agents=agents)
