"""Naming schemes: conventional filenames vs structured provenance names.

Section II-A of the paper walks through everything that goes wrong when
tuple sets are named with "conventional, self-describing filenames, like
``volcano_vesuvius_10_11_04``": the naming convention must anticipate
every attribute, it silently imposes a significance ordering, it cannot
express relationships between data sets, and it cannot be cross-checked.

To make that argument measurable (experiment E2), this module implements
both schemes over the same data:

* :class:`FilenameConvention` -- a configurable ``field1_field2_..._date``
  convention that encodes a chosen subset of provenance attributes into a
  flat string, plus best-effort parsing back out of such strings.
* :class:`ProvenanceNaming` -- the paper's position: the name *is* the
  provenance record, and lookups go through the attribute index.

The benchmark then asks both schemes the same questions (find data sets
by an attribute that the convention did or did not encode; find data
sets related by derivation) and reports answer quality and cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.attributes import AttributeValue, GeoPoint, Timestamp, canonical_encode
from repro.core.provenance import ProvenanceRecord
from repro.errors import NamingError

__all__ = ["FilenameConvention", "ParsedFilename", "ProvenanceNaming"]


def _flatten(value: AttributeValue) -> str:
    """Render an attribute value into a filename-safe token."""
    if isinstance(value, Timestamp):
        return f"{int(value.seconds)}"
    if isinstance(value, GeoPoint):
        return f"{value.latitude:.3f}x{value.longitude:.3f}"
    if isinstance(value, tuple):
        return "+".join(_flatten(item) for item in value)
    text = str(value)
    # Conventional filenames cannot carry separators; squash them.
    for forbidden in (" ", "/", "_", ":", ";"):
        text = text.replace(forbidden, "-")
    return text


@dataclass(frozen=True)
class ParsedFilename:
    """The result of parsing a conventional filename back into fields."""

    fields: Mapping[str, str]
    extras: Sequence[str]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return a parsed field by name (always a string, if present)."""
        return self.fields.get(name, default)


class FilenameConvention:
    """A flat ``field1_field2_...`` naming convention (the strawman).

    Parameters
    ----------
    field_order:
        The attribute names the convention encodes, in significance
        order.  Attributes outside this list are simply *not
        representable* in the name, which is the crux of the paper's
        complaint.
    separator:
        Separator between fields (default underscore).
    missing_token:
        Placeholder emitted when a record lacks one of the fields.
    """

    def __init__(
        self,
        field_order: Sequence[str],
        separator: str = "_",
        missing_token: str = "unknown",
    ) -> None:
        if not field_order:
            raise NamingError("a filename convention needs at least one field")
        if len(set(field_order)) != len(field_order):
            raise NamingError("field_order contains duplicate fields")
        if not separator:
            raise NamingError("separator must be non-empty")
        self._field_order = list(field_order)
        self._separator = separator
        self._missing_token = missing_token

    @property
    def field_order(self) -> List[str]:
        """The attribute names the convention can express, most significant first."""
        return list(self._field_order)

    def name(self, record: ProvenanceRecord) -> str:
        """Produce the conventional filename for a provenance record.

        Any attribute not in ``field_order`` is silently dropped --
        exactly the information loss the paper warns about.
        """
        parts = []
        for field in self._field_order:
            value = record.get(field)
            parts.append(_flatten(value) if value is not None else self._missing_token)
        return self._separator.join(parts)

    def parse(self, filename: str) -> ParsedFilename:
        """Best-effort parse of a conventional filename back into fields.

        Surplus tokens (from values that themselves contained the
        separator before being squashed, or from convention drift) are
        returned as ``extras``; missing trailing fields are absent from
        ``fields``.
        """
        if not filename:
            raise NamingError("cannot parse an empty filename")
        tokens = filename.split(self._separator)
        fields: Dict[str, str] = {}
        for field, token in zip(self._field_order, tokens):
            if token != self._missing_token:
                fields[field] = token
        extras = tokens[len(self._field_order):]
        return ParsedFilename(fields=fields, extras=tuple(extras))

    def can_express(self, attribute: str) -> bool:
        """True when the convention has a slot for ``attribute``."""
        return attribute in self._field_order

    def lookup(
        self,
        names: Mapping[str, ProvenanceRecord],
        attribute: str,
        value: AttributeValue,
    ) -> List[str]:
        """Find filenames whose *parsed* field matches ``value``.

        This is how a user restricted to conventional names must search:
        string-match against whatever survived flattening.  Attributes
        the convention does not encode always return an empty list --
        the query is simply unanswerable, which experiment E2 records as
        lost recall.
        """
        if not self.can_express(attribute):
            return []
        needle = _flatten(value)
        matches = []
        for filename in names:
            parsed = self.parse(filename)
            if parsed.get(attribute) == needle:
                matches.append(filename)
        return matches


class ProvenanceNaming:
    """The paper's position: the provenance record *is* the name.

    A thin convenience wrapper that maps PName digests to records and
    performs exact attribute lookups; the full query machinery lives in
    :mod:`repro.core.query` and the PASS store.  Kept separate so the
    E2 benchmark can compare "name schemes" without dragging in a store.
    """

    def __init__(self) -> None:
        self._records: Dict[str, ProvenanceRecord] = {}

    def register(self, record: ProvenanceRecord) -> str:
        """Register a record and return its PName digest (its name)."""
        digest = record.pname().digest
        self._records[digest] = record
        return digest

    def __len__(self) -> int:
        return len(self._records)

    def resolve(self, digest: str) -> ProvenanceRecord:
        """Return the record named by ``digest``."""
        try:
            return self._records[digest]
        except KeyError:
            raise NamingError(f"unknown provenance name {digest[:12]}") from None

    def lookup(self, attribute: str, value: AttributeValue) -> List[str]:
        """Digests of every record whose ``attribute`` equals ``value``."""
        needle = canonical_encode(value)
        matches = []
        for digest, record in self._records.items():
            stored = record.get(attribute)
            if stored is not None and canonical_encode(stored) == needle:
                matches.append(digest)
        return matches

    def related(self, digest: str) -> List[str]:
        """Digests of records directly related to ``digest`` by derivation.

        Relationships are recoverable from structured names because every
        record carries its ancestors' PNames; conventional filenames have
        no way to answer this at all.
        """
        record = self.resolve(digest)
        related = [ancestor.digest for ancestor in record.ancestors]
        for other_digest, other in self._records.items():
            if any(ancestor.digest == digest for ancestor in other.ancestors):
                related.append(other_digest)
        return related
