"""The provenance DAG: ancestry relationships between tuple sets.

Most of the interesting queries in the paper are graph queries: "find
all the raw data from which this data set was derived", "find derived
data that may be many generations downstream", "all downstream data is
tainted and must be locatable".  The :class:`ProvenanceGraph` holds the
ancestry edges extracted from provenance records and answers those
reachability questions.

The graph is append-only in the sense that edges are never rewritten --
provenance, once recorded, is immutable -- but *nodes* may be marked
removed (the underlying data was deleted) without their edges
disappearing, which is what PASS property P4 requires.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import CycleError, UnknownEntityError

__all__ = ["ProvenanceGraph"]

#: shared empty adjacency set handed out for unknown digests (read-only)
_NO_EDGES: Set[str] = set()


class ProvenanceGraph:
    """A DAG over PNames with parent (ancestor) and child (descendant) edges.

    Nodes are identified by PName digests.  An edge ``child -> parent``
    means "child was derived from parent".  The graph rejects edges that
    would create a cycle, because a data set cannot be its own ancestor.
    """

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        self._removed: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, pname: PName) -> None:
        """Ensure a node exists (idempotent)."""
        digest = pname.digest
        self._parents.setdefault(digest, set())
        self._children.setdefault(digest, set())

    def add_record(self, record: ProvenanceRecord) -> None:
        """Add a provenance record's node and all of its ancestry edges.

        Ancestor nodes are created implicitly even if their own records
        have not been registered (or were removed): the child's record is
        sufficient evidence that they existed.
        """
        child = record.pname()
        self.add_node(child)
        for ancestor in record.ancestors:
            self.add_edge(child, ancestor)

    def add_edge(self, child: PName, parent: PName) -> None:
        """Record that ``child`` was derived from ``parent``.

        Raises :class:`~repro.errors.CycleError` if the edge would make
        ``parent`` reachable from itself.
        """
        if child.digest == parent.digest:
            raise CycleError("a data set cannot be derived from itself")
        self.add_node(child)
        self.add_node(parent)
        # The edge child->parent creates a cycle iff child is already an
        # ancestor of parent.
        if self._reaches(parent.digest, child.digest, self._parents):
            raise CycleError(
                f"edge {child.short} -> {parent.short} would create a provenance cycle"
            )
        self._parents[child.digest].add(parent.digest)
        self._children[parent.digest].add(child.digest)

    def mark_removed(self, pname: PName) -> None:
        """Mark a node's underlying data as removed.

        The node and its edges stay: provenance is not lost when ancestor
        objects are removed (PASS property P4).
        """
        if pname.digest not in self._parents:
            raise UnknownEntityError(f"unknown node {pname}")
        self._removed.add(pname.digest)

    # ------------------------------------------------------------------
    # Basic lookups
    # ------------------------------------------------------------------
    def __contains__(self, pname: PName) -> bool:
        return pname.digest in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def nodes(self) -> Iterator[PName]:
        """Iterate over every node in the graph."""
        for digest in self._parents:
            yield PName(digest)

    def is_removed(self, pname: PName) -> bool:
        """True when the node's underlying data was marked removed."""
        return pname.digest in self._removed

    def parents(self, pname: PName) -> List[PName]:
        """Immediate ancestors (the data sets this one was derived from)."""
        self._require(pname)
        return [PName(d) for d in sorted(self._parents[pname.digest])]

    def children(self, pname: PName) -> List[PName]:
        """Immediate descendants (data sets derived directly from this one)."""
        self._require(pname)
        return [PName(d) for d in sorted(self._children[pname.digest])]

    def roots(self) -> List[PName]:
        """Nodes with no parents: raw captures."""
        return [PName(d) for d in sorted(self._parents) if not self._parents[d]]

    def leaves(self) -> List[PName]:
        """Nodes with no children: the most-derived data sets."""
        return [PName(d) for d in sorted(self._children) if not self._children[d]]

    def edge_count(self) -> int:
        """Total number of derivation edges."""
        return sum(len(parents) for parents in self._parents.values())

    # ------------------------------------------------------------------
    # Digest-level views (index maintenance hot paths)
    # ------------------------------------------------------------------
    # The PName-returning accessors above sort and wrap on every call,
    # which is right for user-facing code but too slow for the closure
    # engines that walk the whole graph.  These views hand out the raw
    # adjacency sets; callers must treat them as read-only.

    def node_digests(self) -> Iterable[str]:
        """Every node digest (a live view; do not mutate the graph while iterating)."""
        return self._parents.keys()

    def parents_of(self, digest: str) -> Set[str]:
        """Immediate ancestor digests of ``digest`` (empty for unknown nodes)."""
        return self._parents.get(digest, _NO_EDGES)

    def children_of(self, digest: str) -> Set[str]:
        """Immediate descendant digests of ``digest`` (empty for unknown nodes)."""
        return self._children.get(digest, _NO_EDGES)

    def fingerprint(self) -> Dict[str, int]:
        """A cheap, order-independent digest of the graph's structure.

        Used to validate persisted reachability-index snapshots against
        the graph actually rebuilt from a backend: same node set + same
        edge set => same fingerprint.  XOR-combining per-element CRCs
        makes the value independent of insertion order in O(V + E).
        """
        crc = 0
        for digest, parents in self._parents.items():
            crc ^= zlib.crc32(digest.encode("ascii"))
            for parent in parents:
                crc ^= zlib.crc32(f"{digest}->{parent}".encode("ascii"))
        return {"nodes": len(self._parents), "edges": self.edge_count(), "crc": crc}

    # ------------------------------------------------------------------
    # Reachability (transitive closure)
    # ------------------------------------------------------------------
    def ancestors(self, pname: PName, max_depth: Optional[int] = None) -> Set[PName]:
        """Every data set this one was (transitively) derived from.

        ``max_depth`` bounds how many generations back to walk; ``None``
        walks to the raw roots.
        """
        self._require(pname)
        return {PName(d) for d in self._walk(pname.digest, self._parents, max_depth)}

    def descendants(self, pname: PName, max_depth: Optional[int] = None) -> Set[PName]:
        """Every data set (transitively) derived from this one.

        This is the paper's taint query: "if a problem is found with the
        original data ... all downstream data is tainted and must be
        locatable."
        """
        self._require(pname)
        return {PName(d) for d in self._walk(pname.digest, self._children, max_depth)}

    def raw_sources(self, pname: PName) -> Set[PName]:
        """The raw (rootless) ancestors of a data set.

        "Find all the raw data from which this data set was derived."
        """
        self._require(pname)
        candidates = self._walk(pname.digest, self._parents, None)
        if not self._parents.get(pname.digest):
            # A raw data set is its own (sole) raw source.
            candidates = candidates | {pname.digest}
        return {PName(digest) for digest in candidates if not self._parents.get(digest)}

    def is_ancestor(self, candidate: PName, of: PName) -> bool:
        """True when ``candidate`` is a (transitive) ancestor of ``of``."""
        self._require(candidate)
        self._require(of)
        return self._reaches(of.digest, candidate.digest, self._parents)

    def path(self, descendant: PName, ancestor: PName) -> Optional[List[PName]]:
        """One derivation path from ``descendant`` back to ``ancestor``.

        Returns the list of PNames from descendant (inclusive) to
        ancestor (inclusive), or ``None`` when no path exists.  Used to
        "show me what I need to reproduce this result".
        """
        self._require(descendant)
        self._require(ancestor)
        target = ancestor.digest
        queue = deque([descendant.digest])
        came_from: Dict[str, Optional[str]] = {descendant.digest: None}
        while queue:
            current = queue.popleft()
            if current == target:
                path = []
                node: Optional[str] = current
                while node is not None:
                    path.append(PName(node))
                    node = came_from[node]
                # ``path`` runs ancestor -> descendant; callers expect the
                # derivation order descendant -> ancestor.
                return path[::-1]
            for parent in self._parents.get(current, ()):
                if parent not in came_from:
                    came_from[parent] = current
                    queue.append(parent)
        return None

    def depth(self, pname: PName) -> int:
        """Length of the longest derivation chain below this node (0 = raw)."""
        self._require(pname)
        return self._depth_into(pname.digest, {})

    def _depth_into(self, start: str, memo: Dict[str, int]) -> int:
        """Longest-chain depth of ``start``, folded into a shared ``memo``.

        Iterative (explicit stack) so 10^3+-deep derivation chains never
        hit the interpreter's recursion limit; the memo is caller-owned
        so whole-graph sweeps compute each node's depth exactly once.
        """
        if start in memo:
            return memo[start]
        stack = [start]
        while stack:
            digest = stack[-1]
            if digest in memo:
                stack.pop()
                continue
            parents = self._parents.get(digest, ())
            pending = [parent for parent in parents if parent not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[digest] = 0 if not parents else 1 + max(memo[parent] for parent in parents)
            stack.pop()
        return memo[start]

    def ancestry_depth_distribution(self) -> Dict[int, int]:
        """Histogram of node depth -> count; used by evaluation reports.

        One memo is shared across the whole sweep, so the sweep is
        O(V + E) rather than the O(V * E) a per-node recomputation costs.
        """
        histogram: Dict[int, int] = {}
        memo: Dict[str, int] = {}
        for digest in self._parents:
            depth = self._depth_into(digest, memo)
            histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))

    def topological_order(self) -> List[PName]:
        """Nodes ordered parents-before-children (raw data first)."""
        in_degree = {digest: len(parents) for digest, parents in self._parents.items()}
        queue = deque(sorted(d for d, deg in in_degree.items() if deg == 0))
        order: List[PName] = []
        while queue:
            digest = queue.popleft()
            order.append(PName(digest))
            for child in sorted(self._children.get(digest, ())):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._parents):  # pragma: no cover - defensive
            raise CycleError("provenance graph contains a cycle")
        return order

    def subgraph_edges(self, pnames: Iterable[PName]) -> List[Tuple[PName, PName]]:
        """Edges (child, parent) with both endpoints in ``pnames``."""
        wanted = {p.digest for p in pnames}
        edges = []
        for child in sorted(wanted & set(self._parents)):
            for parent in sorted(self._parents[child]):
                if parent in wanted:
                    edges.append((PName(child), PName(parent)))
        return edges

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, pname: PName) -> None:
        if pname.digest not in self._parents:
            raise UnknownEntityError(f"unknown node {pname}")

    @staticmethod
    def _walk(
        start: str,
        adjacency: Dict[str, Set[str]],
        max_depth: Optional[int],
    ) -> Set[str]:
        seen: Set[str] = set()
        frontier = deque([(start, 0)])
        while frontier:
            digest, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for neighbour in adjacency.get(digest, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append((neighbour, depth + 1))
        seen.discard(start)
        return seen

    def _reaches(self, start: str, target: str, adjacency: Dict[str, Set[str]]) -> bool:
        if start == target:
            return True
        seen = {start}
        frontier = deque([start])
        while frontier:
            digest = frontier.popleft()
            for neighbour in adjacency.get(digest, ()):
                if neighbour == target:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False
