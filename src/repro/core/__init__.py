"""Core of the PASS reproduction: provenance, tuple sets, queries, the local store.

The public names re-exported here are the ones examples and downstream
code are expected to use; the submodules remain importable for the finer
grained pieces (closure strategies, naming schemes, abstraction rules).
"""

from repro.core.abstraction import (
    AbstractionEngine,
    AgentAbstractionRule,
    AttributeAbstractionRule,
    DepthAbstractionRule,
)
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.closure import LabelledClosure, MemoizedClosure, NaiveClosure, make_closure
from repro.core.graph import ProvenanceGraph
from repro.core.naming import FilenameConvention, ProvenanceNaming
from repro.core.pass_store import PassStore
from repro.core.provenance import Agent, Annotation, PName, ProvenanceRecord, merge_provenance
from repro.core.query import (
    TRUE,
    AgentIs,
    AncestorOf,
    And,
    AnnotationMatches,
    AttributeContains,
    AttributeEquals,
    AttributeExists,
    AttributeIn,
    AttributeRange,
    DerivedFrom,
    IsRaw,
    NearLocation,
    Not,
    Or,
    Query,
)
from repro.core.tupleset import SensorReading, TupleSet, TupleSetWindower

__all__ = [
    "GeoPoint",
    "Timestamp",
    "Agent",
    "Annotation",
    "PName",
    "ProvenanceRecord",
    "merge_provenance",
    "SensorReading",
    "TupleSet",
    "TupleSetWindower",
    "ProvenanceGraph",
    "NaiveClosure",
    "MemoizedClosure",
    "LabelledClosure",
    "make_closure",
    "PassStore",
    "FilenameConvention",
    "ProvenanceNaming",
    "AbstractionEngine",
    "AttributeAbstractionRule",
    "AgentAbstractionRule",
    "DepthAbstractionRule",
    "Query",
    "TRUE",
    "AttributeEquals",
    "AttributeRange",
    "AttributeContains",
    "AttributeIn",
    "AttributeExists",
    "NearLocation",
    "AgentIs",
    "AnnotationMatches",
    "IsRaw",
    "And",
    "Or",
    "Not",
    "DerivedFrom",
    "AncestorOf",
]
