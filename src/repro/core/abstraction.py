"""Provenance abstraction: collapsing lineage the user does not care about.

Section V of the paper: "sometimes one wants to abstract provenance
away.  For example, one probably wants to know what compiler compiled
the program that did a particular analysis step ... but for most
purposes, it is far more useful for this information to be reported as
'gcc 3.3.3' rather than as a detailed record of gcc's own provenance and
change history."

This module implements that idea as *abstraction rules* applied when
lineage is reported to a user:

* an :class:`AbstractionRule` decides, for a given provenance record,
  whether the lineage *behind* it should be summarised instead of
  expanded, and what the summary label is;
* :class:`AbstractionEngine` walks an ancestry DAG applying the rules,
  producing an :class:`AbstractedLineage` -- the nodes that remain
  expanded, plus summaries of the collapsed subtrees.

Experiment E14 measures how much reported lineage shrinks under the
rules while the "useful" nodes are all retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.graph import ProvenanceGraph
from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import UnknownEntityError

__all__ = [
    "AbstractionRule",
    "AttributeAbstractionRule",
    "AgentAbstractionRule",
    "DepthAbstractionRule",
    "AbstractedLineage",
    "AbstractionEngine",
]


class AbstractionRule:
    """Base class: decides whether to collapse the lineage behind a record."""

    def summarise(self, pname: PName, record: Optional[ProvenanceRecord]) -> Optional[str]:
        """Return a summary label to use instead of expanding this node's
        ancestors, or ``None`` to leave the node fully expanded."""
        raise NotImplementedError


@dataclass(frozen=True)
class AttributeAbstractionRule(AbstractionRule):
    """Collapse nodes whose attribute ``name`` equals ``value``.

    E.g. collapse everything with ``kind == "toolchain"`` and report it
    by its ``label_attribute`` (say, ``tool_version``).
    """

    name: str
    value: object
    label_attribute: Optional[str] = None

    def summarise(self, pname, record) -> Optional[str]:
        if record is None:
            return None
        if record.get(self.name) != self.value:
            return None
        if self.label_attribute is not None:
            label = record.get(self.label_attribute)
            if label is not None:
                return str(label)
        return f"{self.name}={self.value}"


@dataclass(frozen=True)
class AgentAbstractionRule(AbstractionRule):
    """Collapse nodes produced by agents of a given kind, reporting the agent.

    The canonical example: a record produced by ``Agent("compiler",
    "gcc", "3.3.3")`` is reported as the string ``"compiler gcc 3.3.3"``
    and its own lineage is hidden.
    """

    agent_kind: str

    def summarise(self, pname, record) -> Optional[str]:
        if record is None:
            return None
        for agent in record.agents:
            if agent.kind == self.agent_kind:
                return agent.describe()
        return None


@dataclass(frozen=True)
class DepthAbstractionRule(AbstractionRule):
    """Collapse everything deeper than ``max_depth`` generations back.

    Depth-based abstraction is what interactive lineage browsers do:
    expand a few levels, summarise the rest.  The engine applies this
    rule using the traversal depth it tracks, so :meth:`summarise` only
    carries the label.
    """

    max_depth: int
    label: str = "earlier history"

    def summarise(self, pname, record) -> Optional[str]:
        # Depth is not a property of the record; the engine consults
        # ``max_depth`` directly.  Returning None here keeps the rule
        # inert if it is (mis)used as a record-level rule.
        return None


@dataclass
class AbstractedLineage:
    """The result of reporting lineage under abstraction rules.

    Attributes
    ----------
    focus:
        The data set whose lineage was requested.
    expanded:
        PNames reported in full (the focus itself is not included).
    summaries:
        Mapping from a collapsed node's PName to its summary label.  The
        nodes *behind* a collapsed node are neither expanded nor listed.
    hidden_count:
        How many ancestor nodes were suppressed entirely (they sit behind
        a summarised node or beyond the depth limit).
    """

    focus: PName
    expanded: List[PName] = field(default_factory=list)
    summaries: Dict[PName, str] = field(default_factory=dict)
    hidden_count: int = 0

    def reported_size(self) -> int:
        """Number of lineage entries a user actually sees."""
        return len(self.expanded) + len(self.summaries)

    def full_size(self) -> int:
        """Number of lineage entries that exist (reported + hidden)."""
        return self.reported_size() + self.hidden_count

    def compression_ratio(self) -> float:
        """full_size / reported_size (1.0 = nothing was abstracted away)."""
        reported = self.reported_size()
        if reported == 0:
            return 1.0
        return self.full_size() / reported


class AbstractionEngine:
    """Applies abstraction rules while walking an ancestry DAG."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        resolver: Callable[[PName], Optional[ProvenanceRecord]],
        rules: Sequence[AbstractionRule] = (),
    ) -> None:
        self._graph = graph
        self._resolver = resolver
        self._rules = list(rules)

    def add_rule(self, rule: AbstractionRule) -> None:
        """Append a rule; rules are consulted in insertion order."""
        self._rules.append(rule)

    def report(self, focus: PName, max_depth: Optional[int] = None) -> AbstractedLineage:
        """Produce the abstracted ancestry report for ``focus``.

        The walk proceeds upward from ``focus``.  At each node the rules
        are consulted: the first rule returning a summary collapses the
        node (it appears once, labelled, and its own ancestors are
        hidden).  ``max_depth`` additionally collapses anything deeper,
        counting it into ``hidden_count``.
        """
        if focus not in self._graph:
            raise UnknownEntityError(f"unknown node {focus}")
        depth_limit = max_depth
        for rule in self._rules:
            if isinstance(rule, DepthAbstractionRule):
                if depth_limit is None or rule.max_depth < depth_limit:
                    depth_limit = rule.max_depth

        result = AbstractedLineage(focus=focus)
        visited: Set[str] = {focus.digest}
        frontier: List[tuple] = [(parent, 1) for parent in self._graph.parents(focus)]
        while frontier:
            pname, depth = frontier.pop()
            if pname.digest in visited:
                continue
            visited.add(pname.digest)

            if depth_limit is not None and depth > depth_limit:
                result.hidden_count += 1
                # Everything above it is also hidden.
                for ancestor in self._graph.ancestors(pname):
                    if ancestor.digest not in visited:
                        visited.add(ancestor.digest)
                        result.hidden_count += 1
                continue

            record = self._resolver(pname)
            summary = self._first_summary(pname, record)
            if summary is not None:
                result.summaries[pname] = summary
                for ancestor in self._graph.ancestors(pname):
                    if ancestor.digest not in visited:
                        visited.add(ancestor.digest)
                        result.hidden_count += 1
                continue

            result.expanded.append(pname)
            for parent in self._graph.parents(pname):
                frontier.append((parent, depth + 1))
        return result

    def _first_summary(self, pname: PName, record: Optional[ProvenanceRecord]) -> Optional[str]:
        for rule in self._rules:
            summary = rule.summarise(pname, record)
            if summary is not None:
                return summary
        return None
