"""The provenance query model.

Section III of the paper derives the query classes a provenance-aware
sensor store must support, from three motivating domains:

* document versioning ("show me the file as it was yesterday", "find the
  person who removed this error code"),
* experimental science ("find all the raw data from which this data set
  was derived", "all downstream data is tainted and must be locatable"),
* sensor applications ("show me everything we've done for this patient",
  "give heart rate profiles for everyone handled by EMT X").

These reduce to a small algebra:

* **attribute predicates** over the name-value pairs of provenance
  records (equality, ranges, substring, geographic radius, membership),
* **conjunction / disjunction / negation** of predicates,
* **lineage predicates** (derived-from X, ancestor-of Y, produced-by
  agent A) that require transitive closure,
* and **query descriptors** that bundle a predicate with options such as
  result limits and whether removed data sets should be included.

The module is pure data + evaluation logic against in-memory provenance
records; execution strategy (which index to consult, which site to ask)
belongs to the PASS store and the architecture models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.attributes import (
    AttributeValue,
    GeoPoint,
    canonical_encode,
    compare_values,
)
from repro.core.provenance import PName, ProvenanceRecord
from repro.errors import ConfigurationError, QueryError

__all__ = [
    "Predicate",
    "AttributeEquals",
    "AttributeRange",
    "AttributeContains",
    "AttributeIn",
    "AttributeExists",
    "NearLocation",
    "TimeWindowOverlaps",
    "AgentIs",
    "AnnotationMatches",
    "IsRaw",
    "And",
    "Or",
    "Not",
    "DerivedFrom",
    "AncestorOf",
    "Query",
    "TRUE",
]


class LineageOracle(ABC):
    """What a lineage predicate needs from its execution environment.

    Anything that can answer "is ``ancestor`` an ancestor of ``node``"
    can evaluate :class:`DerivedFrom` / :class:`AncestorOf` -- the local
    PASS store, a closure strategy, or a distributed model's coordinator.
    """

    @abstractmethod
    def is_ancestor(self, ancestor: PName, descendant: PName) -> bool:
        """True when ``descendant`` is transitively derived from ``ancestor``."""


class Predicate(ABC):
    """Base class of all query predicates."""

    #: True when evaluating this predicate (or any sub-predicate) needs a
    #: lineage oracle, i.e. transitive closure.  Architecture models that
    #: cannot do closure check this flag and refuse such queries.
    requires_lineage = False

    @abstractmethod
    def matches(
        self,
        pname: PName,
        record: ProvenanceRecord,
        lineage: Optional[LineageOracle] = None,
    ) -> bool:
        """Evaluate the predicate against one record."""

    def attributes_referenced(self) -> List[str]:
        """Attribute names this predicate constrains (for index selection)."""
        return []

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class _AlwaysTrue(Predicate):
    """Matches every record; the default predicate of an unconstrained query."""

    def matches(self, pname, record, lineage=None) -> bool:
        return True


#: The trivial predicate that matches everything.
TRUE = _AlwaysTrue()


@dataclass(frozen=True)
class AttributeEquals(Predicate):
    """``record[name] == value`` (strict typed equality)."""

    name: str
    value: AttributeValue

    def matches(self, pname, record, lineage=None) -> bool:
        stored = record.get(self.name)
        if stored is None:
            return False
        return canonical_encode(stored) == canonical_encode(self.value)

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class AttributeRange(Predicate):
    """``low <= record[name] <= high`` over order-compatible values.

    Either bound may be ``None`` for a half-open range.  Used heavily for
    time windows ("from moment of arrival until now") and numeric
    thresholds ("heart rate above 120").
    """

    name: str
    low: Optional[AttributeValue] = None
    high: Optional[AttributeValue] = None
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise QueryError("AttributeRange needs at least one bound")

    def matches(self, pname, record, lineage=None) -> bool:
        stored = record.get(self.name)
        if stored is None:
            return False
        try:
            if self.low is not None:
                cmp = compare_values(stored, self.low)
                if cmp < 0 or (cmp == 0 and not self.include_low):
                    return False
            if self.high is not None:
                cmp = compare_values(stored, self.high)
                if cmp > 0 or (cmp == 0 and not self.include_high):
                    return False
        except ConfigurationError:
            # Values of a different kind cannot fall inside the range.
            return False
        return True

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class AttributeContains(Predicate):
    """Substring match on string attributes (case-insensitive)."""

    name: str
    needle: str

    def matches(self, pname, record, lineage=None) -> bool:
        stored = record.get(self.name)
        if not isinstance(stored, str):
            return False
        return self.needle.lower() in stored.lower()

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class AttributeIn(Predicate):
    """``record[name]`` is one of a set of values."""

    name: str
    values: Sequence[AttributeValue]

    def matches(self, pname, record, lineage=None) -> bool:
        stored = record.get(self.name)
        if stored is None:
            return False
        encoded = canonical_encode(stored)
        return any(canonical_encode(value) == encoded for value in self.values)

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class AttributeExists(Predicate):
    """The record carries attribute ``name`` at all."""

    name: str

    def matches(self, pname, record, lineage=None) -> bool:
        return record.get(self.name) is not None

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class NearLocation(Predicate):
    """The record's ``name`` attribute is a GeoPoint within ``radius_km``.

    Sensor data is locale-specific; "a commuter investigating alternate
    routes will likely search by sensor location".
    """

    name: str
    centre: GeoPoint
    radius_km: float

    def matches(self, pname, record, lineage=None) -> bool:
        stored = record.get(self.name)
        if not isinstance(stored, GeoPoint):
            return False
        return stored.distance_km(self.centre) <= self.radius_km

    def attributes_referenced(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class TimeWindowOverlaps(Predicate):
    """The record's time window overlaps the closed interval [start, end].

    Tuple sets are "collections of readings grouped by some property,
    typically time", so the canonical temporal query asks which tuple
    sets' ``[window_start, window_end]`` intervals intersect a query
    window.  Records lacking either endpoint (or carrying non-timestamp
    values there) never match -- exactly the population the store's
    :class:`~repro.index.temporal_index.TemporalIndex` maintains, which
    is what lets the planner serve this predicate from that index.
    """

    start: "AttributeValue"
    end: "AttributeValue"
    start_attr: str = "window_start"
    end_attr: str = "window_end"

    def __post_init__(self) -> None:
        from repro.core.attributes import Timestamp

        if not isinstance(self.start, Timestamp) or not isinstance(self.end, Timestamp):
            raise QueryError("TimeWindowOverlaps bounds must be Timestamps")
        if self.end.seconds < self.start.seconds:
            raise QueryError("TimeWindowOverlaps end precedes its start")

    def matches(self, pname, record, lineage=None) -> bool:
        from repro.core.attributes import Timestamp

        window_start = record.get(self.start_attr)
        window_end = record.get(self.end_attr)
        if not isinstance(window_start, Timestamp) or not isinstance(window_end, Timestamp):
            return False
        return (
            window_start.seconds <= self.end.seconds
            and window_end.seconds >= self.start.seconds
        )

    def attributes_referenced(self) -> List[str]:
        return [self.start_attr, self.end_attr]


@dataclass(frozen=True)
class AgentIs(Predicate):
    """An agent of the record matches by name (and optionally kind/version).

    "Give heart rate profiles for everyone handled by EMT X", "finding
    tuple sets handled by a particular postprocessing program".
    """

    name: str
    kind: Optional[str] = None
    version: Optional[str] = None

    def matches(self, pname, record, lineage=None) -> bool:
        for agent in record.agents:
            if agent.name != self.name:
                continue
            if self.kind is not None and agent.kind != self.kind:
                continue
            if self.version is not None and agent.version != self.version:
                continue
            return True
        return False


@dataclass(frozen=True)
class AnnotationMatches(Predicate):
    """Some annotation on the record has key ``key`` (and value, if given)."""

    key: str
    value: Optional[AttributeValue] = None

    def matches(self, pname, record, lineage=None) -> bool:
        for annotation in record.annotations:
            if annotation.key != self.key:
                continue
            if self.value is None:
                return True
            if canonical_encode(annotation.value) == canonical_encode(self.value):
                return True
        return False


@dataclass(frozen=True)
class IsRaw(Predicate):
    """The record describes a raw capture (no ancestors) -- or, negated, derived data."""

    raw: bool = True

    def matches(self, pname, record, lineage=None) -> bool:
        return record.is_raw() == self.raw


@dataclass(frozen=True)
class And(Predicate):
    """Every sub-predicate matches."""

    parts: Sequence[Predicate]

    def __post_init__(self) -> None:
        if not self.parts:
            raise QueryError("And() needs at least one sub-predicate")
        object.__setattr__(self, "parts", tuple(self.parts))

    @property
    def requires_lineage(self) -> bool:  # type: ignore[override]
        return any(part.requires_lineage for part in self.parts)

    def matches(self, pname, record, lineage=None) -> bool:
        return all(part.matches(pname, record, lineage) for part in self.parts)

    def attributes_referenced(self) -> List[str]:
        names: List[str] = []
        for part in self.parts:
            names.extend(part.attributes_referenced())
        return names


@dataclass(frozen=True)
class Or(Predicate):
    """At least one sub-predicate matches."""

    parts: Sequence[Predicate]

    def __post_init__(self) -> None:
        if not self.parts:
            raise QueryError("Or() needs at least one sub-predicate")
        object.__setattr__(self, "parts", tuple(self.parts))

    @property
    def requires_lineage(self) -> bool:  # type: ignore[override]
        return any(part.requires_lineage for part in self.parts)

    def matches(self, pname, record, lineage=None) -> bool:
        return any(part.matches(pname, record, lineage) for part in self.parts)

    def attributes_referenced(self) -> List[str]:
        names: List[str] = []
        for part in self.parts:
            names.extend(part.attributes_referenced())
        return names


@dataclass(frozen=True)
class Not(Predicate):
    """The sub-predicate does not match."""

    part: Predicate

    @property
    def requires_lineage(self) -> bool:  # type: ignore[override]
        return self.part.requires_lineage

    def matches(self, pname, record, lineage=None) -> bool:
        return not self.part.matches(pname, record, lineage)

    def attributes_referenced(self) -> List[str]:
        return self.part.attributes_referenced()


@dataclass(frozen=True)
class DerivedFrom(Predicate):
    """The record is (transitively) derived from ``ancestor``.

    This is the forward taint query: every data set downstream of a
    suspect input.  ``include_self`` controls whether the ancestor itself
    matches.
    """

    ancestor: PName
    include_self: bool = False

    requires_lineage = True

    def matches(self, pname, record, lineage=None) -> bool:
        if lineage is None:
            raise QueryError("DerivedFrom requires a lineage oracle")
        if pname.digest == self.ancestor.digest:
            return self.include_self
        return lineage.is_ancestor(self.ancestor, pname)


@dataclass(frozen=True)
class AncestorOf(Predicate):
    """The record is a (transitive) ancestor of ``descendant``.

    The backward query: "find all the raw data from which this data set
    was derived" composes this with :class:`IsRaw`.
    """

    descendant: PName
    include_self: bool = False

    requires_lineage = True

    def matches(self, pname, record, lineage=None) -> bool:
        if lineage is None:
            raise QueryError("AncestorOf requires a lineage oracle")
        if pname.digest == self.descendant.digest:
            return self.include_self
        return lineage.is_ancestor(pname, self.descendant)


@dataclass(frozen=True)
class Query:
    """A complete query: a predicate plus execution options.

    Parameters
    ----------
    predicate:
        The predicate to evaluate (default: match everything).
    limit:
        Maximum number of results; ``None`` for all.
    include_removed:
        Whether to include data sets whose underlying data was removed
        (their provenance survives; PASS property P4).
    order_by:
        Optional attribute name to sort results by (ascending); records
        lacking the attribute sort last.
    """

    predicate: Predicate = TRUE
    limit: Optional[int] = None
    include_removed: bool = True
    order_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit <= 0:
            raise QueryError("limit must be positive (or None)")

    @property
    def requires_lineage(self) -> bool:
        """True when executing this query needs transitive closure support."""
        return self.predicate.requires_lineage

    def attributes_referenced(self) -> List[str]:
        """Attribute names the predicate constrains, for index selection."""
        return self.predicate.attributes_referenced()

    def evaluate(
        self,
        candidates: Iterable[tuple],
        lineage: Optional[LineageOracle] = None,
        removed: Optional[Callable[[PName], bool]] = None,
    ) -> List[PName]:
        """Evaluate against an iterable of ``(PName, ProvenanceRecord)`` pairs.

        This is the generic scan path; stores with indexes narrow
        ``candidates`` first and then call this for the residual
        predicate.
        """
        return [pname for pname, _ in self.evaluate_pairs(candidates, lineage, removed)]

    def evaluate_pairs(
        self,
        candidates: Iterable[tuple],
        lineage: Optional[LineageOracle] = None,
        removed: Optional[Callable[[PName], bool]] = None,
    ) -> List[tuple]:
        """Like :meth:`evaluate` but keeps the ``(PName, record)`` pairs.

        The planner's executor uses this so callers wanting records
        (``query_records``) do not have to re-fetch what the candidate
        step already materialized.
        """
        matched: List[tuple] = []
        for pname, record in candidates:
            if not self.include_removed and removed is not None and removed(pname):
                continue
            if self.predicate.matches(pname, record, lineage):
                matched.append((pname, record))
        if self.order_by is not None:
            order_attr = self.order_by

            def sort_key(item):
                value = item[1].get(order_attr)
                if value is None:
                    return (1, "")
                return (0, canonical_encode(value))

            matched.sort(key=sort_key)
        if self.limit is not None:
            matched = matched[: self.limit]
        return matched
