"""Typed attribute values used throughout provenance records.

Section II-A of the paper argues that a data set's name should not be an
unstructured string but "a collection of name-value pairs".  This module
defines the value side of those pairs: a small set of concrete types
(strings, integers, floats, timestamps, geographic points and lists of
those), a canonical text encoding used when hashing provenance into a
stable identity, and comparison predicates used by the query engine.

The types are deliberately simple and self-describing so that different
application domains (traffic, weather, medicine, ...) can define their
own provenance schemas without the library having to know about them --
the "community-specific standards" the paper anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "GeoPoint",
    "Timestamp",
    "AttributeValue",
    "canonical_encode",
    "coerce_value",
    "values_equal",
    "value_matches",
    "compare_values",
]


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A geographic coordinate (latitude, longitude) in decimal degrees.

    Sensor data is "location-specific" (Section I); nearly every workload
    generator in :mod:`repro.sensors.workloads` stamps its readings and
    tuple sets with one of these.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.latitude <= 90.0):
            raise ConfigurationError(f"latitude out of range: {self.latitude}")
        if not (-180.0 <= self.longitude <= 180.0):
            raise ConfigurationError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres (haversine)."""
        radius_km = 6371.0
        lat1, lon1 = math.radians(self.latitude), math.radians(self.longitude)
        lat2, lon2 = math.radians(other.latitude), math.radians(other.longitude)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        a = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        return 2.0 * radius_km * math.asin(min(1.0, math.sqrt(a)))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.latitude:.6f},{self.longitude:.6f})"


@dataclass(frozen=True, order=True)
class Timestamp:
    """A point in time, stored as seconds since the Unix epoch (UTC).

    A thin wrapper rather than :class:`datetime.datetime` so that
    canonical encoding, ordering and arithmetic are unambiguous and so
    simulated clocks (which often start at zero) are first-class.
    """

    seconds: float

    @classmethod
    def from_datetime(cls, dt: datetime) -> "Timestamp":
        """Build a timestamp from a (timezone-aware or naive-UTC) datetime."""
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=timezone.utc)
        return cls(dt.timestamp())

    def to_datetime(self) -> datetime:
        """Return the equivalent timezone-aware UTC datetime."""
        return datetime.fromtimestamp(self.seconds, tz=timezone.utc)

    def __add__(self, delta_seconds: float) -> "Timestamp":
        return Timestamp(self.seconds + float(delta_seconds))

    def __sub__(self, other: Union["Timestamp", float]) -> float:
        if isinstance(other, Timestamp):
            return self.seconds - other.seconds
        return self.seconds - float(other)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"t{self.seconds:.3f}"


# The closed set of value types an attribute may carry.  Lists are
# allowed one level deep (e.g. a list of contributing sensor ids).
ScalarValue = Union[str, int, float, bool, Timestamp, GeoPoint]
AttributeValue = Union[ScalarValue, tuple]


_TYPE_TAGS = {
    str: "s",
    bool: "b",  # must precede int: bool is a subclass of int
    int: "i",
    float: "f",
    Timestamp: "t",
    GeoPoint: "g",
}


def _encode_scalar(value: ScalarValue) -> str:
    """Encode a single scalar with a type tag so 1, 1.0 and "1" differ."""
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, Timestamp):
        return f"t:{value.seconds!r}"
    if isinstance(value, GeoPoint):
        return f"g:{value.latitude!r},{value.longitude!r}"
    raise ConfigurationError(f"unsupported attribute value type: {type(value)!r}")


def canonical_encode(value: AttributeValue) -> str:
    """Return a canonical, type-tagged text encoding of an attribute value.

    The canonical encoding is what gets hashed into a provenance digest
    (:class:`repro.core.provenance.PName`); two values encode identically
    iff they are the same value of the same type.
    """
    if isinstance(value, tuple):
        inner = ";".join(_encode_scalar(item) for item in value)
        return f"l:[{inner}]"
    return _encode_scalar(value)


def coerce_value(raw: object) -> AttributeValue:
    """Coerce a raw Python object into a supported attribute value.

    Lists and tuples of scalars become tuples; datetimes become
    :class:`Timestamp`; unsupported types raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if isinstance(raw, (str, bool, int, float, Timestamp, GeoPoint)):
        return raw
    if isinstance(raw, datetime):
        return Timestamp.from_datetime(raw)
    if isinstance(raw, (list, tuple)):
        coerced = []
        for item in raw:
            item = coerce_value(item)
            if isinstance(item, tuple):
                raise ConfigurationError("nested lists are not supported in attribute values")
            coerced.append(item)
        return tuple(coerced)
    raise ConfigurationError(f"unsupported attribute value: {raw!r} ({type(raw).__name__})")


def values_equal(left: AttributeValue, right: AttributeValue) -> bool:
    """Strict equality used by the index: same type tag and same value."""
    return canonical_encode(left) == canonical_encode(right)


def compare_values(left: AttributeValue, right: AttributeValue) -> int:
    """Three-way comparison for *order-compatible* values.

    Returns -1, 0 or 1.  Raises :class:`~repro.errors.ConfigurationError`
    when the two values are not comparable (e.g. a string vs a number),
    because silently ordering across types would make range queries
    return nonsense.
    """
    left_key = _ordering_key(left)
    right_key = _ordering_key(right)
    if left_key[0] != right_key[0]:
        raise ConfigurationError(
            f"cannot order values of different kinds: {left!r} vs {right!r}"
        )
    if left_key < right_key:
        return -1
    if left_key > right_key:
        return 1
    return 0


def _ordering_key(value: AttributeValue):
    if isinstance(value, bool):
        return ("num", float(int(value)))
    if isinstance(value, (int, float)):
        return ("num", float(value))
    if isinstance(value, Timestamp):
        return ("num", float(value.seconds))
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, GeoPoint):
        return ("geo", (value.latitude, value.longitude))
    if isinstance(value, tuple):
        return ("list", tuple(_ordering_key(v) for v in value))
    raise ConfigurationError(f"unsupported attribute value type: {type(value)!r}")


def value_matches(value: AttributeValue, candidates: Iterable[AttributeValue]) -> bool:
    """True when ``value`` equals any of ``candidates`` (strict equality)."""
    encoded = canonical_encode(value)
    return any(canonical_encode(candidate) == encoded for candidate in candidates)


def ensure_attribute_map(attributes: dict) -> dict:
    """Validate and coerce a raw ``{name: value}`` mapping.

    Keys must be non-empty strings; values are coerced via
    :func:`coerce_value`.  Returns a new dict and never mutates the
    input.
    """
    if not isinstance(attributes, dict):
        raise ConfigurationError("attributes must be a dict of name -> value")
    result = {}
    for name, raw in attributes.items():
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"attribute names must be non-empty strings, got {name!r}")
        result[name] = coerce_value(raw)
    return result


def merge_attribute_maps(maps: Sequence[dict]) -> dict:
    """Merge several attribute maps, later maps winning on conflicts."""
    merged: dict = {}
    for mapping in maps:
        merged.update(ensure_attribute_map(mapping))
    return merged
