"""The local Provenance-Aware Storage System (PASS).

Section V of the paper defines the four properties that distinguish a
PASS from other storage:

* **P1** -- provenance is treated as a first-class object,
* **P2** -- provenance can be queried,
* **P3** -- non-identical data items do not have identical provenance,
* **P4** -- provenance is not lost if ancestor objects are removed.

and states the first research goal: "construct a purely local PASS ...
just storing and indexing offers challenges; in particular, one needs
efficient support for transitive closure queries."

:class:`PassStore` is that local PASS.  It composes:

* a :class:`~repro.storage.backend.StorageBackend` holding provenance
  records and tuple-set payloads,
* an :class:`~repro.index.attribute_index.AttributeIndex`,
  :class:`~repro.index.temporal_index.TemporalIndex` and
  :class:`~repro.index.spatial_index.SpatialIndex` for multi-dimensional
  lookups,
* a :class:`~repro.core.graph.ProvenanceGraph` plus a pluggable
  :class:`~repro.core.closure.ClosureStrategy` for recursive queries,
* and the :mod:`repro.core.query` evaluation machinery.

The store is the building block of everything above it: the distributed
architecture models each run one or more PassStores at their simulated
sites, and the evaluation harness measures them through this interface.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.abstraction import AbstractedLineage, AbstractionEngine, AbstractionRule
from repro.core.attributes import GeoPoint, Timestamp
from repro.core.closure import ClosureStrategy, LabelledClosure, make_closure
from repro.core.graph import ProvenanceGraph
from repro.core.provenance import Annotation, PName, ProvenanceRecord
from repro.core.query import LineageOracle, Predicate, Query
from repro.core.tupleset import SensorReading, TupleSet
from repro.errors import (
    DuplicateProvenanceError,
    UnknownEntityError,
)
from repro.index.attribute_index import AttributeIndex
from repro.obs import trace
from repro.index.spatial_index import SpatialIndex
from repro.index.temporal_index import TemporalIndex
from repro.query.executor import execute as _execute_plan
from repro.query.explain import Explain
from repro.query.feedback import FeedbackCollector
from repro.query.planner import QueryPlanner
from repro.query.statistics import Statistics
from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend

__all__ = ["PassStore", "StoreStatistics"]


class StoreStatistics:
    """Counters the evaluation harness reads off a store.

    Accounting rules (kept honest by the planner's executor):

    * ``records_scanned`` -- records materialized and evaluated to
      answer queries (index-served candidates included),
    * ``index_hits`` -- index *probes* executed, each counted exactly
      once; probes whose results are discarded are never charged,
    * ``full_scans`` -- queries that fell back to scanning every record,
    * ``plan_cache_hits`` -- queries whose predicate shape was already
      analysed by the planner.
    """

    def __init__(self) -> None:
        self.ingested = 0
        self.queries = 0
        self.lineage_queries = 0
        self.records_scanned = 0
        self.index_hits = 0
        self.full_scans = 0
        self.plan_cache_hits = 0

    def snapshot(self) -> dict:
        """The counters as a plain dict."""
        return {
            "ingested": self.ingested,
            "queries": self.queries,
            "lineage_queries": self.lineage_queries,
            "records_scanned": self.records_scanned,
            "index_hits": self.index_hits,
            "full_scans": self.full_scans,
            "plan_cache_hits": self.plan_cache_hits,
        }


class PassStore(LineageOracle):
    """A local provenance-aware store for sensor tuple sets.

    Parameters
    ----------
    backend:
        Where records and payloads live (default: in-memory).
    closure:
        Transitive-closure strategy, by instance or by name
        (``"naive"`` / ``"memoized"`` / ``"labelled"`` / ``"interval"``).
        Default is the labelled strategy; the interval strategy
        (:mod:`repro.lineage`) scales to much deeper/larger lineage.
    indexed_attributes:
        Restrict the attribute index to these names (``None`` = all).
    site:
        Optional site name, used when the store is embedded in a
        distributed architecture model.
    """

    def __init__(
        self,
        backend: Optional[StorageBackend] = None,
        closure: ClosureStrategy | str = "labelled",
        indexed_attributes: Optional[Iterable[str]] = None,
        site: str = "local",
    ) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.graph = ProvenanceGraph()
        if isinstance(closure, str):
            self.closure = make_closure(closure, self.graph)
        else:
            # Never adopt a caller-supplied strategy instance directly:
            # rebinding its graph would corrupt any other store sharing it.
            self.closure = closure.for_graph(self.graph)
        self.attribute_index = AttributeIndex(indexed_attributes)
        self.temporal_index = TemporalIndex()
        self.spatial_index = SpatialIndex()
        self.site = site
        self.stats = StoreStatistics()
        self.statistics = Statistics(
            self.attribute_index, self.temporal_index, self.spatial_index
        )
        # The DAG-shape collector the statistics own (repro.core stays
        # import-independent of repro.lineage; see make_closure).
        self.graph_stats = self.statistics.graph
        self.planner = QueryPlanner(self)
        # The estimated-vs-actual feedback loop: drift-based plan
        # invalidation, statistics refresh scheduling, closure-strategy
        # advice and the hot-key result cache (repro.query.feedback).
        self.feedback = FeedbackCollector(self)
        self._abstraction_rules: List[AbstractionRule] = []
        # Post-commit ingest observers (the repro.stream engine hooks in
        # here).  Hooks fire strictly after the backend write, the graph
        # and closure edges, every index, and the statistics collector
        # have all committed -- an observer that turns around and queries
        # the store sees the new record fully ingested, never half-way.
        self._ingest_hooks: List[Callable[[PName, ProvenanceRecord], None]] = []
        # What happened to the persisted closure labelling on open; the
        # sharded restore path overwrites this with its adoption report.
        self._closure_restore_report = {
            "mode": "none",
            "shards": self.backend.shard_count(),
            "adopted": 0,
            "stale": [],
            "reason": "no restore attempted",
        }
        # Rebuild in-memory structures if the backend already has records
        # (e.g. a SQLite file reopened after a crash).
        self._rebuild_from_backend()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, tuple_set: TupleSet) -> PName:
        """Store a tuple set: its payload, its provenance, and all indexes.

        Enforces PASS property P3: if a record with the same PName is
        already stored, the tuple set being ingested must be the *same*
        data set; re-ingesting it is idempotent, but a different data set
        claiming identical provenance is rejected.
        """
        record = tuple_set.provenance
        pname = record.pname()
        payload = self._encode_readings(tuple_set.readings)
        existing = self.backend.get_payload(pname)
        if self.backend.has_record(pname):
            if existing is not None and existing != payload:
                raise DuplicateProvenanceError(
                    f"non-identical data offered under identical provenance {pname}"
                )
            # Idempotent re-ingest of the same data set.
            if existing is None:
                self.backend.put_payload(pname, payload)
            return pname
        pname = self._register(record, payload)
        self._fire_ingest_hooks(pname, record)
        return pname

    def ingest_record(self, record: ProvenanceRecord) -> PName:
        """Store a provenance record without any payload (metadata only).

        Useful for registering ancestors known only by provenance (e.g.
        records received from another site).
        """
        pname = record.pname()
        if self.backend.has_record(pname):
            return pname
        pname = self._register(record, None)
        self._fire_ingest_hooks(pname, record)
        return pname

    def ingest_many(self, tuple_sets: Sequence[TupleSet]) -> List[PName]:
        """Batched :meth:`ingest`: one backend batch write for the fresh records.

        Semantically identical to ingesting each tuple set in turn
        (including P3 duplicate checks, within the batch as well as
        against stored data), but the backend sees the fresh records as
        one :meth:`~repro.storage.backend.StorageBackend.put_batch` --
        on durable backends that is a single transaction, which is what
        makes the batched publish path measurably cheaper per tuple set.
        """
        pnames: List[PName] = []
        fresh: List[Tuple[PName, ProvenanceRecord, bytes]] = []
        batch_payloads: Dict[str, bytes] = {}
        for tuple_set in tuple_sets:
            record = tuple_set.provenance
            pname = record.pname()
            payload = self._encode_readings(tuple_set.readings)
            if pname.digest in batch_payloads or self.backend.has_record(pname):
                known = batch_payloads.get(pname.digest)
                if known is None:
                    known = self.backend.get_payload(pname)
                if known is not None and known != payload:
                    raise DuplicateProvenanceError(
                        f"non-identical data offered under identical provenance {pname}"
                    )
                if known is None:
                    # Record known without payload (metadata-only ingest):
                    # idempotently attach the data now, as ingest() would.
                    self.backend.put_payload(pname, payload)
                    batch_payloads[pname.digest] = payload
                pnames.append(pname)
                continue
            batch_payloads[pname.digest] = payload
            fresh.append((pname, record, payload))
            pnames.append(pname)
        with trace.span("storage.put_batch", attrs={"records": len(fresh)}):
            self.backend.put_batch([(record, payload) for _, record, payload in fresh])
        for pname, record, _ in fresh:
            self._index_record(pname, record)
        # Hooks fire only after the *whole* batch (backend transaction and
        # every record's indexes/graph edges) has committed, so a hook that
        # queries the store mid-batch cannot observe a torn batch either.
        for pname, record, _ in fresh:
            self._fire_ingest_hooks(pname, record)
        return pnames

    def _register(self, record: ProvenanceRecord, payload: Optional[bytes]) -> PName:
        pname = record.pname()
        self.backend.put_record(record)
        if payload is not None:
            self.backend.put_payload(pname, payload)
        self._index_record(pname, record)
        return pname

    def _index_record(self, pname: PName, record: ProvenanceRecord) -> None:
        """Graph, closure and index maintenance for a newly stored record."""
        # P2: provenance is queryable, including recursively.
        self.closure.add_node(pname)
        for ancestor in record.ancestors:
            self.closure.add_node(ancestor)
            self.closure.add_edge(pname, ancestor)

        self._maintain_indexes(pname, record)
        self.stats.ingested += 1

    def _maintain_indexes(self, pname: PName, record: ProvenanceRecord) -> None:
        """Multi-dimensional index + statistics maintenance for one record."""
        self.attribute_index.add(pname, record)
        start = record.get("window_start")
        end = record.get("window_end")
        if isinstance(start, Timestamp) and isinstance(end, Timestamp):
            self.temporal_index.add(pname, start, end)
        location = record.get("location")
        if isinstance(location, GeoPoint):
            self.spatial_index.add(pname, location)
        self.statistics.observe(record)
        self.graph_stats.observe(pname, record.ancestors)

    # ------------------------------------------------------------------
    # Post-commit ingest hooks (the repro.stream notification path)
    # ------------------------------------------------------------------
    def add_ingest_hook(self, hook: Callable[[PName, ProvenanceRecord], None]) -> None:
        """Register an observer called after each *fresh* record commits.

        The hook runs strictly post-commit: backend, provenance graph,
        closure, all indexes and statistics are already updated when it
        fires, so the hook may query the store.  Idempotent re-ingests
        of already-stored records do not fire (nothing new landed).
        """
        self._ingest_hooks.append(hook)

    def remove_ingest_hook(self, hook: Callable[[PName, ProvenanceRecord], None]) -> None:
        """Unregister a previously added ingest hook (missing hooks are ignored)."""
        try:
            self._ingest_hooks.remove(hook)
        except ValueError:
            pass

    def _fire_ingest_hooks(self, pname: PName, record: ProvenanceRecord) -> None:
        # Feedback first: the result cache must be invalidated before
        # any hook (e.g. a stream subscription) turns around and queries
        # the store post-commit.
        self.feedback.on_ingest(pname, record)
        for hook in list(self._ingest_hooks):
            hook(pname, record)
        self._maybe_adapt_closure()

    def _maybe_adapt_closure(self) -> None:
        """Amortized DAG-shape check: switch ``labelled <-> interval``
        through the same rebuild plumbing the daemon's async job uses.

        Sharded backends are exempt -- their partitioned checkpoint
        format is interval-only, so the default must stand.
        """
        if not self.feedback.closure_check_due():
            return
        if self.backend.shard_count() > 1:
            return
        advised = self.feedback.advise_closure(self.closure.name)
        if advised is not None and advised != self.closure.name:
            self.rebuild_closure_index(strategy=advised)
            self.feedback.note_closure_switch()

    # ------------------------------------------------------------------
    # Basic retrieval
    # ------------------------------------------------------------------
    def __contains__(self, pname: PName) -> bool:
        return self.backend.has_record(pname)

    def __len__(self) -> int:
        return self.backend.record_count()

    def get_record(self, pname: PName) -> ProvenanceRecord:
        """Fetch the provenance record named by ``pname``."""
        record = self.backend.get_record(pname)
        if record is None:
            raise UnknownEntityError(f"unknown data set {pname}")
        return record

    def get_readings(self, pname: PName) -> List[SensorReading]:
        """Fetch the readings of a tuple set; empty if data was removed."""
        payload = self.backend.get_payload(pname)
        if payload is None:
            if not self.backend.has_record(pname):
                raise UnknownEntityError(f"unknown data set {pname}")
            return []
        return self._decode_readings(payload)

    def get_tuple_set(self, pname: PName) -> TupleSet:
        """Reassemble a full tuple set (readings + provenance)."""
        return TupleSet(self.get_readings(pname), self.get_record(pname))

    def pnames(self) -> List[PName]:
        """Every PName known to the store."""
        return [pname for pname, _ in self.backend.iter_records()]

    # ------------------------------------------------------------------
    # Removal (PASS property P4)
    # ------------------------------------------------------------------
    def remove_data(self, pname: PName) -> None:
        """Remove a data set's readings while retaining its provenance.

        Afterwards the record still answers attribute and lineage
        queries, still appears in ancestor/descendant sets, and
        :meth:`is_removed` reports True -- provenance is not lost when
        ancestor objects are removed.
        """
        if not self.backend.has_record(pname):
            raise UnknownEntityError(f"unknown data set {pname}")
        self.backend.delete_payload(pname)
        self.backend.mark_removed(pname)
        if pname in self.graph:
            self.graph.mark_removed(pname)
        # Cached results may pre-date the removal (include_removed=False
        # answers change); anchors can't see removals, so drop them all.
        self.feedback.invalidate_all()

    def is_removed(self, pname: PName) -> bool:
        """True when the data set's readings were removed."""
        return self.backend.is_removed(pname)

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------
    def annotate(self, pname: PName, annotation: Annotation) -> None:
        """Attach an annotation to a stored data set and index it."""
        record = self.get_record(pname)
        record.annotate(annotation)
        self.backend.put_record(record)
        self.attribute_index.add_value(pname, f"annotation:{annotation.key}", annotation.value)
        # Annotation mutates a stored record in place; cached result
        # pairs may alias it, so drop them all (rare administrative op).
        self.feedback.invalidate_all()

    # ------------------------------------------------------------------
    # Queries (PASS property P2)
    # ------------------------------------------------------------------
    def query(self, query: Query | Predicate) -> List[PName]:
        """Execute a query and return matching PNames.

        A bare predicate is wrapped in a default :class:`Query`.
        Execution goes through the cost-based planner
        (:mod:`repro.query`): the predicate is normalized, the cheapest
        index access path (or a full scan) generates candidates, and the
        full predicate is evaluated on the survivors.
        """
        pairs, _ = self.query_explain(query)
        return [pname for pname, _ in pairs]

    def query_records(self, query: Query | Predicate) -> List[Tuple[PName, ProvenanceRecord]]:
        """Like :meth:`query` but returns ``(PName, record)`` pairs.

        The pairs come straight from the executor's candidate
        materialization -- records are read from the backend once, not
        re-fetched per result.
        """
        pairs, _ = self.query_explain(query)
        return pairs

    def query_explain(
        self, query: Query | Predicate, force_full_scan: bool = False
    ) -> Tuple[List[Tuple[PName, ProvenanceRecord]], Explain]:
        """Planned execution returning ``(pairs, Explain)``.

        ``force_full_scan`` bypasses the planner's path choice (parity
        tests and benchmark baselines use it).
        """
        if isinstance(query, Predicate):
            query = Query(predicate=query)
        self.stats.queries += 1
        if query.requires_lineage:
            self.stats.lineage_queries += 1
        return _execute_plan(self, query, force_full_scan=force_full_scan)

    def explain(self, query: Query | Predicate) -> Explain:
        """Execute ``query`` and report what the planner did.

        The query genuinely runs (estimated *and* actual row counts are
        reported); use :meth:`query_explain` to also keep the results.
        """
        _, explain = self.query_explain(query)
        return explain

    def lookup_attribute(self, name: str, value) -> List[PName]:
        """Direct equality lookup through the attribute index."""
        self.stats.queries += 1
        hits = self.attribute_index.lookup(name, value)
        # One probe, counted once; the hits are materialized for the
        # caller, so they count as scanned records.
        self.stats.index_hits += 1
        self.stats.records_scanned += len(hits)
        return sorted(hits, key=lambda p: p.digest)

    # ------------------------------------------------------------------
    # Lineage queries (transitive closure)
    # ------------------------------------------------------------------
    def is_ancestor(self, ancestor: PName, descendant: PName) -> bool:
        """LineageOracle interface: is ``descendant`` derived from ``ancestor``?"""
        if ancestor not in self.graph or descendant not in self.graph:
            return False
        return self.closure.reachable(ancestor, descendant)

    def ancestors(self, pname: PName) -> Set[PName]:
        """All data sets ``pname`` was transitively derived from."""
        self.stats.lineage_queries += 1
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown data set {pname}")
        with trace.span("closure.ancestors", attrs={"focus": pname.short}):
            return self.closure.ancestors(pname)

    def descendants(self, pname: PName) -> Set[PName]:
        """All data sets transitively derived from ``pname`` (the taint set)."""
        self.stats.lineage_queries += 1
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown data set {pname}")
        with trace.span("closure.descendants", attrs={"focus": pname.short}):
            return self.closure.descendants(pname)

    def raw_sources(self, pname: PName) -> Set[PName]:
        """The raw (underived) data sets at the bottom of ``pname``'s lineage."""
        self.stats.lineage_queries += 1
        return self.graph.raw_sources(pname)

    def derivation_path(self, descendant: PName, ancestor: PName) -> Optional[List[PName]]:
        """One derivation path between two data sets ("what do I need to reproduce this")."""
        self.stats.lineage_queries += 1
        return self.graph.path(descendant, ancestor)

    # ------------------------------------------------------------------
    # Abstraction (Section V)
    # ------------------------------------------------------------------
    def add_abstraction_rule(self, rule: AbstractionRule) -> None:
        """Register a provenance-abstraction rule used by :meth:`report_lineage`."""
        self._abstraction_rules.append(rule)

    def report_lineage(
        self, pname: PName, max_depth: Optional[int] = None
    ) -> AbstractedLineage:
        """Report the ancestry of ``pname`` with abstraction rules applied."""
        engine = AbstractionEngine(
            self.graph,
            resolver=lambda p: self.backend.get_record(p),
            rules=self._abstraction_rules,
        )
        return engine.report(pname, max_depth=max_depth)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def verify_invariants(self) -> List[str]:
        """Check the four PASS properties; return a list of violations (empty = good).

        Used by tests, the property-based suite and experiment E13.
        """
        violations: List[str] = []
        seen_digests: Dict[str, PName] = {}
        for pname, record in self.backend.iter_records():
            # P1/P3: identity is the provenance digest and digests are unique
            # per stored record by construction; verify record round-trips.
            if record.pname().digest != pname.digest:
                violations.append(f"record stored under wrong PName: {pname}")
            if pname.digest in seen_digests:
                violations.append(f"duplicate PName in backend: {pname}")
            seen_digests[pname.digest] = pname
            # P4: every ancestor referenced must still be present in the graph.
            for ancestor in record.ancestors:
                if ancestor not in self.graph:
                    violations.append(
                        f"ancestor {ancestor.short} of {pname.short} missing from graph"
                    )
        # P4 continued: removed data sets keep their records.
        for pname in self.backend.removed_pnames():
            if not self.backend.has_record(pname):
                violations.append(f"removed data set {pname.short} lost its provenance record")
        return violations

    def _rebuild_from_backend(self) -> None:
        for pname, record in self.backend.iter_records():
            self.closure.add_node(pname)
            for ancestor in record.ancestors:
                self.closure.add_node(ancestor)
                self.closure.add_edge(pname, ancestor)
            self._maintain_indexes(pname, record)
            if self.backend.is_removed(pname) and pname in self.graph:
                self.graph.mark_removed(pname)
        if len(self.graph):
            self._restore_closure_index()

    # ------------------------------------------------------------------
    # Closure-index persistence (repro.lineage)
    # ------------------------------------------------------------------
    def _closure_index_key(self) -> str:
        return f"closure:{self.closure.name}"

    def _restore_closure_index(self) -> bool:
        """Adopt a persisted reachability labelling, if it still matches.

        Called after a backend rebuild: the graph has been reconstructed
        from the records, so the snapshot's structural fingerprint can
        be checked against reality.  Any mismatch (different strategy,
        stale snapshot, corrupt blob) falls back to the strategy's own
        lazy rebuild -- restoring is an optimization, never a must.

        On a sharded backend the labelling is checkpointed per shard
        (:mod:`repro.lineage.partition`): shards whose records did not
        change are adopted as-is, and additions-only drift is caught up
        incrementally instead of triggering a global recompute.
        """
        if self.backend.shard_count() > 1:
            from repro.lineage.partition import restore_partitioned

            report = restore_partitioned(self)
            self._closure_restore_report = report
            return report["mode"] in ("full", "partial")
        blob = self.backend.get_index_blob(self._closure_index_key())
        if blob is None:
            self._closure_restore_report["reason"] = "no persisted labelling"
            return False
        try:
            state = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._closure_restore_report["reason"] = "unreadable labelling blob"
            return False
        if not isinstance(state, dict):
            self._closure_restore_report["reason"] = "unreadable labelling blob"
            return False
        adopted = self.closure.restore(state, self.graph.fingerprint())
        if adopted:
            self._closure_restore_report = {
                "mode": "full",
                "shards": 1,
                "adopted": 1,
                "stale": [],
                "reason": None,
            }
        else:
            self._closure_restore_report["reason"] = "snapshot was refused by the strategy"
        return adopted

    def persist_closure_index(self) -> bool:
        """Snapshot the closure strategy's labelling into the backend.

        Returns True when something was persisted.  Strategies without
        persistable state (naive/memoized/labelled) and backends without
        blob storage both make this a no-op, so callers can invoke it
        unconditionally (the façade does, on ``close()``).
        """
        if self.backend.shard_count() > 1:
            from repro.lineage.partition import persist_partitioned

            return persist_partitioned(self)
        state = self.closure.snapshot(self.graph.fingerprint())
        if state is None:
            return False
        payload = json.dumps(state, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return self.backend.put_index_blob(self._closure_index_key(), payload)

    def rebuild_closure_index(self, strategy: Optional[str] = None) -> dict:
        """Force-rebuild the closure index and checkpoint it; returns stats.

        The administrative verb behind the daemon's async build job
        (and any operator who suspects a stale labelling): recompute the
        strategy's structures from the live graph, persist the fresh
        snapshot where the strategy supports it, and report the
        resulting :meth:`ClosureStrategy.index_stats` plus whether a
        checkpoint was written.

        ``strategy`` swaps the closure strategy *before* rebuilding --
        the adaptive engine's ``labelled <-> interval`` switch and the
        daemon's ``rebuild_index`` job both route through here, so a
        switch is observable the same way on every connect target.
        """
        switched_from = None
        if strategy is not None and strategy != self.closure.name:
            switched_from = self.closure.name
            self.closure = make_closure(strategy, self.graph)
        self.closure.rebuild()
        persisted = self.persist_closure_index()
        stats = dict(self.closure.index_stats())
        stats["persisted"] = persisted
        if switched_from is not None:
            stats["switched_from"] = switched_from
        return stats

    def refresh_statistics(self) -> dict:
        """Rebuild attribute statistics and the DAG-shape summary in place.

        The feedback loop schedules this on accumulated drift or ingest
        volume; operators can call it directly.  Returns the fresh
        statistics snapshot.
        """
        self.statistics.rebuild(record for _, record in self.backend.iter_records())
        self.graph_stats.recompute(self.graph)
        self.feedback.note_refreshed()
        return self.statistics.snapshot()

    def storage_snapshot(self) -> dict:
        """The frozen ``stats()["storage"]`` block for this store.

        The backend's storage profile (kind, shard layout, group-commit
        and parallel-scan counters) plus what happened to the persisted
        closure labelling when the store was opened.
        """
        snapshot = self.backend.storage_stats()
        snapshot["closure_restore"] = dict(self._closure_restore_report)
        return snapshot

    # ------------------------------------------------------------------
    # Reading (de)serialisation
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_readings(readings: Sequence[SensorReading]) -> bytes:
        payload = []
        for reading in readings:
            item = {
                "sensor_id": reading.sensor_id,
                "timestamp": reading.timestamp.seconds,
                "values": {
                    key: _reading_value_to_json(value) for key, value in reading.values.items()
                },
            }
            if reading.location is not None:
                item["location"] = [reading.location.latitude, reading.location.longitude]
            payload.append(item)
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def _decode_readings(payload: bytes) -> List[SensorReading]:
        items = json.loads(payload.decode("utf-8"))
        readings = []
        for item in items:
            location = None
            if "location" in item:
                location = GeoPoint(item["location"][0], item["location"][1])
            readings.append(
                SensorReading(
                    sensor_id=item["sensor_id"],
                    timestamp=Timestamp(item["timestamp"]),
                    values={
                        key: _reading_value_from_json(value)
                        for key, value in item["values"].items()
                    },
                    location=location,
                )
            )
        return readings


def _reading_value_to_json(value):
    if isinstance(value, Timestamp):
        return {"__type__": "timestamp", "seconds": value.seconds}
    if isinstance(value, GeoPoint):
        return {"__type__": "geopoint", "lat": value.latitude, "lon": value.longitude}
    if isinstance(value, tuple):
        return {"__type__": "list", "items": [_reading_value_to_json(item) for item in value]}
    return value


def _reading_value_from_json(value):
    if isinstance(value, dict):
        kind = value.get("__type__")
        if kind == "timestamp":
            return Timestamp(value["seconds"])
        if kind == "geopoint":
            return GeoPoint(value["lat"], value["lon"])
        if kind == "list":
            return tuple(_reading_value_from_json(item) for item in value["items"])
    return value


# ----------------------------------------------------------------------
# PassClient façade registration (repro.api)
# ----------------------------------------------------------------------
from repro.api.registry import ConnectionSpec, register_scheme  # noqa: E402


def _store_from_spec(
    spec: ConnectionSpec,
    backend: Optional[StorageBackend],
    default_closure: str = "labelled",
) -> PassStore:
    return PassStore(
        backend=backend,
        closure=spec.text("closure", default_closure),
        indexed_attributes=spec.listing("indexed"),
        site=spec.text("site", "local"),
    )


def _spec_shards(spec: ConnectionSpec) -> int:
    """The ``?shards=N`` connection parameter (1 = unsharded)."""
    return spec.integer("shards", 1)


@register_scheme("memory")
def _connect_memory(spec: ConnectionSpec):
    """``memory://`` -- a local in-memory PASS store (``?shards=N`` partitions it)."""
    from repro.api.client import LocalClient
    from repro.storage.factory import make_backend

    shards = _spec_shards(spec)
    backend = make_backend("memory", shards=shards)
    # A sharded store defaults to the interval strategy: its labelling is
    # the one the partitioned per-shard checkpoint format can persist.
    default_closure = "interval" if shards > 1 else "labelled"
    return LocalClient(_store_from_spec(spec, backend, default_closure))


@register_scheme("sqlite")
def _connect_sqlite(spec: ConnectionSpec):
    """``sqlite:///pass.db`` -- a local PASS over a durable SQLite backend.

    ``?shards=N`` digest-partitions the database across N SQLite files
    (``pass.db.shard00`` ... ``pass.db.shard0{N-1}``) with group commit
    and parallel scans; reopen must use the same N.
    """
    from repro.api.client import LocalClient
    from repro.storage.factory import make_backend

    shards = _spec_shards(spec)
    backend = make_backend("sqlite", path=spec.database_path(), shards=shards)
    default_closure = "interval" if shards > 1 else "labelled"
    return LocalClient(_store_from_spec(spec, backend, default_closure))
