"""Sensor readings and tuple sets: the unit of indexing.

Section II of the paper: indexing every individual sensor reading is
"infeasible, due to the sheer number of readings, and also not
necessarily useful"; the right granularity is the *tuple set*, "a
collection of readings grouped by some property, typically time".

This module provides:

* :class:`SensorReading` -- a single reading (tuple) with a timestamp, a
  value payload, the producing sensor id and an optional location.
* :class:`TupleSet` -- an ordered collection of readings plus the
  :class:`~repro.core.provenance.ProvenanceRecord` that names it.
* :class:`TupleSetWindower` -- groups a stream of readings into tuple
  sets by fixed time window (the "all the readings of a particular type
  over the span of one hour or one minute" example from the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.core.attributes import AttributeValue, GeoPoint, Timestamp, ensure_attribute_map
from repro.core.provenance import Agent, PName, ProvenanceRecord
from repro.errors import ProvenanceError

__all__ = ["SensorReading", "TupleSet", "TupleSetWindower"]


@dataclass(frozen=True)
class SensorReading:
    """One sensor reading (a tuple).

    Attributes
    ----------
    sensor_id:
        Identifier of the physical (simulated) sensor that produced it.
    timestamp:
        When the reading was taken.
    values:
        The measured quantities, e.g. ``{"speed_kph": 42.0}`` or
        ``{"heart_rate": 88, "spo2": 0.97}``.
    location:
        Where the reading was taken, when known.
    """

    sensor_id: str
    timestamp: Timestamp
    values: Mapping[str, AttributeValue] = field(default_factory=dict)
    location: Optional[GeoPoint] = None

    def __post_init__(self) -> None:
        if not self.sensor_id:
            raise ProvenanceError("sensor_id must be non-empty")
        if not isinstance(self.timestamp, Timestamp):
            raise ProvenanceError("timestamp must be a Timestamp")
        object.__setattr__(self, "values", dict(ensure_attribute_map(dict(self.values))))

    def value(self, name: str, default=None):
        """Return one measured quantity by name."""
        return self.values.get(name, default)

    def size_bytes(self) -> int:
        """Rough serialised size, used for network/storage accounting."""
        base = 16 + len(self.sensor_id) + 8  # id + timestamp
        for key, val in self.values.items():
            base += len(key) + 12
        if self.location is not None:
            base += 16
        return base


class TupleSet:
    """A named collection of sensor readings.

    A tuple set couples the readings themselves with the
    :class:`ProvenanceRecord` that describes -- and *names* -- them.  The
    record's :class:`~repro.core.provenance.PName` is the identity used
    by every index and architecture model in the library.
    """

    __slots__ = ("_readings", "_provenance")

    def __init__(
        self,
        readings: Sequence[SensorReading],
        provenance: ProvenanceRecord,
    ) -> None:
        if not isinstance(provenance, ProvenanceRecord):
            raise ProvenanceError("a TupleSet requires a ProvenanceRecord")
        self._readings: List[SensorReading] = list(readings)
        for reading in self._readings:
            if not isinstance(reading, SensorReading):
                raise ProvenanceError(f"expected SensorReading, got {reading!r}")
        self._provenance = provenance

    # ------------------------------------------------------------------
    # Identity and provenance
    # ------------------------------------------------------------------
    @property
    def provenance(self) -> ProvenanceRecord:
        """The provenance record that names this tuple set."""
        return self._provenance

    @property
    def pname(self) -> PName:
        """Shorthand for ``self.provenance.pname()``."""
        return self._provenance.pname()

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    @property
    def readings(self) -> List[SensorReading]:
        """A copy of the readings in this tuple set."""
        return list(self._readings)

    def __len__(self) -> int:
        return len(self._readings)

    def __iter__(self) -> Iterator[SensorReading]:
        return iter(self._readings)

    def is_empty(self) -> bool:
        """True when the tuple set holds no readings (metadata-only sets)."""
        return not self._readings

    def time_span(self) -> Optional[tuple]:
        """(earliest, latest) timestamps of the readings, or None if empty."""
        if not self._readings:
            return None
        seconds = [reading.timestamp.seconds for reading in self._readings]
        return (Timestamp(min(seconds)), Timestamp(max(seconds)))

    def sensors(self) -> List[str]:
        """Sorted list of distinct sensor ids contributing readings."""
        return sorted({reading.sensor_id for reading in self._readings})

    def size_bytes(self) -> int:
        """Approximate serialised size of the readings (not the provenance)."""
        return sum(reading.size_bytes() for reading in self._readings)

    def centroid(self) -> Optional[GeoPoint]:
        """Mean location of located readings, or None when none carry one."""
        located = [reading.location for reading in self._readings if reading.location]
        if not located:
            return None
        lat = sum(point.latitude for point in located) / len(located)
        lon = sum(point.longitude for point in located) / len(located)
        return GeoPoint(lat, lon)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def derive(
        self,
        readings: Sequence[SensorReading],
        attributes: Mapping[str, AttributeValue],
        agent: Optional[Agent] = None,
    ) -> "TupleSet":
        """Create a tuple set derived from this one.

        The new set's provenance lists this set's PName as an ancestor
        and the transforming ``agent``; this is how pipeline operators
        build lineage chains.
        """
        derived_record = self._provenance.derive(attributes, agent=agent)
        return TupleSet(readings, derived_record)

    def summary(self) -> Dict[str, object]:
        """A small dict of facts used by reports and examples."""
        span = self.time_span()
        return {
            "pname": self.pname.short,
            "readings": len(self._readings),
            "sensors": len(self.sensors()),
            "bytes": self.size_bytes(),
            "start": span[0].seconds if span else None,
            "end": span[1].seconds if span else None,
            "raw": self._provenance.is_raw(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TupleSet({self.pname.short}, {len(self._readings)} readings)"


class TupleSetWindower:
    """Groups a stream of readings into fixed-duration tuple sets.

    Parameters
    ----------
    window_seconds:
        Width of each time window.
    base_attributes:
        Attributes stamped on every produced tuple set (sensor network
        name, domain, owner, location ...).
    agent:
        The agent recorded as the producer (usually the sensor network
        itself, e.g. ``Agent("sensor-network", "congestion-zone", "v2")``).
    attribute_fn:
        Optional callable ``(window_start, readings) -> dict`` adding
        per-window attributes (e.g. the window's mean value).
    """

    def __init__(
        self,
        window_seconds: float,
        base_attributes: Mapping[str, AttributeValue],
        agent: Optional[Agent] = None,
        attribute_fn: Optional[Callable[[Timestamp, Sequence[SensorReading]], dict]] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ProvenanceError("window_seconds must be positive")
        self._window_seconds = float(window_seconds)
        self._base_attributes = ensure_attribute_map(dict(base_attributes))
        self._agent = agent
        self._attribute_fn = attribute_fn

    @property
    def window_seconds(self) -> float:
        """Width of each produced window, in seconds."""
        return self._window_seconds

    def window_start(self, timestamp: Timestamp) -> Timestamp:
        """The start of the window containing ``timestamp``."""
        index = int(timestamp.seconds // self._window_seconds)
        return Timestamp(index * self._window_seconds)

    def window(self, readings: Iterable[SensorReading]) -> List[TupleSet]:
        """Partition ``readings`` into tuple sets, one per non-empty window.

        Readings are bucketed by window start; each bucket becomes one
        tuple set whose provenance includes the window boundaries, the
        base attributes and any attributes computed by ``attribute_fn``.
        Windows are returned in chronological order.
        """
        buckets: Dict[float, List[SensorReading]] = {}
        for reading in readings:
            start = self.window_start(reading.timestamp)
            buckets.setdefault(start.seconds, []).append(reading)

        tuple_sets: List[TupleSet] = []
        for start_seconds in sorted(buckets):
            bucket = sorted(buckets[start_seconds], key=lambda r: r.timestamp.seconds)
            start = Timestamp(start_seconds)
            attributes = dict(self._base_attributes)
            attributes["window_start"] = start
            attributes["window_end"] = Timestamp(start_seconds + self._window_seconds)
            attributes["reading_count"] = len(bucket)
            if self._attribute_fn is not None:
                attributes.update(ensure_attribute_map(self._attribute_fn(start, bucket)))
            agents = (self._agent,) if self._agent is not None else ()
            record = ProvenanceRecord(attributes=attributes, agents=agents)
            tuple_sets.append(TupleSet(bucket, record))
        return tuple_sets
