"""Transitive-closure strategies for provenance queries.

Section II-B of the paper: "the indexing structures in sensor data
storage systems must provide for efficient lookups in many dimensions,
as well as efficient recursive or transitive queries.  Simple relational
or XML-based name-to-value schemes are not sufficient".

This module implements three strategies with different cost profiles and
a common interface, so the PASS store (and experiment E3) can swap them
(a fourth, the interval/chain reachability index, lives in
:mod:`repro.lineage` and registers itself here under ``"interval"``):

* :class:`NaiveClosure` -- answer each query with a fresh BFS over the
  provenance graph.  This is what a plain relational scheme would do
  with repeated self-joins: cheap to maintain, expensive to query on
  deep lineage.
* :class:`MemoizedClosure` -- BFS, but cache per-node ancestor sets and
  invalidate them when new edges arrive.  Good for read-heavy phases.
* :class:`LabelledClosure` -- maintain full ancestor/descendant label
  sets incrementally on edge insertion (a reachability-labelling
  approach).  Queries are set lookups; updates pay the propagation cost.

All strategies answer the same three questions: the ancestor set, the
descendant set, and pairwise reachability.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, Optional, Set

from repro.core.graph import ProvenanceGraph
from repro.core.provenance import PName
from repro.errors import UnknownEntityError

__all__ = [
    "ClosureStrategy",
    "NaiveClosure",
    "MemoizedClosure",
    "LabelledClosure",
    "make_closure",
    "register_strategy",
]


class ClosureStrategy(ABC):
    """Common interface of the transitive-closure strategies.

    Each strategy is attached to one :class:`ProvenanceGraph`; edges must
    be added through :meth:`add_edge` (or :meth:`add_record_edges`) so the
    strategy can maintain whatever auxiliary state it needs.  The
    ``operations`` counter tracks how many node visits / set updates the
    strategy performed, which is what experiment E3 reports.
    """

    #: short machine-readable name used by benchmarks and reports
    name = "abstract"
    #: True when :meth:`reachable` answers from materialized labels
    #: (O(labels) per probe) rather than walking the graph.  Consumers
    #: on hot paths -- the stream engine's per-ingest descendant-watch
    #: matching -- only route through the strategy when this holds.
    fast_reachability = False

    def __init__(self, graph: Optional[ProvenanceGraph] = None) -> None:
        self.graph = graph if graph is not None else ProvenanceGraph()
        self.operations = 0

    # -- maintenance ----------------------------------------------------
    def add_node(self, pname: PName) -> None:
        """Register a node with the underlying graph and the strategy."""
        self.graph.add_node(pname)

    def add_edge(self, child: PName, parent: PName) -> None:
        """Record a derivation edge (child derived from parent)."""
        self.graph.add_edge(child, parent)
        self._on_edge(child, parent)

    def reset_counters(self) -> None:
        """Zero the operation counter (benchmarks call this between phases)."""
        self.operations = 0

    def for_graph(self, graph: ProvenanceGraph) -> "ClosureStrategy":
        """A strategy of the same class bound to ``graph``.

        A strategy instance carries auxiliary state derived from *its*
        graph (caches, reachability labels), so a store never adopts a
        caller's instance directly -- rebinding ``.graph`` under an
        instance shared with another store would silently corrupt both.
        Instead the store asks for a sibling bound to its own graph.
        Subclasses whose constructor takes more than the graph must
        override this.
        """
        if self.graph is graph:
            return self
        return type(self)(graph)

    # -- queries ---------------------------------------------------------
    @abstractmethod
    def ancestors(self, pname: PName) -> Set[PName]:
        """All transitive ancestors of ``pname``."""

    @abstractmethod
    def descendants(self, pname: PName) -> Set[PName]:
        """All transitive descendants of ``pname``."""

    def reachable(self, ancestor: PName, descendant: PName) -> bool:
        """True when ``descendant`` was (transitively) derived from ``ancestor``."""
        return ancestor in self.ancestors(descendant)

    # -- planner estimates ------------------------------------------------
    def estimate_ancestors(self, pname: PName) -> Optional[int]:
        """Cheap ancestor-count estimate for the query planner, or ``None``.

        ``None`` means "this strategy cannot estimate without doing the
        query"; the planner then falls back to the store's graph
        statistics.  Strategies with materialized labels answer exactly.
        """
        return None

    def estimate_descendants(self, pname: PName) -> Optional[int]:
        """Cheap descendant-count estimate for the query planner, or ``None``."""
        return None

    # -- persistence -------------------------------------------------------
    def snapshot(self, fingerprint: Dict[str, int]) -> Optional[dict]:
        """A JSON-serialisable snapshot of the strategy's auxiliary state.

        ``fingerprint`` (from :meth:`ProvenanceGraph.fingerprint`) is
        embedded so :meth:`restore` can refuse a snapshot that does not
        match the graph it is being applied to.  ``None`` means the
        strategy has nothing worth persisting (the default).
        """
        return None

    def restore(self, state: dict, fingerprint: Dict[str, int]) -> bool:
        """Adopt a previously snapshotted state; True on success.

        Must be *safe to refuse*: on any mismatch (format version,
        fingerprint, strategy name) the method returns False and leaves
        the strategy in a state from which it can rebuild on its own
        (the versioned rebuild fallback).
        """
        return False

    def rebuild(self) -> None:
        """Recompute the strategy's auxiliary structures from the graph.

        The administrative "rebuild the index now" verb (exposed end to
        end as the daemon's async build job).  Strategies without
        materialized state have nothing to recompute, so the default is
        a no-op; strategies that cache (memoized) or label (interval)
        drop/refresh their structures here.
        """

    # -- reporting ---------------------------------------------------------
    def index_stats(self) -> dict:
        """Facts about the strategy's auxiliary structures (CLI / stats())."""
        return {"strategy": self.name, "operations": self.operations}

    # -- hooks -------------------------------------------------------------
    def _on_edge(self, child: PName, parent: PName) -> None:
        """Strategy-specific bookkeeping after an edge insertion."""


class NaiveClosure(ClosureStrategy):
    """Fresh BFS per query; no auxiliary state.

    This models the "simple relational name-to-value scheme" the paper
    says is not sufficient: every recursive query re-walks the lineage.
    """

    name = "naive"

    def ancestors(self, pname: PName) -> Set[PName]:
        return self._bfs(pname, up=True)

    def descendants(self, pname: PName) -> Set[PName]:
        return self._bfs(pname, up=False)

    def _bfs(self, pname: PName, up: bool) -> Set[PName]:
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown node {pname}")
        step = self.graph.parents if up else self.graph.children
        seen: Set[str] = set()
        frontier = deque([pname])
        while frontier:
            node = frontier.popleft()
            self.operations += 1
            for neighbour in step(node):
                if neighbour.digest not in seen:
                    seen.add(neighbour.digest)
                    frontier.append(neighbour)
        return {PName(d) for d in seen}


class MemoizedClosure(ClosureStrategy):
    """BFS with per-node result caching, invalidated on edge insertion.

    The cache maps a node to its full ancestor (or descendant) set.  A
    new edge ``child -> parent`` can only change the ancestor sets of
    ``child`` and its descendants, and the descendant sets of ``parent``
    and its ancestors, so only those entries are dropped.
    """

    name = "memoized"

    def __init__(self, graph: Optional[ProvenanceGraph] = None) -> None:
        super().__init__(graph)
        self._ancestor_cache: Dict[str, Set[str]] = {}
        self._descendant_cache: Dict[str, Set[str]] = {}

    def ancestors(self, pname: PName) -> Set[PName]:
        return {PName(d) for d in self._cached(pname, up=True)}

    def descendants(self, pname: PName) -> Set[PName]:
        return {PName(d) for d in self._cached(pname, up=False)}

    def rebuild(self) -> None:
        # Rebuilding a cache means starting it cold; entries repopulate
        # on demand against the current graph.
        self._ancestor_cache.clear()
        self._descendant_cache.clear()

    def _cached(self, pname: PName, up: bool) -> Set[str]:
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown node {pname}")
        cache = self._ancestor_cache if up else self._descendant_cache
        hit = cache.get(pname.digest)
        if hit is not None:
            self.operations += 1
            return hit
        step = self.graph.parents if up else self.graph.children
        seen: Set[str] = set()
        frontier = deque([pname])
        while frontier:
            node = frontier.popleft()
            self.operations += 1
            for neighbour in step(node):
                if neighbour.digest not in seen:
                    seen.add(neighbour.digest)
                    frontier.append(neighbour)
        cache[pname.digest] = seen
        return seen

    def estimate_ancestors(self, pname: PName) -> Optional[int]:
        hit = self._ancestor_cache.get(pname.digest)
        return None if hit is None else len(hit)

    def estimate_descendants(self, pname: PName) -> Optional[int]:
        hit = self._descendant_cache.get(pname.digest)
        return None if hit is None else len(hit)

    def _on_edge(self, child: PName, parent: PName) -> None:
        # Invalidate ancestor sets of the child and everything below it,
        # and descendant sets of the parent and everything above it.
        stale_down = {child.digest} | {p.digest for p in self.graph.descendants(child)}
        stale_up = {parent.digest} | {p.digest for p in self.graph.ancestors(parent)}
        for digest in stale_down:
            self._ancestor_cache.pop(digest, None)
        for digest in stale_up:
            self._descendant_cache.pop(digest, None)


class LabelledClosure(ClosureStrategy):
    """Maintain complete ancestor/descendant label sets incrementally.

    On inserting ``child -> parent`` the parent's ancestor label set
    (plus the parent itself) is added to the child and to every
    descendant of the child; symmetrically for descendant labels.
    Queries then cost a dictionary lookup.  This is the kind of
    structure the paper's research agenda asks for ("efficient support
    for transitive closure queries").
    """

    name = "labelled"
    fast_reachability = True

    def __init__(self, graph: Optional[ProvenanceGraph] = None) -> None:
        super().__init__(graph)
        self._ancestor_labels: Dict[str, Set[str]] = {}
        self._descendant_labels: Dict[str, Set[str]] = {}
        # If a pre-populated graph was supplied, build labels for it.
        for node in self.graph.nodes():
            self._ancestor_labels.setdefault(node.digest, set())
            self._descendant_labels.setdefault(node.digest, set())
        for child in self.graph.nodes():
            for parent in self.graph.parents(child):
                self._propagate(child.digest, parent.digest)

    def add_node(self, pname: PName) -> None:
        super().add_node(pname)
        self._ancestor_labels.setdefault(pname.digest, set())
        self._descendant_labels.setdefault(pname.digest, set())

    def ancestors(self, pname: PName) -> Set[PName]:
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown node {pname}")
        self.operations += 1
        return {PName(d) for d in self._ancestor_labels.get(pname.digest, set())}

    def descendants(self, pname: PName) -> Set[PName]:
        if pname not in self.graph:
            raise UnknownEntityError(f"unknown node {pname}")
        self.operations += 1
        return {PName(d) for d in self._descendant_labels.get(pname.digest, set())}

    def reachable(self, ancestor: PName, descendant: PName) -> bool:
        if descendant not in self.graph or ancestor not in self.graph:
            raise UnknownEntityError("unknown node in reachability query")
        self.operations += 1
        return ancestor.digest in self._ancestor_labels.get(descendant.digest, set())

    def estimate_ancestors(self, pname: PName) -> Optional[int]:
        labels = self._ancestor_labels.get(pname.digest)
        return None if labels is None else len(labels)

    def estimate_descendants(self, pname: PName) -> Optional[int]:
        labels = self._descendant_labels.get(pname.digest)
        return None if labels is None else len(labels)

    def index_stats(self) -> dict:
        facts = super().index_stats()
        facts["label_entries"] = sum(len(s) for s in self._ancestor_labels.values()) + sum(
            len(s) for s in self._descendant_labels.values()
        )
        return facts

    def _on_edge(self, child: PName, parent: PName) -> None:
        self._ancestor_labels.setdefault(child.digest, set())
        self._descendant_labels.setdefault(child.digest, set())
        self._ancestor_labels.setdefault(parent.digest, set())
        self._descendant_labels.setdefault(parent.digest, set())
        self._propagate(child.digest, parent.digest)

    def _propagate(self, child: str, parent: str) -> None:
        new_ancestors = {parent} | self._ancestor_labels.get(parent, set())
        new_descendants = {child} | self._descendant_labels.get(child, set())
        # Nodes whose ancestor labels gain new_ancestors: child and all its
        # descendants.  Nodes whose descendant labels gain new_descendants:
        # parent and all its ancestors.
        for target in [child, *self._descendant_labels.get(child, set())]:
            before = len(self._ancestor_labels.setdefault(target, set()))
            self._ancestor_labels[target] |= new_ancestors
            self.operations += len(self._ancestor_labels[target]) - before + 1
        for target in [parent, *self._ancestor_labels.get(parent, set())]:
            before = len(self._descendant_labels.setdefault(target, set()))
            self._descendant_labels[target] |= new_descendants
            self.operations += len(self._descendant_labels[target]) - before + 1


_STRATEGIES = {
    NaiveClosure.name: NaiveClosure,
    MemoizedClosure.name: MemoizedClosure,
    LabelledClosure.name: LabelledClosure,
}


def register_strategy(cls):
    """Register a :class:`ClosureStrategy` subclass under its ``name``.

    Usable as a class decorator; :mod:`repro.lineage` registers the
    ``interval`` engine this way so the core layer never has to import
    the lineage package at module load.
    """
    _STRATEGIES[cls.name] = cls
    return cls


def make_closure(name: str, graph: Optional[ProvenanceGraph] = None) -> ClosureStrategy:
    """Instantiate a closure strategy by name.

    Shipped names: ``naive`` / ``memoized`` / ``labelled`` / ``interval``
    (the last provided by :mod:`repro.lineage`, loaded on demand).
    """
    factory = _STRATEGIES.get(name)
    if factory is None:
        # The interval engine registers itself on import; load it lazily
        # here so repro.core never imports repro.lineage at module load
        # (the reverse import -- interval subclassing ClosureStrategy --
        # is the one that must be eager).
        import repro.lineage  # noqa: F401

        factory = _STRATEGIES.get(name)
    if factory is None:
        raise UnknownEntityError(
            f"unknown closure strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        )
    return factory(graph)
