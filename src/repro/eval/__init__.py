"""Evaluation harness: criteria, scenarios, experiments E1-E14, reports."""

from repro.eval.criteria import CriteriaScores, LatencySample, f1_score, precision_recall
from repro.eval.harness import EXPERIMENTS, render_all, run_all, run_experiment
from repro.eval.report import format_experiment, format_many, format_table
from repro.eval.result import ExperimentResult
from repro.eval.scenario import (
    MODEL_NAMES,
    build_all_models,
    ground_truth_store,
    origin_site_for,
    publish_all,
    standard_topology,
)

__all__ = [
    "precision_recall",
    "f1_score",
    "LatencySample",
    "CriteriaScores",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "render_all",
    "format_table",
    "format_experiment",
    "format_many",
    "standard_topology",
    "build_all_models",
    "origin_site_for",
    "publish_all",
    "ground_truth_store",
    "MODEL_NAMES",
]
