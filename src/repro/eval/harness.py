"""The experiment registry: one entry per table the reproduction regenerates.

``EXPERIMENTS`` maps experiment ids (as listed in DESIGN.md) to the
functions that run them; :func:`run_experiment` and :func:`run_all` are
the entry points the benchmarks, tests and the ``EXPERIMENTS.md``
generator all share.

:func:`run_query_matrix` is the façade-era entry point: it drives the
same publish + query workload through any set of ``connect()`` targets
(local stores and architecture models alike) and tabulates answers and
costs, which is the paper's design-space comparison reduced to one
function call.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.api import connect
from repro.errors import UnknownEntityError, UnsupportedQueryError
from repro.eval.experiments_core import run_e1, run_e13, run_e14, run_e2, run_e3, run_e4
from repro.eval.experiments_distributed import (
    run_e10,
    run_e11,
    run_e12,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
)
from repro.eval.report import format_experiment, format_many
from repro.eval.result import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "render_all",
    "run_query_matrix",
    "run_simulation_matrix",
]

#: experiment id -> zero-argument callable producing its result
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (``"E1"`` ... ``"E14"``)."""
    try:
        runner = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise UnknownEntityError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all(ids: Optional[Iterable[str]] = None) -> List[ExperimentResult]:
    """Run several experiments (default: all of them, in numeric order)."""
    wanted = list(ids) if ids is not None else sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
    return [run_experiment(experiment_id) for experiment_id in wanted]


def render_all(ids: Optional[Iterable[str]] = None) -> str:
    """Run and render experiments as one text report."""
    return format_many(run_all(ids))


def run_query_matrix(
    urls: Sequence[str],
    tuple_sets: Sequence,
    queries: Mapping[str, object],
) -> List[Dict[str, object]]:
    """Publish one workload into several ``connect()`` targets and query them all.

    For each URL the returned row carries the publish cost of the whole
    batch (``publish_ms``/``publish_messages``) and, per named query,
    the match count and latency (or ``"unsupported"`` where the target
    refuses the query class, e.g. closure on soft state).  Query values
    may be anything :func:`repro.api.as_query` accepts -- ``Q`` DSL
    predicates, builders, or full ``Query`` objects.
    """
    rows: List[Dict[str, object]] = []
    for url in urls:
        with connect(url) as client:
            published = client.publish_many(tuple_sets)
            client.refresh()
            row: Dict[str, object] = {
                "target": url,
                "publish_ms": round(published.cost.latency_ms, 2),
                "publish_messages": published.cost.messages,
            }
            for label, query in queries.items():
                try:
                    answer = client.query(query)
                except UnsupportedQueryError:
                    row[label] = "unsupported"
                    row[f"{label}_ms"] = "unsupported"
                    continue
                row[label] = len(answer)
                row[f"{label}_ms"] = round(answer.cost.latency_ms, 2)
            rows.append(row)
    return rows


def run_simulation_matrix(
    urls: Sequence[str],
    tuple_sets: Sequence,
    *,
    clients: int = 8,
    config=None,
    schedule=None,
    think_ms: float = 0.0,
    sample_interval_ms=None,
    alert_rules=None,
) -> List[Dict[str, object]]:
    """Publish one workload into several targets under concurrent clients.

    The discrete-event counterpart of :func:`run_query_matrix`: for each
    architecture-model URL the workload is published by ``clients``
    closed-loop simulated clients, and the row reports the latency
    distribution (mean / p50 / p95 / p99), the hottest site's
    utilization, and failure/loss counters.  Local (store) targets have
    no simulated network and report ``"unsupported"``.

    ``sample_interval_ms`` turns on the virtual-clock time-series
    sampler (``repro.obs.timeseries``) inside each simulation, and
    ``alert_rules`` evaluates the same JSON rule file a live daemon
    accepts against the simulated series -- the row then also reports
    which rules ended the run firing (``alerts_firing``), so a
    deployment can be rejected *before* it exists.
    """
    from repro.sim.workload import simulate_publish_workload

    rows: List[Dict[str, object]] = []
    for url in urls:
        with connect(url) as client:
            model = getattr(client, "model", None)
            if model is None:
                rows.append({"target": url, "simulation": "unsupported (local store)"})
                continue
            report = simulate_publish_workload(
                model,
                tuple_sets,
                clients=clients,
                config=config,
                schedule=schedule,
                think_ms=think_ms,
                sample_interval_ms=sample_interval_ms,
                alert_rules=alert_rules,
            )
            summary = report.summary()
            busiest_site, busiest = max(
                report.sites.items(), key=lambda item: item[1]["utilization"]
            ) if report.sites else ("-", {"utilization": 0.0})
            rows.append(
                {
                    "target": url,
                    "clients": report.clients,
                    "ops": len(report.records),
                    "failed": report.failed(),
                    "mean_ms": summary["mean"],
                    "p50_ms": summary["p50"],
                    "p95_ms": summary["p95"],
                    "p99_ms": summary["p99"],
                    "busiest_site": busiest_site,
                    "busiest_utilization": busiest["utilization"],
                    "notifications_lost": report.notifications_lost,
                    "events": report.events,
                }
            )
            if report.alerts is not None:
                rows[-1]["alerts_firing"] = list(report.alerts.get("firing", []))
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    """``python -m repro.eval.harness [E1 E2 ...]`` prints the chosen tables."""
    import sys

    ids = sys.argv[1:] or None
    for result in run_all(ids):
        sys.stdout.write(format_experiment(result) + "\n\n")


if __name__ == "__main__":  # pragma: no cover
    main()
