"""The container every experiment returns.

An :class:`ExperimentResult` is a small, self-describing table: the
experiment id (matching DESIGN.md / EXPERIMENTS.md), the paper claim it
checks, column headers, data rows and free-form notes.  Benchmarks print
them; tests assert on their rows; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One experiment's regenerated table."""

    experiment_id: str
    title: str
    claim: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row; must match the header width."""
        row = list(values)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(self.headers)}"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[object]:
        """All values of one column (by header name)."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def find_row(self, **criteria: object) -> Optional[Dict[str, object]]:
        """First row matching every ``header=value`` criterion, as a dict."""
        for row in self.row_dicts():
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        return None
