"""The Section IV evaluation criteria as measurable quantities.

The paper names six criteria -- scalability, reliability, query result
quality, usability, speed, resource consumption -- and argues about them
qualitatively.  This module pins each to a number the harness can
actually produce:

* **speed** -- mean latency of attribute queries and of transitive
  closure queries (milliseconds of simulated network + processing time);
* **scalability** -- publish cost (messages and bytes per published
  tuple set) and, for the models with explicit capacity limits, the
  offered load at which they saturate;
* **resource consumption** -- total network bytes, split by operation
  kind;
* **query result quality** -- precision and recall against a ground
  truth oracle (a single local PASS holding everything);
* **reliability** -- whether data and provenance survive injected
  failures (crash recovery, dangling index links, lost replicas);
* **usability** -- which query classes the model supports at all
  (attribute, range/spatial, lineage), since a model that refuses
  transitive closure pushes that work back onto the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.provenance import PName
from repro.sim.stats import latency_summary, percentile

__all__ = [
    "precision_recall",
    "f1_score",
    "LatencySample",
    "CriteriaScores",
    "mean",
    "percentile",
    "latency_summary",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (keeps report code simple)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def precision_recall(
    returned: Iterable[PName], relevant: Iterable[PName]
) -> Tuple[float, float]:
    """Information-retrieval precision and recall (Section IV's definitions).

    Precision: fraction of returned results that are relevant.
    Recall: fraction of relevant results that were returned.
    Both are 1.0 when both sets are empty (a correct empty answer).
    """
    returned_set = {p.digest for p in returned}
    relevant_set = {p.digest for p in relevant}
    if not returned_set and not relevant_set:
        return 1.0, 1.0
    true_positives = len(returned_set & relevant_set)
    precision = true_positives / len(returned_set) if returned_set else 1.0
    recall = true_positives / len(relevant_set) if relevant_set else 1.0
    return precision, recall


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass
class LatencySample:
    """One measured operation."""

    latency_ms: float
    messages: int
    bytes: int


@dataclass
class CriteriaScores:
    """Everything measured for one architecture model on one workload."""

    model: str
    publish_samples: List[LatencySample] = field(default_factory=list)
    query_samples: List[LatencySample] = field(default_factory=list)
    lineage_samples: List[LatencySample] = field(default_factory=list)
    precision: float = 1.0
    recall: float = 1.0
    supports_lineage: bool = True
    supports_attribute_queries: bool = True
    placement_distance_km: Optional[float] = None
    reliability_notes: List[str] = field(default_factory=list)

    # -- derived metrics -------------------------------------------------------
    def publish_latency_ms(self) -> float:
        """Mean latency to publish one tuple set."""
        return mean([sample.latency_ms for sample in self.publish_samples])

    def publish_bytes(self) -> float:
        """Mean network bytes per published tuple set."""
        return mean([sample.bytes for sample in self.publish_samples])

    def publish_messages(self) -> float:
        """Mean messages per published tuple set."""
        return mean([sample.messages for sample in self.publish_samples])

    def query_latency_ms(self) -> float:
        """Mean latency of attribute queries."""
        return mean([sample.latency_ms for sample in self.query_samples])

    # -- latency distributions (p50/p95/p99 alongside the means) --------------
    def publish_latency_percentiles(self) -> Dict[str, float]:
        """Publish-latency distribution: count/mean/p50/p95/p99/max."""
        return latency_summary([sample.latency_ms for sample in self.publish_samples])

    def query_latency_percentiles(self) -> Dict[str, float]:
        """Attribute-query latency distribution: count/mean/p50/p95/p99/max."""
        return latency_summary([sample.latency_ms for sample in self.query_samples])

    def lineage_latency_percentiles(self) -> Optional[Dict[str, float]]:
        """Closure-latency distribution; None when the model refuses closure."""
        if not self.supports_lineage:
            return None
        return latency_summary([sample.latency_ms for sample in self.lineage_samples])

    def query_bytes(self) -> float:
        """Mean network bytes per attribute query."""
        return mean([sample.bytes for sample in self.query_samples])

    def lineage_latency_ms(self) -> Optional[float]:
        """Mean latency of closure queries; None when the model refuses them."""
        if not self.supports_lineage:
            return None
        return mean([sample.latency_ms for sample in self.lineage_samples])

    def f1(self) -> float:
        """Combined result-quality score."""
        return f1_score(self.precision, self.recall)

    def usability_score(self) -> int:
        """How many of the paper's query classes the model supports (0-2)."""
        return int(self.supports_attribute_queries) + int(self.supports_lineage)

    def as_row(self) -> Dict[str, object]:
        """Flatten to the row format the report tables use."""
        lineage = self.lineage_latency_ms()
        query_distribution = self.query_latency_percentiles()
        return {
            "model": self.model,
            "publish_ms": round(self.publish_latency_ms(), 3),
            "publish_msgs": round(self.publish_messages(), 2),
            "publish_bytes": round(self.publish_bytes(), 1),
            "query_ms": round(self.query_latency_ms(), 3),
            "query_p95_ms": query_distribution["p95"],
            "query_p99_ms": query_distribution["p99"],
            "closure_ms": round(lineage, 3) if lineage is not None else "unsupported",
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "placement_km": (
                round(self.placement_distance_km, 1)
                if self.placement_distance_km is not None
                else "-"
            ),
            "usability": self.usability_score(),
        }
