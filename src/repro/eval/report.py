"""Plain-text rendering of experiment results.

The paper's evaluation is a discussion, not charts; ours regenerates it
as tables.  This module renders :class:`~repro.eval.result.ExperimentResult`
objects as aligned ASCII tables suitable for terminals, EXPERIMENTS.md
and the benchmark output files.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.eval.result import ExperimentResult

__all__ = ["format_table", "format_experiment", "format_many"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render headers + rows as an aligned ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_experiment(result: ExperimentResult) -> str:
    """Render one experiment: title, claim, table, notes."""
    lines = [
        f"[{result.experiment_id}] {result.title}",
        f"claim: {result.claim}",
        "",
        format_table(result.headers, result.rows),
    ]
    for note in result.notes:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_many(results: Iterable[ExperimentResult]) -> str:
    """Render several experiments separated by rules."""
    blocks = [format_experiment(result) for result in results]
    separator = "\n\n" + "=" * 78 + "\n\n"
    return separator.join(blocks)
