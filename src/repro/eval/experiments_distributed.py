"""Experiments over the distributed architecture models (E5-E12).

These regenerate the Section IV design-space discussion quantitatively:
each architecture model is driven with the same synthetic sensor
workload over the same simulated topology, and its behaviour on the
criterion the paper singles out for it is measured.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import Timestamp
from repro.core.pass_store import PassStore
from repro.core.provenance import PName
from repro.core.query import And, AttributeEquals, AttributeRange, Query
from repro.distributed import (
    CentralizedWarehouse,
    DistributedHashTable,
    LocaleAwarePass,
    SoftStateIndex,
)
from repro.errors import CrashInjectedError, UnsupportedQueryError
from repro.eval.criteria import CriteriaScores, LatencySample, mean, precision_recall
from repro.eval.result import ExperimentResult
from repro.eval.scenario import (
    MODEL_NAMES,
    build_all_models,
    ground_truth_store,
    origin_site_for,
    publish_all,
    standard_topology,
)
from repro.sensors.workloads import CITY_CENTRES, TrafficWorkload, WeatherWorkload
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend
from repro.storage.wal import WriteAheadLog

__all__ = [
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "run_e12",
]


def _traffic_sets(cities=("london", "boston"), hours=2.0, stations=3, seed=21):
    workload = TrafficWorkload(seed=seed, cities=cities, stations_per_city=stations)
    raw, derived = workload.all_sets(hours=hours)
    return workload, raw, derived


# ----------------------------------------------------------------------
# E5 -- the centralized warehouse: fast but saturates; links can dangle
# ----------------------------------------------------------------------
def run_e5(hours: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="Centralized warehouse: update saturation and index/data decoupling",
        claim=(
            "A central index offers speed and simplicity but may not scale to the "
            "sensor update volume, and loosely coupled index links can break."
        ),
        headers=["measure", "setting", "value"],
    )
    topology = standard_topology()
    _, raw, derived = _traffic_sets(hours=hours)
    everything = raw + derived

    # Saturation sweep: publish latency as the offered update rate grows.
    for offered_rate in (500.0, 2000.0, 8000.0, 32000.0):
        model = CentralizedWarehouse(topology, warehouse_site="warehouse")
        model.set_offered_update_rate(offered_rate)
        samples = publish_all(model, everything, topology)
        latency = mean([sample[2] for sample in samples])
        result.add_row("publish latency (ms)", f"offered {int(offered_rate)}/s", round(latency, 2))

    # Query speed at the warehouse (the model's strength).
    model = CentralizedWarehouse(topology, warehouse_site="warehouse")
    publish_all(model, everything, topology)
    query = Query(AttributeEquals("city", "london"))
    answer = model.query(query, "london-site")
    result.add_row("query latency (ms)", "city=london from london", round(answer.latency_ms, 2))
    lineage = model.descendants(raw[0].pname, "london-site")
    result.add_row("closure latency (ms)", "descendants of one window", round(lineage.latency_ms, 2))

    # Index/data decoupling: break links and count dangling lookups.
    for fraction in (0.0, 0.05, 0.2):
        fresh = CentralizedWarehouse(topology, warehouse_site="warehouse")
        publish_all(fresh, everything, topology)
        fresh.break_links(fraction, rng=random.Random(4))
        dangling = 0
        probes = everything[:40]
        for tuple_set in probes:
            located = fresh.locate(tuple_set.pname, "boston-site")
            if "dangling link" in located.notes:
                dangling += 1
        result.add_row(
            "dangling locate answers", f"{int(fraction * 100)}% links broken", f"{dangling}/{len(probes)}"
        )
    result.notes.append(
        "Latency is flat until the offered update rate passes warehouse capacity "
        "(2000/s), then grows with the backlog; broken links surface directly as "
        "dangling locate answers because the index is only loosely coupled to the data."
    )
    return result


# ----------------------------------------------------------------------
# E6 -- distributed and federated databases on recursive queries
# ----------------------------------------------------------------------
def run_e6(hours: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="Distributed and federated databases: recursive query cost",
        claim=(
            "Distributed databases have limited ability to process recursive "
            "queries; federated access is slower because components are disjoint."
        ),
        headers=["model", "operation", "latency_ms", "messages", "closure_rounds"],
    )
    topology = standard_topology()
    models = build_all_models(topology)
    _, raw, derived = _traffic_sets(hours=hours)
    everything = raw + derived
    deepest = derived[-1] if derived else raw[-1]

    for name in ("centralized", "distributed-db", "federated"):
        model = models[name]
        publish_all(model, everything, topology)
        query = Query(AttributeEquals("city", "london"))
        attribute = model.query(query, "london-site")
        result.add_row(name, "attribute query", round(attribute.latency_ms, 2), attribute.messages, "-")
        closure = model.ancestors(deepest.pname, "london-site")
        rounds = next(
            (note.split(":")[1].strip() for note in closure.notes if note.startswith("closure rounds")),
            "-",
        )
        result.add_row(name, "ancestor closure", round(closure.latency_ms, 2), closure.messages, rounds)
    result.notes.append(
        "Both database models pay one wide-area round per generation of ancestry; "
        "the federated model additionally pays per-site translation overhead and "
        "must ask every autonomous site at every step."
    )
    return result


# ----------------------------------------------------------------------
# E7 -- soft state: refresh interval vs precision/recall
# ----------------------------------------------------------------------
def run_e7(
    refresh_intervals: Sequence[float] = (60.0, 300.0, 1800.0),
    hours: float = 2.0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E7",
        title="Soft-state index: staleness vs result quality",
        claim=(
            "Soft-state metadata services scale by relying on periodic updates, "
            "at the cost of stale answers; their metadata model denies transitive closure."
        ),
        headers=["refresh_interval_s", "recall", "precision", "pending_updates", "closure_supported"],
    )
    topology = standard_topology()
    workload, raw, derived = _traffic_sets(hours=hours)
    everything = raw + derived
    truth_store = ground_truth_store(everything)
    query = Query(AttributeEquals("domain", "traffic"))
    truth = set(truth_store.query(query))

    for interval in refresh_intervals:
        models = build_all_models(topology, refresh_interval_seconds=interval)
        model = models["soft-state"]
        assert isinstance(model, SoftStateIndex)
        # Publish in (simulated) real time: each window appears at its end time.
        ordered = sorted(
            everything,
            key=lambda ts: getattr(ts.provenance.get("window_end"), "seconds", 0.0),
        )
        clock = 0.0
        for tuple_set in ordered:
            end = tuple_set.provenance.get("window_end")
            when = end.seconds if isinstance(end, Timestamp) else clock
            if when > clock:
                model.advance_time(when - clock)
                clock = when
            model.publish(tuple_set, origin_site_for(tuple_set, topology))
        # Remove a handful of already-indexed data sets; until the next refresh
        # the zone indexes keep advertising them (stale positives).
        midpoint = len(ordered) // 2
        removed = [ts.pname for ts in ordered[midpoint : midpoint + 5]]
        for pname in removed:
            model.remove(pname)

        answer = set(model.query(query, "london-site").pnames)
        effective_truth = truth - set(removed)
        precision, recall = precision_recall(answer, effective_truth)
        try:
            model.ancestors(ordered[-1].pname, "london-site")
            closure_supported = True
        except UnsupportedQueryError:
            closure_supported = False
        result.add_row(
            interval,
            round(recall, 3),
            round(precision, 3),
            model.pending_count(),
            closure_supported,
        )
    result.notes.append(
        "Longer refresh intervals leave more recently published windows invisible "
        "(lower recall); removed data sets keep being advertised until the next "
        "refresh (precision below 1); and the metadata model refuses closure queries."
    )
    return result


# ----------------------------------------------------------------------
# E8 -- hierarchical namespaces and the significance-ordering penalty
# ----------------------------------------------------------------------
def run_e8(hours: float = 1.5) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E8",
        title="Hierarchical namespace: primary vs non-primary attribute queries",
        claim=(
            "Hierarchies need a significance ordering; querying on any attribute "
            "other than the most significant one touches every server."
        ),
        headers=["query_attribute", "servers_contacted", "latency_ms", "messages", "results"],
    )
    topology = standard_topology()
    models = build_all_models(topology, significance_order=("city", "domain", "window_start"))
    model = models["hierarchical"]
    _, raw, derived = _traffic_sets(cities=("london", "boston", "seattle"), hours=hours)
    everything = raw + derived
    publish_all(model, everything, topology)

    queries = {
        "city (primary)": Query(AttributeEquals("city", "london")),
        "domain (secondary)": Query(AttributeEquals("domain", "traffic")),
        "stage (not in ordering)": Query(AttributeEquals("stage", "aggregated")),
        "time range (not routable)": Query(
            AttributeRange("window_start", low=Timestamp(0.0), high=Timestamp(3600.0))
        ),
    }
    for label, query in queries.items():
        answer = model.query(query, "london-site")
        result.add_row(
            label,
            len(answer.sites_contacted),
            round(answer.latency_ms, 2),
            answer.messages,
            len(answer.pnames),
        )
    result.notes.append(
        "Only the most significant attribute (city) routes to a single server; "
        "every other query is a broadcast, exactly the penalty the paper predicts "
        "for attributes with no natural significance ordering."
    )
    return result


# ----------------------------------------------------------------------
# E9 -- DHTs: update scaling and placement blindness
# ----------------------------------------------------------------------
def run_e9(hours: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E9",
        title="DHT: update fan-out, updater scaling and placement distance",
        claim=(
            "DHT placement ignores locality, per-attribute updates limit scaling "
            "to tens of thousands of updaters, and recursive queries are costly."
        ),
        headers=["measure", "setting", "value"],
    )
    topology = standard_topology()
    _, raw, derived = _traffic_sets(hours=hours)
    everything = raw + derived

    dht = DistributedHashTable(topology)
    locale = LocaleAwarePass(topology)
    dht_samples = publish_all(dht, everything, topology)
    publish_all(locale, everything, topology)

    result.add_row("index entries per publish", "attribute fan-out", dht.updates_per_publish())
    result.add_row(
        "publish messages (mean)", "dht", round(mean([s[3] for s in dht_samples]), 1)
    )
    for rate in (0.1, 1.0, 10.0):
        result.add_row(
            "max supported updaters",
            f"{rate} publishes/s each",
            dht.max_supported_updaters(rate),
        )
    # Extrapolate to a planetary-scale ring (the deployments the paper has in
    # mind): even then the per-attribute update fan-out caps the system at
    # tens of thousands of updaters, matching the SWORD measurement it cites.
    for ring_nodes in (1000, 10000):
        capacity = dht.per_node_updates_per_second * ring_nodes
        updaters = int(capacity / (0.1 * dht.updates_per_publish()))
        result.add_row(
            "max supported updaters",
            f"{ring_nodes}-node ring, 0.1 publishes/s each",
            updaters,
        )

    dht_distance = mean(
        [dht.placement_distance_km(ts.pname, origin_site_for(ts, topology)) for ts in everything]
    )
    locale_distance = mean(
        [locale.placement_distance_km(ts.pname, origin_site_for(ts, topology)) for ts in everything]
    )
    result.add_row("placement distance km (mean)", "dht", round(dht_distance, 1))
    result.add_row("placement distance km (mean)", "locale-aware-pass", round(locale_distance, 1))

    closure = dht.descendants(raw[0].pname, "london-site")
    result.add_row("closure cost", "messages for one taint query", closure.messages)
    result.notes.append(
        "Each published window writes one DHT entry per queriable attribute, so a "
        "few-thousand-node ring saturates at tens of thousands of updaters; hashed "
        "placement lands London windows thousands of km from London, while the "
        "locale-aware store keeps them at (or next to) their origin."
    )
    return result


# ----------------------------------------------------------------------
# E10 -- storage should be near the sensors
# ----------------------------------------------------------------------
def run_e10(hours: float = 1.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E10",
        title="Locality: local consumers querying locale-aware vs location-oblivious storage",
        claim=(
            "Sensor data is most valuable near its source; storing it near the "
            "sensors makes the common (local) queries cheap."
        ),
        headers=["model", "local_query_ms", "remote_query_ms", "publish_wan_bytes", "placement_km"],
    )
    topology = standard_topology()
    _, raw, derived = _traffic_sets(cities=("london", "boston"), hours=hours)
    everything = raw + derived
    london_query = Query(AttributeEquals("city", "london"))

    models = build_all_models(topology)
    for name in ("centralized", "dht", "locale-aware-pass"):
        model = models[name]
        samples = publish_all(model, everything, topology)
        if isinstance(model, SoftStateIndex):
            model.force_refresh()
        wan_bytes = sum(sample[4] for sample in samples)
        local = model.query(london_query, "london-site")
        remote = model.query(london_query, "tokyo-site")
        if name == "dht":
            distance = mean(
                [
                    model.placement_distance_km(ts.pname, origin_site_for(ts, topology))
                    for ts in everything
                ]
            )
        elif name == "locale-aware-pass":
            distance = mean(
                [
                    model.placement_distance_km(ts.pname, origin_site_for(ts, topology))
                    for ts in everything
                ]
            )
        else:
            distance = 0.0  # data stays at origin; only metadata moves
        result.add_row(
            name,
            round(local.latency_ms, 2),
            round(remote.latency_ms, 2),
            wan_bytes,
            round(distance, 1),
        )
    result.notes.append(
        "The locale-aware store answers London's query from London; the "
        "centralized index forces even local consumers onto the wide area, and "
        "the DHT both ships the data far away and pays multi-hop routing."
    )
    return result


# ----------------------------------------------------------------------
# E11 -- reliability: crash injection and recovery
# ----------------------------------------------------------------------
def run_e11(crash_points: Sequence[int] = (10, 50, 200)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E11",
        title="Crash recovery of provenance metadata",
        claim=(
            "The system must recover provenance metadata to a state consistent "
            "with its data after a system failure."
        ),
        headers=["crash_after_writes", "acknowledged", "recovered", "consistent", "torn_entries_discarded"],
    )
    import tempfile
    from pathlib import Path

    workload = TrafficWorkload(seed=17, stations_per_city=4)
    raw, derived = workload.all_sets(hours=2.0)
    everything = raw + derived

    for crash_after in crash_points:
        with tempfile.TemporaryDirectory() as tmp:
            db_path = Path(tmp) / "pass.db"
            wal_path = Path(tmp) / "pass.wal"
            backend = SQLiteBackend(db_path, crash_after_writes=crash_after)
            wal = WriteAheadLog(wal_path)
            acknowledged: List[PName] = []
            crashed = False
            for index, tuple_set in enumerate(everything):
                try:
                    wal.log_put_record(tuple_set.provenance)
                    backend.put_record(tuple_set.provenance)
                    acknowledged.append(tuple_set.pname)
                except CrashInjectedError:
                    crashed = True
                    break
            # Tear the final WAL line to simulate a mid-sector crash too.
            wal.inject_torn_write()
            if not crashed and everything:
                try:
                    wal.log_put_record(everything[-1].provenance)
                except CrashInjectedError:  # pragma: no cover - not expected here
                    pass

            # Recovery: reopen the database, replay the WAL.
            recovered_backend = SQLiteBackend(db_path)
            report = wal.replay(recovered_backend)
            recovered_store = PassStore(backend=recovered_backend)
            recovered = {pname.digest for pname in recovered_store.pnames()}
            missing = [pname for pname in acknowledged if pname.digest not in recovered]
            consistent = not missing and not recovered_store.verify_invariants()
            result.add_row(
                crash_after,
                len(acknowledged),
                len(recovered),
                consistent,
                report.skipped_corrupt,
            )
            recovered_backend.close()
    result.notes.append(
        "Every write acknowledged before the crash is present after WAL replay; "
        "torn log entries are detected by checksum and discarded rather than "
        "corrupting the recovered index."
    )
    return result


# ----------------------------------------------------------------------
# E12 -- the full design-space matrix
# ----------------------------------------------------------------------
def run_e12(hours: float = 1.0, queries_per_model: int = 6) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E12",
        title="Design space: every architecture against every criterion",
        claim=(
            "Given locale-specific data and sensor-scale update rates, no existing "
            "storage/query model offers a satisfying fit."
        ),
        headers=[
            "model",
            "publish_ms",
            "publish_msgs",
            "publish_bytes",
            "query_ms",
            "closure_ms",
            "precision",
            "recall",
            "placement_km",
            "usability",
        ],
    )
    topology = standard_topology()
    models = build_all_models(topology)
    _, raw, derived = _traffic_sets(cities=("london", "boston"), hours=hours)
    weather = WeatherWorkload(seed=23, regions=("london",))
    weather_raw, weather_derived = weather.all_sets(hours=hours)
    everything = raw + derived + weather_raw + weather_derived
    truth_store = ground_truth_store(everything)

    probe_queries = [
        Query(AttributeEquals("city", "london")),
        Query(AttributeEquals("domain", "traffic")),
        Query(AttributeEquals("stage", "aggregated")),
        Query(AttributeEquals("region", "london")),
        Query(And((AttributeEquals("domain", "traffic"), AttributeEquals("stage", "filtered")))),
        Query(AttributeEquals("network", "london-congestion-zone")),
    ][:queries_per_model]
    lineage_targets = [ts.pname for ts in (derived[-3:] if len(derived) >= 3 else derived)]

    for name in MODEL_NAMES:
        model = models[name]
        scores = CriteriaScores(model=name, supports_lineage=model.supports_lineage)
        samples = publish_all(model, everything, topology)
        for _, _, latency, messages, size in samples:
            scores.publish_samples.append(LatencySample(latency, messages, size))
        if isinstance(model, SoftStateIndex):
            model.force_refresh()

        precisions, recalls = [], []
        for query in probe_queries:
            answer = model.query(query, "london-site")
            scores.query_samples.append(
                LatencySample(answer.latency_ms, answer.messages, answer.bytes)
            )
            truth = truth_store.query(query)
            p, r = precision_recall(answer.pnames, truth)
            precisions.append(p)
            recalls.append(r)
        scores.precision = mean(precisions)
        scores.recall = mean(recalls)

        if model.supports_lineage:
            for target in lineage_targets:
                try:
                    answer = model.ancestors(target, "london-site")
                except UnsupportedQueryError:
                    scores.supports_lineage = False
                    break
                scores.lineage_samples.append(
                    LatencySample(answer.latency_ms, answer.messages, answer.bytes)
                )

        if isinstance(model, (DistributedHashTable, LocaleAwarePass)):
            scores.placement_distance_km = mean(
                [
                    model.placement_distance_km(ts.pname, origin_site_for(ts, topology))
                    for ts in everything
                ]
            )
        else:
            scores.placement_distance_km = 0.0

        row = scores.as_row()
        result.add_row(*[row[header] for header in result.headers])

    result.notes.append(
        "No single model leads every column: the centralized warehouse wins raw "
        "query latency but pays wide-area publishes and saturates on updates; the "
        "DHT loses locality and pays the largest publish fan-out; soft state gives "
        "up closure; the locale-aware PASS keeps placement local and supports every "
        "query class, at the price of contacting more sites for non-local queries."
    )
    return result
